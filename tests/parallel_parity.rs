//! Parallel parity: the pipeline must be *bit-deterministic* across thread
//! counts. Workers only ever fill pre-sized disjoint output slots and every
//! reduction folds in index order, so `threads = 1` and `threads = N` must
//! produce byte-identical patterns, metrics, and degradation events — on
//! clean corpora and under fault injection alike.

use pervasive_miner::core::construct::ConstructionOptions;
use pervasive_miner::core::extract::{extract_patterns_observed, extract_patterns_tracked};
use pervasive_miner::core::recognize::{
    recognize_all_observed, recognize_all_tracked, stay_points_of,
};
use pervasive_miner::core::types::Poi;
use pervasive_miner::prelude::*;
use pervasive_miner::synth::{corrupt_trajectories, Corruption};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Construct -> recognize -> extract at an explicit thread count.
fn run_pipeline(
    pois: &[Poi],
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
    threads: usize,
) -> (Vec<FinePattern>, Vec<Degradation>) {
    let params = MinerParams { threads, ..*params };
    let mut events = Vec::new();
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build(pois, &stays, &params).expect("valid params");
    events.extend(csd.degradations().iter().copied());
    let recognized =
        recognize_all_tracked(&csd, trajectories, &params, &mut events).expect("valid params");
    let patterns =
        extract_patterns_tracked(&recognized, &params, &mut events).expect("valid params");
    (patterns, events)
}

/// Same pipeline through the `*_observed` entry points with a live [`Obs`].
fn run_pipeline_observed(
    pois: &[Poi],
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
    threads: usize,
    obs: &Obs,
) -> (Vec<FinePattern>, Vec<Degradation>) {
    let params = MinerParams { threads, ..*params };
    let mut events = Vec::new();
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build_observed(
        pois,
        &stays,
        &params,
        ConstructionOptions::default(),
        obs,
    )
    .expect("valid params");
    events.extend(csd.degradations().iter().copied());
    let recognized = recognize_all_observed(&csd, trajectories, &params, &mut events, obs)
        .expect("valid params");
    let patterns =
        extract_patterns_observed(&recognized, &params, &mut events, obs).expect("valid params");
    (patterns, events)
}

/// Canonical byte-exact encoding of a pipeline result. Floats are rendered
/// as raw bit patterns, so two fingerprints match only when every coordinate
/// is bit-identical — `assert_eq!` on this string is the parity oracle.
fn fingerprint(patterns: &[FinePattern], events: &[Degradation]) -> String {
    let mut out = String::new();
    for p in patterns {
        let _ = write!(out, "P{:?}|m{:?}|", p.categories, p.members);
        for s in &p.stays {
            let _ = write!(
                out,
                "s{:016x},{:016x},{},{:?};",
                s.pos.x.to_bits(),
                s.pos.y.to_bits(),
                s.time,
                s.tags
            );
        }
        for g in &p.groups {
            out.push('g');
            for s in g {
                let _ = write!(
                    out,
                    "{:016x},{:016x},{};",
                    s.pos.x.to_bits(),
                    s.pos.y.to_bits(),
                    s.time
                );
            }
        }
        out.push('\n');
    }
    let _ = write!(out, "E{events:?}");
    out
}

#[test]
fn synthetic_corpora_are_bit_identical_across_thread_counts() {
    for seed in [2026, 7, 123] {
        let ds = Dataset::generate(&CityConfig::tiny(seed));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let (patterns, events) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, 1);
        assert!(!patterns.is_empty(), "seed {seed} must mine");
        let serial = fingerprint(&patterns, &events);
        for threads in [2, 4, 8] {
            let (p, e) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, threads);
            assert_eq!(
                serial,
                fingerprint(&p, &e),
                "seed {seed}, threads {threads}"
            );
        }
    }
}

#[test]
fn observability_never_perturbs_results() {
    // Observability is strictly one-way: a live `Obs` recording every span
    // and counter must reproduce the no-op run byte for byte, serial and
    // parallel alike. (The obs handle itself is the only thing allowed to
    // differ between the two runs.)
    let ds = Dataset::generate(&CityConfig::tiny(2026));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    for threads in [1, 4] {
        let (np, ne) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, threads);
        let obs = Obs::enabled();
        let (op, oe) =
            run_pipeline_observed(&ds.pois, ds.trajectories.clone(), &params, threads, &obs);
        assert_eq!(
            fingerprint(&np, &ne),
            fingerprint(&op, &oe),
            "threads {threads}"
        );
        // And the recording really happened: the report carries the whole
        // construct -> recognize -> extract stage inventory.
        let report = obs.report();
        let stages: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        for want in [
            "construct.clustering",
            "construct.purify",
            "construct.merge",
            "recognize.vote",
            "extract.prefixspan",
            "extract.counterpart",
        ] {
            assert!(stages.contains(&want), "missing stage {want}: {stages:?}");
        }
        assert!(report.counters["recognize.votes_cast"] > 0);
    }
}

#[test]
fn small_city_is_bit_identical_serial_vs_auto_threads() {
    // `threads = 0` resolves to available_parallelism — whatever this
    // machine offers must still reproduce the serial bytes.
    let ds = Dataset::generate(&CityConfig::small(2026));
    let params = MinerParams::default();
    let (sp, se) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, 1);
    let (ap, ae) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, 0);
    assert_eq!(fingerprint(&sp, &se), fingerprint(&ap, &ae));
}

#[test]
fn fault_injection_is_bit_identical_under_threads() {
    // Degradation paths (NaN stays, teleports, truncation...) must also
    // replay identically: events are folded in input order, never in
    // worker-completion order.
    let ds = Dataset::generate(&CityConfig::tiny(2026));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    for fraction in [0.05, 0.5] {
        for corruption in Corruption::standard_suite(fraction) {
            let mut trajectories = ds.trajectories.clone();
            corrupt_trajectories(&mut trajectories, &corruption, 99);
            let (sp, se) = run_pipeline(&ds.pois, trajectories.clone(), &params, 1);
            let (pp, pe) = run_pipeline(&ds.pois, trajectories, &params, 4);
            assert_eq!(
                fingerprint(&sp, &se),
                fingerprint(&pp, &pe),
                "{} at {fraction}",
                corruption.label()
            );
        }
    }
}

/// Compact corpus for the proptest cases (mirrors fault_injection.rs).
fn small_corpus() -> (Vec<Poi>, Vec<SemanticTrajectory>) {
    let mut pois = Vec::new();
    for i in 0..12 {
        pois.push(Poi::new(
            i,
            LocalPoint::new((i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0),
            Category::Residence,
        ));
        pois.push(Poi::new(
            100 + i,
            LocalPoint::new(4_000.0 + (i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0),
            Category::Business,
        ));
    }
    let trajectories = (0..40)
        .map(|k| {
            let dx = (k % 5) as f64 * 10.0;
            SemanticTrajectory::new(vec![
                StayPoint::untagged(LocalPoint::new(dx, 10.0), 7 * 3600 + k as i64),
                StayPoint::untagged(LocalPoint::new(4_000.0 + dx, 10.0), 8 * 3600 + k as i64),
            ])
        })
        .collect();
    (pois, trajectories)
}

/// FNV-1a (64-bit) over the fingerprint string — a stable scalar identity
/// for a whole pipeline result.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn golden_fingerprints_pin_the_exact_output_bytes() {
    // These hashes were captured from the original straightforward kernels
    // (AoS distances, real-meter comparisons, `BinaryHeap` OPTICS queue,
    // no grid/sweep split). Every optimisation since — squared-distance
    // kernels, struct-of-arrays layout, dense sweep, warm-started
    // selection, decrease-key heap, parallel fan-out — claims to be
    // *bit-identical*, and this test holds it to that claim: a changed
    // hash means the "optimisation" changed the mined patterns. Update a
    // hash only with an argument for why the new bytes are the right ones.
    const GOLDEN_CLEAN: [(u64, u64); 3] = [
        (2026, 0x6e6f8962e12a43be),
        (7, 0x7674d018b1e2a565),
        (123, 0x27a1028f7ef53d11),
    ];
    for (seed, want) in GOLDEN_CLEAN {
        let ds = Dataset::generate(&CityConfig::tiny(seed));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        for threads in [1, 4] {
            let (p, e) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params, threads);
            let got = fnv1a(&fingerprint(&p, &e));
            assert_eq!(
                got, want,
                "clean corpus seed {seed}, threads {threads}: got {got:#018x}, want {want:#018x}"
            );
        }
    }

    // Fault-injection sweep: same contract under every corruption mode.
    const GOLDEN_FAULTS: [u64; 5] = [
        0x0cdf0007a2761201,
        0xd99208198e8e3b54,
        0x8025470b58a72a5b,
        0xd99208198e8e3b54,
        0xd99208198e8e3b54,
    ];
    for (mode, &want) in GOLDEN_FAULTS.iter().enumerate() {
        let (pois, mut trajectories) = small_corpus();
        let corruption = Corruption::standard_suite(0.5)[mode];
        corrupt_trajectories(&mut trajectories, &corruption, 99);
        let params = MinerParams {
            sigma: 10,
            ..MinerParams::default()
        };
        for threads in [1, 4] {
            let (p, e) = run_pipeline(&pois, trajectories.clone(), &params, threads);
            let got = fnv1a(&fingerprint(&p, &e));
            assert_eq!(
                got, want,
                "corruption mode {mode}, threads {threads}: got {got:#018x}, want {want:#018x}"
            );
        }
    }
}

proptest! {
    /// Whatever the corruption or thread count: serial and parallel runs
    /// agree byte for byte.
    #[test]
    fn parallel_runs_replay_serial_bytes(
        mode in 0usize..5,
        fraction in 0.0..=1.0f64,
        seed in 0u64..u64::MAX,
        threads in 2usize..9,
    ) {
        let (pois, mut trajectories) = small_corpus();
        let corruption = Corruption::standard_suite(fraction)[mode];
        corrupt_trajectories(&mut trajectories, &corruption, seed);
        let params = MinerParams { sigma: 10, ..MinerParams::default() };
        let (sp, se) = run_pipeline(&pois, trajectories.clone(), &params, 1);
        let (pp, pe) = run_pipeline(&pois, trajectories, &params, threads);
        prop_assert_eq!(fingerprint(&sp, &se), fingerprint(&pp, &pe));
    }
}
