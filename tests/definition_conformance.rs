//! Cross-validation of the two independent implementations of the paper's
//! formal machinery: Algorithm 4 (clustering-based, `pm-core::extract`)
//! against the direct Definition 7–11 semantics (`pm-core::contain`).
//!
//! Every fine-grained pattern mined by CounterpartCluster must be
//! *contained* (Definition 7) by each of its member trajectories when the
//! pattern is written as a semantic trajectory of its representative stay
//! points with the mined category list as singleton tags.

use pervasive_miner::prelude::*;
use pm_core::contain::{containment_witness, groups};
use pm_core::recognize::stay_points_of;
use pm_core::types::{StayPoint, Tags};

fn fixture() -> (Vec<SemanticTrajectory>, Vec<FinePattern>, MinerParams) {
    let ds = Dataset::generate(&CityConfig::tiny(77));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    (recognized, patterns, params)
}

/// The pattern as a semantic trajectory: representative stays, singleton
/// tags from the mined category list (the `O` list of §4.3).
fn pattern_trajectory(p: &FinePattern) -> SemanticTrajectory {
    SemanticTrajectory::new(
        p.stays
            .iter()
            .zip(&p.categories)
            .map(|(sp, c)| StayPoint::new(sp.pos, sp.time, Tags::only(*c)))
            .collect(),
    )
}

#[test]
fn members_contain_their_pattern() {
    let (db, patterns, params) = fixture();
    assert!(!patterns.is_empty());
    // Spatial tolerance: the OPTICS position clusters are compound-scale;
    // 500 m comfortably bounds any legitimate group extent at tiny scale.
    let eps_t = 500.0;
    let mut checked = 0usize;
    let mut contained = 0usize;
    for p in &patterns {
        let pt = pattern_trajectory(p);
        for &m in &p.members {
            checked += 1;
            // The member carries real timestamps; the representative carries
            // group-average times. Definition 7 constrains adjacent gaps on
            // both sides, which the extraction guarantees by construction.
            if containment_witness(&db[m], &pt, eps_t, params.delta_t).is_some() {
                contained += 1;
            }
        }
    }
    assert!(checked > 0);
    assert_eq!(
        contained,
        checked,
        "{} of {checked} member/pattern pairs violate Definition 7",
        checked - contained
    );
}

#[test]
fn group_members_are_spatially_coherent() {
    let (_, patterns, params) = fixture();
    for p in &patterns {
        for (k, group) in p.groups.iter().enumerate() {
            let rep = p.stays[k].pos;
            for sp in group {
                assert!(
                    sp.pos.distance(&rep) < 1_000.0,
                    "{}: group {k} member {:.0}m from representative",
                    p.describe(),
                    sp.pos.distance(&rep)
                );
            }
            let pts: Vec<pm_geo::LocalPoint> = group.iter().map(|sp| sp.pos).collect();
            assert!(
                pm_geo::den(&pts) >= params.rho,
                "{}: group {k} under-dense",
                p.describe()
            );
        }
    }
}

#[test]
fn definition_10_groups_agree_with_extraction_scale() {
    // Direct Definition 10 groups around a pattern's representative
    // trajectory should collect at least as many counterparts as the
    // pattern has members (the definition is more permissive: reachable
    // containment may pull in extra trajectories).
    let (db, patterns, params) = fixture();
    let p = &patterns[0];
    let pt = pattern_trajectory(p);
    // Restrict the database to this pattern's members plus a sample of
    // others, keeping the direct (exponential-ish) computation cheap.
    let mut subset: Vec<SemanticTrajectory> = p.members.iter().map(|&m| db[m].clone()).collect();
    subset.extend(db.iter().take(50).cloned());
    let g = groups(&pt, &subset, 500.0, params.delta_t);
    assert_eq!(g.len(), p.len());
    for (k, group) in g.iter().enumerate() {
        assert!(
            group.len() > p.support() / 2,
            "position {k}: direct group {} vs support {}",
            group.len(),
            p.support()
        );
    }
}
