//! Recognition accuracy against generator ground truth — a measurement the
//! paper could not make (no ground truth on real data) but our synthetic
//! substrate provides for free: every stay point knows the true activity
//! category, so we can score CSD voting versus ROI annotation directly.

use pervasive_miner::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_core::types::Category;

struct Scores {
    csd_hits: usize,
    roi_hits: usize,
    csd_tagged: usize,
    roi_tagged: usize,
    total: usize,
}

fn score(seed: u64) -> Scores {
    let ds = Dataset::generate(&CityConfig::tiny(seed));
    let params = MinerParams::default();
    let baseline = BaselineParams::default();

    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let csd_tagged = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let roi = RoiRecognizer::build(&stays, &ds.pois, &params, &baseline);
    let roi_tagged = roi.recognize_all(ds.trajectories.clone());

    let mut s = Scores {
        csd_hits: 0,
        roi_hits: 0,
        csd_tagged: 0,
        roi_tagged: 0,
        total: 0,
    };
    for (ti, truth) in ds.truth.iter().enumerate() {
        for (k, &want) in truth.iter().enumerate() {
            s.total += 1;
            let c = csd_tagged[ti].stays[k].tags;
            let r = roi_tagged[ti].stays[k].tags;
            if !c.is_empty() {
                s.csd_tagged += 1;
                if c.contains(want) {
                    s.csd_hits += 1;
                }
            }
            if !r.is_empty() {
                s.roi_tagged += 1;
                if r.contains(want) {
                    s.roi_hits += 1;
                }
            }
        }
    }
    s
}

#[test]
fn csd_recognition_is_accurate() {
    let s = score(123);
    assert!(s.total > 1_000);
    let coverage = s.csd_tagged as f64 / s.total as f64;
    let precision = s.csd_hits as f64 / s.csd_tagged.max(1) as f64;
    assert!(coverage > 0.6, "CSD tagged only {:.1}%", coverage * 100.0);
    assert!(precision > 0.6, "CSD precision {:.1}%", precision * 100.0);
}

#[test]
fn csd_precision_beats_or_matches_roi() {
    // The CSD's purification + unit voting should not lose to raw
    // hot-region annotation on precision (ROI's mixed regions dilute it).
    let mut csd_better = 0;
    let mut rounds = 0;
    for seed in [11, 22, 33] {
        let s = score(seed);
        if s.csd_tagged == 0 || s.roi_tagged == 0 {
            continue;
        }
        rounds += 1;
        let csd_p = s.csd_hits as f64 / s.csd_tagged as f64;
        let roi_p = s.roi_hits as f64 / s.roi_tagged as f64;
        if csd_p >= roi_p - 0.02 {
            csd_better += 1;
        }
    }
    assert!(rounds > 0);
    assert!(
        csd_better >= rounds - 1,
        "CSD precision lost to ROI in {} of {rounds} rounds",
        rounds - csd_better
    );
}

#[test]
fn tag_sets_stay_small_under_csd() {
    // Purification should keep recognized tag sets tight: mostly 1-2
    // categories, never the kitchen sink.
    let ds = Dataset::generate(&CityConfig::tiny(55));
    let params = MinerParams::default();
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let tagged = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let mut sizes = Vec::new();
    for t in &tagged {
        for sp in &t.stays {
            if !sp.tags.is_empty() {
                sizes.push(sp.tags.len());
            }
        }
    }
    assert!(!sizes.is_empty());
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    assert!(avg < 2.5, "average tag-set size {avg}");
    assert!(sizes.iter().all(|&s| s <= Category::COUNT));
}
