//! Fault injection: the full pipeline must survive every corruption mode in
//! `pm_synth::corrupt` — non-finite coordinates, timestamp disorder,
//! duplicated records, teleports, truncation, and mangled CSV input — with
//! no panics, reporting quarantined records and degradation events instead.

use pervasive_miner::core::extract::extract_patterns_tracked;
use pervasive_miner::core::recognize::recognize_all_tracked;
use pervasive_miner::io::{
    journeys_to_trajectories, read_journeys_with, read_pois_with, write_journeys, write_pois,
    IngestMode, JourneyRecord,
};
use pervasive_miner::prelude::*;
use pervasive_miner::synth::{corrupt_csv, corrupt_trajectories, Corruption};
use pm_baselines::{sdbscan_extract, splitter_extract};
use proptest::prelude::*;

/// Runs construct -> recognize -> extract, returning the patterns plus every
/// degradation event the stages recorded. Panics only on invalid params —
/// which these tests never pass.
fn run_pipeline(
    pois: &[Poi],
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
) -> (Vec<FinePattern>, Vec<Degradation>) {
    let mut events = Vec::new();
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build(pois, &stays, params).expect("valid params");
    events.extend(csd.degradations().iter().copied());
    let recognized =
        recognize_all_tracked(&csd, trajectories, params, &mut events).expect("valid params");
    let patterns =
        extract_patterns_tracked(&recognized, params, &mut events).expect("valid params");
    (patterns, events)
}

fn tiny_scene() -> (Dataset, MinerParams) {
    let ds = Dataset::generate(&CityConfig::tiny(2026));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    (ds, params)
}

#[test]
fn every_corruption_mode_survives_the_full_pipeline() {
    let (ds, params) = tiny_scene();
    let (clean_patterns, clean_events) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params);
    assert!(!clean_patterns.is_empty(), "clean corpus must mine");
    assert!(clean_events.is_empty(), "clean corpus must not degrade");

    for fraction in [0.05, 0.5, 1.0] {
        for corruption in Corruption::standard_suite(fraction) {
            let mut trajectories = ds.trajectories.clone();
            let touched = corrupt_trajectories(&mut trajectories, &corruption, 99);
            let (_patterns, events) = run_pipeline(&ds.pois, trajectories, &params);
            if matches!(corruption, Corruption::NonFiniteCoordinates { .. }) && touched > 0 {
                let reported: usize = events.iter().map(|e| e.count()).sum();
                assert!(
                    reported > 0,
                    "{} at {fraction}: {touched} corrupted stays but no degradation reported",
                    corruption.label()
                );
            }
        }
    }
}

#[test]
fn every_corruption_mode_survives_under_four_threads() {
    // The parallel stages must be as panic-free as the serial ones: replay
    // the corruption suite with the pipeline fanned out over 4 workers.
    // (Byte-level serial/parallel parity is asserted in parallel_parity.rs;
    // this guards the degradation paths themselves under threading.)
    let (ds, params) = tiny_scene();
    let params = MinerParams {
        threads: 4,
        ..params
    };
    for corruption in Corruption::standard_suite(0.5) {
        let mut trajectories = ds.trajectories.clone();
        corrupt_trajectories(&mut trajectories, &corruption, 99);
        let (_patterns, _events) = run_pipeline(&ds.pois, trajectories, &params);
    }
}

#[test]
fn mild_corruption_still_finds_the_dominant_patterns() {
    // Robustness has to mean useful output, not just absence of panics: at
    // 2% corruption the corpus still carries its signal.
    let (ds, params) = tiny_scene();
    let (clean, _) = run_pipeline(&ds.pois, ds.trajectories.clone(), &params);
    for corruption in Corruption::standard_suite(0.02) {
        let mut trajectories = ds.trajectories.clone();
        corrupt_trajectories(&mut trajectories, &corruption, 3);
        let (patterns, _) = run_pipeline(&ds.pois, trajectories, &params);
        assert!(
            patterns.len() * 2 >= clean.len(),
            "{}: {} patterns vs {} clean",
            corruption.label(),
            patterns.len(),
            clean.len()
        );
    }
}

#[test]
fn stacked_corruptions_survive_every_extractor() {
    let (ds, params) = tiny_scene();
    let mut trajectories = ds.trajectories.clone();
    for (i, corruption) in Corruption::standard_suite(0.3).iter().enumerate() {
        corrupt_trajectories(&mut trajectories, corruption, 1_000 + i as u64);
    }

    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("valid params");
    let recognized = recognize_all(&csd, trajectories.clone(), &params).expect("valid params");
    let baseline = BaselineParams::default();

    // The paper pipeline and both baseline extractors must all survive.
    extract_patterns(&recognized, &params).expect("valid params");
    splitter_extract(&recognized, &params, &baseline).expect("valid params");
    sdbscan_extract(&recognized, &params, &baseline).expect("valid params");

    // As must ROI recognition over the corrupted stay corpus.
    let roi = RoiRecognizer::build(&stays, &ds.pois, &params, &baseline);
    let roi_tagged = roi.recognize_all(trajectories);
    extract_patterns(&roi_tagged, &params).expect("valid params");
}

#[test]
fn quarantine_ingestion_survives_mangled_csv() {
    let (ds, params) = tiny_scene();
    let projection = Projection::new(GeoPoint::new(121.4737, 31.2304));

    // Serialize the synthetic corpus to its CSV wire format.
    let journeys: Vec<JourneyRecord> = ds
        .trajectories
        .iter()
        .flat_map(|st| {
            let card = st.passenger;
            st.stays
                .windows(2)
                .filter(|w| w[1].time > w[0].time)
                .map(move |w| JourneyRecord {
                    pickup: GpsPoint::new(w[0].pos, w[0].time),
                    dropoff: GpsPoint::new(w[1].pos, w[1].time),
                    card,
                })
        })
        .collect();
    let poi_text = write_pois(&ds.pois, &projection);
    let journey_text = write_journeys(&journeys, &projection);

    // Mangle a slice of both files and ingest leniently.
    let (poi_text, poi_mangled) = corrupt_csv(&poi_text, 0.1, 11);
    let (journey_text, journey_mangled) = corrupt_csv(&journey_text, 0.1, 12);
    assert!(poi_mangled > 0 && journey_mangled > 0);

    let (pois, poi_report) =
        read_pois_with(&poi_text, &projection, IngestMode::Lenient).expect("lenient never fails");
    let (survivors, journey_report) =
        read_journeys_with(&journey_text, &projection, IngestMode::Lenient)
            .expect("lenient never fails");

    // Every record is accounted for: survivors + quarantined == written.
    assert_eq!(pois.len() + poi_report.dropped(), ds.pois.len());
    assert_eq!(survivors.len() + journey_report.dropped(), journeys.len());
    assert!(poi_report.dropped() <= poi_mangled);
    assert!(journey_report.dropped() <= journey_mangled);

    // And what survived still mines without trouble.
    let trajectories = journeys_to_trajectories(&survivors);
    let (patterns, _events) = run_pipeline(&pois, trajectories, &params);
    assert!(
        !patterns.is_empty(),
        "90% of the corpus must still carry the commute signal"
    );
}

/// A compact handmade commuter corpus: cheap enough to rebuild inside every
/// proptest case.
fn small_corpus() -> (Vec<Poi>, Vec<SemanticTrajectory>) {
    let mut pois = Vec::new();
    for i in 0..12 {
        pois.push(Poi::new(
            i,
            LocalPoint::new((i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0),
            Category::Residence,
        ));
        pois.push(Poi::new(
            100 + i,
            LocalPoint::new(4_000.0 + (i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0),
            Category::Business,
        ));
    }
    let trajectories = (0..40)
        .map(|k| {
            let dx = (k % 5) as f64 * 10.0;
            SemanticTrajectory::new(vec![
                StayPoint::untagged(LocalPoint::new(dx, 10.0), 7 * 3600 + k as i64),
                StayPoint::untagged(LocalPoint::new(4_000.0 + dx, 10.0), 8 * 3600 + k as i64),
            ])
        })
        .collect();
    (pois, trajectories)
}

proptest! {
    /// Whatever the mode, intensity, or seed: no panic, ever.
    #[test]
    fn pipeline_never_panics_under_corruption(
        mode in 0usize..5,
        fraction in 0.0..=1.0f64,
        seed in 0u64..u64::MAX,
    ) {
        let (pois, mut trajectories) = small_corpus();
        let corruption = Corruption::standard_suite(fraction)[mode];
        corrupt_trajectories(&mut trajectories, &corruption, seed);
        let params = MinerParams { sigma: 10, ..MinerParams::default() };
        let (_patterns, _events) = run_pipeline(&pois, trajectories, &params);
    }
}
