//! End-to-end integration: synthetic city -> CSD -> recognition ->
//! extraction -> metrics, with the qualitative structure the paper reports.

use pervasive_miner::prelude::*;
use pm_core::metrics::{pattern_metrics, summarize};
use pm_core::recognize::stay_points_of;
use pm_core::types::Category;

fn mine(seed: u64, sigma: usize) -> (Dataset, Vec<FinePattern>) {
    let ds = Dataset::generate(&CityConfig::tiny(seed));
    let params = MinerParams {
        sigma,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    (ds, patterns)
}

#[test]
fn pipeline_discovers_commute_patterns() {
    let (_, patterns) = mine(42, 20);
    assert!(!patterns.is_empty());
    let commute = patterns
        .iter()
        .find(|p| p.categories == vec![Category::Residence, Category::Business]);
    assert!(
        commute.is_some(),
        "Residence -> Business must be discovered"
    );
}

#[test]
fn patterns_satisfy_definition_11() {
    let (_, patterns) = mine(42, 20);
    for p in &patterns {
        assert!(
            p.support() >= 20,
            "{}: support {}",
            p.describe(),
            p.support()
        );
        assert!(p.len() >= 2);
        assert_eq!(p.groups.len(), p.len());
        for (k, g) in p.groups.iter().enumerate() {
            assert_eq!(g.len(), p.support());
            let pts: Vec<pm_geo::LocalPoint> = g.iter().map(|sp| sp.pos).collect();
            assert!(
                pm_geo::den(&pts) >= MinerParams::default().rho,
                "{} group {k} too sparse",
                p.describe()
            );
        }
    }
}

#[test]
fn pattern_quality_is_paper_like() {
    // The paper reports CSD-PM avg sparsity ~21 m and consistency > 0.99 on
    // Shanghai; on the synthetic corpus (20 m GPS noise) we expect the same
    // regime: venue-scale sparsity well under 60 m, near-perfect
    // consistency.
    let (_, patterns) = mine(7, 20);
    let summary = summarize(&patterns);
    assert!(summary.n_patterns > 0);
    assert!(
        summary.avg_sparsity < 60.0,
        "avg sparsity {:.1} not venue-scale",
        summary.avg_sparsity
    );
    assert!(
        summary.avg_consistency > 0.95,
        "avg consistency {:.3}",
        summary.avg_consistency
    );
}

#[test]
fn representatives_come_from_their_groups() {
    let (_, patterns) = mine(42, 20);
    for p in &patterns {
        for (k, rep) in p.stays.iter().enumerate() {
            assert!(p.groups[k].iter().any(|sp| sp.pos == rep.pos));
        }
    }
}

#[test]
fn raising_support_prunes_patterns_but_improves_density() {
    let (_, loose) = mine(3, 15);
    let (_, strict) = mine(3, 45);
    assert!(strict.len() <= loose.len());
    if !strict.is_empty() && !loose.is_empty() {
        let avg = |ps: &[FinePattern]| {
            ps.iter()
                .map(|p| pattern_metrics(p).support as f64)
                .sum::<f64>()
                / ps.len() as f64
        };
        assert!(avg(&strict) >= avg(&loose));
    }
}

#[test]
fn airport_demand_is_visible_in_patterns() {
    let (ds, patterns) = mine(42, 15);
    let airport = ds.city.districts[ds.city.airport].venues[0];
    let touching = patterns
        .iter()
        .filter(|p| p.stays.iter().any(|sp| sp.pos.distance(&airport) < 500.0))
        .count();
    assert!(touching > 0, "airport patterns must appear at sigma=15");
}
