//! Determinism: the whole stack — generation, construction, recognition,
//! extraction, metrics — must be bit-reproducible given a seed, and
//! different seeds must actually produce different worlds.

use pervasive_miner::prelude::*;
use pm_core::metrics::summarize;
use pm_core::recognize::stay_points_of;
use pm_eval::run_all;

fn full_run(seed: u64) -> (Dataset, Vec<FinePattern>) {
    let ds = Dataset::generate(&CityConfig::tiny(seed));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    (ds, patterns)
}

#[test]
fn identical_seeds_give_identical_worlds() {
    let (a, pa) = full_run(77);
    let (b, pb) = full_run(77);
    assert_eq!(a.pois.len(), b.pois.len());
    assert!(a.pois.iter().zip(&b.pois).all(|(x, y)| x == y));
    assert_eq!(a.corpus.journeys, b.corpus.journeys);
    assert_eq!(pa.len(), pb.len());
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!(x.categories, y.categories);
        assert_eq!(x.members, y.members);
        assert_eq!(x.stays.len(), y.stays.len());
        for (sx, sy) in x.stays.iter().zip(&y.stays) {
            assert_eq!(sx.pos, sy.pos);
            assert_eq!(sx.time, sy.time);
            assert_eq!(sx.tags, sy.tags);
        }
    }
}

#[test]
fn different_seeds_give_different_worlds() {
    let (a, _) = full_run(1);
    let (b, _) = full_run(2);
    let identical = a
        .corpus
        .journeys
        .iter()
        .zip(&b.corpus.journeys)
        .filter(|(x, y)| x == y)
        .count();
    assert!(identical < a.corpus.journeys.len() / 10);
}

#[test]
fn six_pipeline_harness_is_deterministic() {
    let ds = Dataset::generate(&CityConfig::tiny(11));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let baseline = BaselineParams::default();
    let a = run_all(&ds, &params, &baseline).expect("valid params");
    let b = run_all(&ds, &params, &baseline).expect("valid params");
    for ((aa, pa), (ab, pb)) in a.iter().zip(&b) {
        assert_eq!(aa, ab);
        let sa = summarize(pa);
        let sb = summarize(pb);
        assert_eq!(sa.n_patterns, sb.n_patterns);
        assert_eq!(sa.coverage, sb.coverage);
        assert_eq!(sa.avg_sparsity.to_bits(), sb.avg_sparsity.to_bits());
        assert_eq!(sa.avg_consistency.to_bits(), sb.avg_consistency.to_bits());
    }
}
