//! The general pipeline of §4.2 end-to-end: *raw* GPS tracks (not taxi
//! endpoints) -> Definition-5 stay-point detection -> CSD recognition ->
//! pattern extraction. This is the "applicable to ubiquitous GPS
//! trajectories" claim of the paper, exercised on fix-by-fix probe tracks.

use pervasive_miner::prelude::*;
use pervasive_miner::synth::{generate_probe_tracks, GpsConfig};
use pm_core::recognize::{detect_stay_points, semantic_trajectories_of, stay_points_of};
use pm_core::types::Category;

fn mine_from_raw(seed: u64) -> (Vec<SemanticTrajectory>, Vec<FinePattern>) {
    let cfg = CityConfig::tiny(seed);
    let city = CityModel::generate(&cfg);
    let pois = pervasive_miner::synth::poi::generate_pois(&city);
    let tracks = generate_probe_tracks(
        &city,
        &GpsConfig {
            n_probes: 120,
            n_days: 2,
            seed,
            ..GpsConfig::default()
        },
    );

    // Stage 1: Definition 5 on every raw track. Dwell-chain stays sit
    // hours apart (the stay time is the dwell midpoint), so the temporal
    // constraint must match this regime — the paper's 60 min default fits
    // taxi pick-up/drop-off stays, not full-day dwell chains.
    let params = MinerParams {
        sigma: 15,
        delta_t: 12 * 3600,
        ..MinerParams::default()
    };
    let raw: Vec<_> = tracks.iter().map(|pt| pt.track.clone()).collect();
    let trajectories: Vec<SemanticTrajectory> = semantic_trajectories_of(&raw, &params);

    // Stage 2+3: CSD recognition and extraction.
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build(&pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, trajectories, &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    (recognized, patterns)
}

#[test]
fn raw_tracks_produce_multi_stay_trajectories() {
    let (trajectories, _) = mine_from_raw(41);
    assert!(!trajectories.is_empty());
    let multi = trajectories.iter().filter(|t| t.len() >= 2).count();
    assert!(
        multi as f64 > trajectories.len() as f64 * 0.8,
        "most probe days have home + work dwells: {multi}/{}",
        trajectories.len()
    );
}

#[test]
fn commute_pattern_emerges_from_raw_gps() {
    let (_, patterns) = mine_from_raw(41);
    assert!(!patterns.is_empty(), "raw-GPS mining found nothing");
    let commute = patterns.iter().find(|p| {
        p.categories.first() == Some(&Category::Residence)
            && p.categories.contains(&Category::Business)
    });
    assert!(
        commute.is_some(),
        "Residence -> Business missing: {:?}",
        patterns.iter().map(|p| p.describe()).collect::<Vec<_>>()
    );
}

#[test]
fn detection_is_robust_to_sampling_rate() {
    // Halving the fix rate must not destroy stay-point detection.
    let cfg = CityConfig::tiny(42);
    let city = CityModel::generate(&cfg);
    let params = MinerParams::default();
    for (drive, dwell) in [(15, 60), (60, 240)] {
        let tracks = generate_probe_tracks(
            &city,
            &GpsConfig {
                n_probes: 20,
                drive_sample_s: drive,
                dwell_sample_s: dwell,
                seed: 1,
                ..GpsConfig::default()
            },
        );
        let mut found = 0usize;
        for pt in &tracks {
            if !detect_stay_points(&pt.track, &params).is_empty() {
                found += 1;
            }
        }
        assert!(
            found == tracks.len(),
            "sampling ({drive}s/{dwell}s): stays missing in {} tracks",
            tracks.len() - found
        );
    }
}
