//! Streaming/batch parity: pm-stream's incremental stay-point detector fed
//! one fix at a time must reproduce the batch detector of Definition 5
//! **bit for bit** — same stay points (positions as raw IEEE-754 patterns),
//! same drop accounting — with out-of-order and duplicate timestamps
//! quarantined at the transport boundary and non-finite fixes degraded
//! exactly like the batch sanitize step. The batch reference itself must
//! agree across thread counts, so the equality chain is
//! `stream == batch(threads=1) == batch(threads=4)`.

use pervasive_miner::core::recognize::{
    detect_all_stay_points_tracked, detect_stay_points_tracked, recognize_stay_point_unit,
};
use pervasive_miner::core::types::{Category, GpsPoint, GpsTrajectory, StayPoint, Timestamp};
use pervasive_miner::prelude::*;
use pervasive_miner::stream::{
    EngineConfig, IngestEngine, IngestRecord, StayPointDetector, StreamParams,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Byte-exact encoding of a stay sequence (mirrors parallel_parity.rs).
fn fingerprint(stays: &[StayPoint]) -> String {
    let mut out = String::new();
    for s in stays {
        let _ = write!(
            out,
            "{:016x},{:016x},{};",
            s.pos.x.to_bits(),
            s.pos.y.to_bits(),
            s.time
        );
    }
    out
}

/// The transport-ordering filter the stream applies before detection:
/// non-increasing timestamps are quarantined, everything else (including
/// non-finite fixes, which advance the ordering clock) is admitted.
fn transport_filter(fixes: &[GpsPoint]) -> (Vec<GpsPoint>, usize) {
    let mut admitted = Vec::new();
    let mut quarantined = 0;
    let mut last: Option<Timestamp> = None;
    for &f in fixes {
        if last.is_some_and(|l| f.time <= l) {
            quarantined += 1;
        } else {
            last = Some(f.time);
            admitted.push(f);
        }
    }
    (admitted, quarantined)
}

/// One raw fix description drawn by proptest: a time delta (non-positive
/// deltas create the duplicates/out-of-order the transport must reject),
/// a dwell-cell index, a jitter offset, and a poison draw (values below
/// 0.06 turn the fix non-finite).
fn fix_strategy() -> impl Strategy<Value = (i64, u8, f64, f64)> {
    (-30i64..600, 0u8..4, -40.0f64..40.0, 0.0f64..1.0)
}

fn build_fixes(raw: &[(i64, u8, f64, f64)]) -> Vec<GpsPoint> {
    let mut t = 0i64;
    let mut out = Vec::with_capacity(raw.len());
    for &(dt, cell, jitter, poison) in raw {
        t += dt; // dt <= 0 yields the out-of-order/duplicate cases
        let x = if poison < 0.06 {
            f64::NAN
        } else {
            cell as f64 * 500.0 + jitter
        };
        out.push(GpsPoint::new(
            pervasive_miner::geo::LocalPoint::new(x, jitter * 0.5),
            t,
        ));
    }
    out
}

proptest! {
    /// Any fix sequence — dwells, travel, duplicates, rewinds, NaNs —
    /// streams to exactly the batch result on the admitted subsequence.
    #[test]
    fn stream_matches_batch_on_any_sequence(raw in proptest::collection::vec(fix_strategy(), 0..120)) {
        let fixes = build_fixes(&raw);
        let params = MinerParams::default();

        let mut detector = StayPointDetector::new(StreamParams::from_miner(&params));
        let mut streamed = Vec::new();
        for &f in &fixes {
            detector.push(f, &mut streamed);
        }
        detector.flush(&mut streamed);

        let (admitted, quarantined) = transport_filter(&fixes);
        let n_bad = admitted
            .iter()
            .filter(|p| !(p.pos.x.is_finite() && p.pos.y.is_finite()))
            .count();
        let mut events = Vec::new();
        let batch =
            detect_stay_points_tracked(&GpsTrajectory::new(admitted), &params, &mut events);

        prop_assert_eq!(fingerprint(&streamed), fingerprint(&batch));
        let stats = detector.stats();
        prop_assert_eq!(stats.quarantined, quarantined as u64);
        prop_assert_eq!(stats.dropped_non_finite, n_bad as u64);
        prop_assert_eq!(stats.emitted, streamed.len() as u64);
    }
}

/// Per-user trajectories through the full [`IngestEngine`] (interleaved
/// batches, recognition against a mined CSD) versus the batch pipeline:
/// same per-user stay points, same quarantine counts, same semantic
/// transition tallies — with the batch reference computed at both
/// `threads = 1` and `threads = 4`.
#[test]
fn engine_matches_batch_pipeline_across_thread_counts() {
    let ds = Dataset::generate(&CityConfig::tiny(2026));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let stays = pervasive_miner::core::recognize::stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let kernel = pervasive_miner::cluster::GaussianKernel::new(params.r3sigma);
    let recognize = |pos| recognize_stay_point_unit(&csd, &kernel, pos).2;

    // Synthetic per-user fix streams: dwell at unit centers long enough to
    // trigger Definition 5, with occasional rewinds to exercise quarantine.
    let users: Vec<(String, Vec<GpsPoint>)> = (0..8)
        .map(|u| {
            let mut fixes = Vec::new();
            let mut t = 1_000 * u as i64;
            for leg in 0..4 {
                let unit = &csd.units()[(u * 3 + leg * 5) % csd.units().len()];
                for k in 0..5 {
                    t += params.theta_t / 3;
                    fixes.push(GpsPoint::new(unit.center, t + k % 2));
                }
                if leg == 2 {
                    // A rewound fix the transport must quarantine.
                    fixes.push(GpsPoint::new(unit.center, t - 50));
                }
                t += params.theta_t * 2; // travel gap breaks the dwell
            }
            (format!("user-{u}"), fixes)
        })
        .collect();

    // Batch reference at two thread counts (must agree bit for bit).
    let mut reference: Vec<Vec<StayPoint>> = Vec::new();
    let mut reference_quarantined = 0usize;
    for threads in [1usize, 4] {
        let tp = MinerParams { threads, ..params };
        let mut admitted_all = Vec::new();
        let mut quarantined_total = 0;
        for (_, fixes) in &users {
            let (admitted, quarantined) = transport_filter(fixes);
            quarantined_total += quarantined;
            admitted_all.push(GpsTrajectory::new(admitted));
        }
        let mut events = Vec::new();
        let per_user = detect_all_stay_points_tracked(&admitted_all, &tp, &mut events);
        if threads == 1 {
            reference = per_user;
            reference_quarantined = quarantined_total;
        } else {
            assert_eq!(
                reference.iter().map(|s| fingerprint(s)).collect::<Vec<_>>(),
                per_user.iter().map(|s| fingerprint(s)).collect::<Vec<_>>(),
                "batch detection differs across thread counts"
            );
        }
    }

    // Stream the same fixes through the engine in interleaved batches.
    let mut engine = IngestEngine::new(EngineConfig::from_miner(&params)).expect("config");
    let max_len = users.iter().map(|(_, f)| f.len()).max().unwrap_or(0);
    let mut outcome_stays = 0u64;
    let mut outcome_quarantined = 0u64;
    for round in (0..max_len).step_by(3) {
        let mut batch = Vec::new();
        for (user, fixes) in &users {
            for &f in fixes.iter().skip(round).take(3) {
                batch.push((user.clone(), IngestRecord::Fix(f)));
            }
        }
        let outcome = engine.ingest_batch(&batch, recognize);
        outcome_stays += outcome.stays;
        outcome_quarantined += outcome.quarantined;
    }
    // End-of-stream: a final settling pass has no direct API on purpose
    // (live streams never end); the open dwell tail stays buffered, so the
    // batch reference is trimmed of each user's final stay when that stay
    // is still pending in the engine. Easiest exact comparison: push a
    // far-future breaker fix per user to force the tails out.
    let flush_t = 10_000_000;
    let breakers: Vec<(String, IngestRecord)> = users
        .iter()
        .map(|(user, _)| {
            (
                user.clone(),
                IngestRecord::Fix(GpsPoint::new(
                    pervasive_miner::geo::LocalPoint::new(1.0e9, 1.0e9),
                    flush_t,
                )),
            )
        })
        .collect();
    let outcome = engine.ingest_batch(&breakers, recognize);
    outcome_stays += outcome.stays;
    outcome_quarantined += outcome.quarantined;

    let reference_stays: usize = reference.iter().map(Vec::len).sum();
    assert_eq!(outcome_stays, reference_stays as u64, "stay count parity");
    assert_eq!(
        outcome_quarantined, reference_quarantined as u64,
        "quarantine parity"
    );

    // Transition parity: walk each user's batch stays through the same
    // recognizer and tally tagged consecutive pairs.
    let mut expected: BTreeMap<(Category, Category), u64> = BTreeMap::new();
    for per_user in &reference {
        let mut prev: Option<Category> = None;
        for sp in per_user {
            if let Some(cur) = recognize(sp.pos) {
                if let Some(p) = prev {
                    *expected.entry((p, cur)).or_default() += 1;
                }
                prev = Some(cur);
            }
        }
    }
    assert_eq!(engine.window().late_dropped(), 0, "no late drops expected");
    let got: BTreeMap<(Category, Category), u64> = engine
        .window()
        .counts()
        .into_iter()
        .map(|(from, to, n)| ((from, to), n))
        .collect();
    assert_eq!(got, expected, "transition tally parity");
    assert!(
        expected.values().sum::<u64>() > 0,
        "test must actually exercise transitions"
    );
}
