//! Cross-pipeline integration: the qualitative orderings of the paper's
//! Figs. 9–13 must hold on the synthetic corpus — CSD-based recognition
//! beats ROI-based recognition on semantic consistency, and CSD-PM leads on
//! pattern count and coverage.

use pervasive_miner::prelude::*;
use pm_core::metrics::{summarize, PatternSetSummary};
use pm_eval::figures;
use pm_eval::run_all;

fn results() -> Vec<(Approach, PatternSetSummary)> {
    let ds = Dataset::generate(&CityConfig::tiny(2024));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    run_all(&ds, &params, &BaselineParams::default())
        .expect("valid params")
        .into_iter()
        .map(|(a, ps)| (a, summarize(&ps)))
        .collect()
}

fn get(rows: &[(Approach, PatternSetSummary)], a: Approach) -> PatternSetSummary {
    rows.iter()
        .find(|(x, _)| *x == a)
        .expect("approach present")
        .1
}

#[test]
fn csd_pm_leads_on_coverage_and_is_competitive_on_counts() {
    // The strict #patterns ordering of Fig. 11 is asserted at evaluation
    // scale by the bench harness (EXPERIMENTS.md); at this test's tiny
    // scale, ROI's mislabeled fragments can add a few spurious
    // sigma-passing patterns, so counts get 25% slack while coverage —
    // the paper's headline CSD-PM win — stays strict.
    let rows = results();
    let csd_pm = get(&rows, Approach::CsdPm);
    assert!(csd_pm.n_patterns > 0);
    for a in Approach::ALL {
        if a == Approach::CsdPm {
            continue;
        }
        let other = get(&rows, a);
        assert!(
            (csd_pm.n_patterns as f64) >= other.n_patterns as f64 * 0.75,
            "CSD-PM {} patterns vs {} {}",
            csd_pm.n_patterns,
            a.label(),
            other.n_patterns
        );
        assert!(
            csd_pm.coverage as f64 >= other.coverage as f64 * 0.95,
            "CSD-PM coverage {} vs {} {}",
            csd_pm.coverage,
            a.label(),
            other.coverage
        );
    }
}

#[test]
fn csd_recognition_beats_roi_on_consistency() {
    // Fig. 10: every CSD-based pipeline must be at least as consistent as
    // its ROI counterpart.
    let rows = results();
    for (csd, roi) in [
        (Approach::CsdPm, Approach::RoiPm),
        (Approach::CsdSplitter, Approach::RoiSplitter),
        (Approach::CsdSdbscan, Approach::RoiSdbscan),
    ] {
        let c = get(&rows, csd);
        let r = get(&rows, roi);
        if r.n_patterns == 0 {
            continue; // ROI found nothing: trivially no counterexample
        }
        assert!(
            c.avg_consistency >= r.avg_consistency - 1e-9,
            "{} {:.4} vs {} {:.4}",
            csd.label(),
            c.avg_consistency,
            roi.label(),
            r.avg_consistency
        );
    }
}

#[test]
fn csd_pipelines_reach_paper_grade_consistency() {
    // Fig. 10: all CSD-based averages are above 0.99 in the paper; we allow
    // a little slack for the small synthetic corpus.
    let rows = results();
    for a in [Approach::CsdPm, Approach::CsdSplitter, Approach::CsdSdbscan] {
        let s = get(&rows, a);
        if s.n_patterns > 0 {
            assert!(
                s.avg_consistency > 0.95,
                "{}: {:.4}",
                a.label(),
                s.avg_consistency
            );
        }
    }
}

#[test]
fn fig9_histograms_are_consistent_with_summaries() {
    let ds = Dataset::generate(&CityConfig::tiny(5));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let results = run_all(&ds, &params, &BaselineParams::default()).expect("valid params");
    let rows = figures::fig9(&results);
    assert_eq!(rows.len(), 6);
    for row in &rows {
        assert_eq!(row.bins.iter().sum::<usize>(), row.summary.n_patterns);
    }
    // CSD-PM's mass concentrates in the sub-80 m bins (venue-compound
    // scale; the paper's "low sparsity range" claim, shifted by our
    // compound geometry — see DESIGN.md).
    let csd_pm = rows.iter().find(|r| r.approach == Approach::CsdPm).unwrap();
    if csd_pm.summary.n_patterns > 0 {
        let low: usize = csd_pm.bins[..16].iter().sum(); // < 80 m
        assert!(
            low * 2 >= csd_pm.summary.n_patterns,
            "low-sparsity mass {low} of {}",
            csd_pm.summary.n_patterns
        );
    }
}

#[test]
fn sigma_sweep_reproduces_fig11_trends() {
    let ds = Dataset::generate(&CityConfig::tiny(6));
    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    let points = figures::fig11_support_sweep(&recognized, &params, &baseline, &[10, 20, 40, 80])
        .expect("valid params");

    // Quantity falls as sigma rises (paper: "if support threshold is
    // increased ... the quantity falls"), for every approach.
    for a in Approach::ALL {
        let counts: Vec<usize> = points
            .iter()
            .map(|p| p.rows.iter().find(|(x, _)| *x == a).unwrap().1.n_patterns)
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "{}: counts {:?}", a.label(), counts);
        }
    }
    // And CSD recognition stays competitive with ROI under the same
    // extractor at the paper's sigma regime. (Cross-extractor count
    // orderings are an evaluation-scale property — ROI's label-flip
    // fragments inflate counts on a tiny corpus, so the factor here is
    // loose; see EXPERIMENTS.md.)
    for p in points.iter().filter(|p| p.value >= 20.0) {
        let csd = p
            .rows
            .iter()
            .find(|(x, _)| *x == Approach::CsdPm)
            .unwrap()
            .1;
        let roi = p
            .rows
            .iter()
            .find(|(x, _)| *x == Approach::RoiPm)
            .unwrap()
            .1;
        assert!(
            csd.n_patterns as f64 >= roi.n_patterns as f64 * 0.5,
            "sigma={}: CSD-PM {} vs ROI-PM {}",
            p.value,
            csd.n_patterns,
            roi.n_patterns
        );
    }
}
