//! Weekly mobility rhythms — the paper's Fig. 14(a)–(f) demonstration.
//!
//! Follows the paper's protocol: patterns are mined from *one day's* taxi
//! records at a time ("patterns discovered by Pervasive Miner in Shanghai
//! downtown region from one day taxi records of weekday or weekend"), then
//! broken down by time of day — dense, regular commute patterns on the
//! weekday, sparse irregular leisure patterns on the weekend.
//!
//! Run with: `cargo run --release --example weekly_patterns`

use pervasive_miner::eval::figures::mine_one_day;
use pervasive_miner::prelude::*;
use pm_core::recognize::stay_points_of;
use std::collections::BTreeMap;

fn main() {
    let dataset = Dataset::generate(&CityConfig::small(21));
    let params = MinerParams::default();

    let stays = stay_points_of(&dataset.trajectories);
    let csd = CitySemanticDiagram::build(&dataset.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, dataset.trajectories.clone(), &params).expect("recognize");

    // One day holds ~1/7 of the week's records; scale support accordingly.
    let day_params = params.with_sigma(10);
    let days = [(2i64, "Wednesday (weekday)"), (5, "Saturday (weekend)")];

    for (day, label) in days {
        let patterns = mine_one_day(&recognized, &day_params, day).expect("valid params");
        println!("== {label}: {} patterns", patterns.len());

        // Dominant transitions per time-of-day slot.
        for (slot, name) in [(0, "morning"), (1, "afternoon"), (2, "night")] {
            let in_slot: Vec<&FinePattern> = patterns
                .iter()
                .filter(|p| {
                    let hour = p.stays[0].time.rem_euclid(pm_core::types::DAY_SECS) / 3600;
                    let s = match hour {
                        5..=10 => 0,
                        11..=16 => 1,
                        _ => 2,
                    };
                    s == slot
                })
                .collect();
            println!("   {name}: {} patterns", in_slot.len());
            let mut by_shape: BTreeMap<String, (usize, usize)> = BTreeMap::new();
            for p in &in_slot {
                let e = by_shape.entry(p.describe()).or_insert((0, 0));
                e.0 += 1;
                e.1 += p.support();
            }
            let mut shapes: Vec<_> = by_shape.into_iter().collect();
            shapes.sort_by_key(|s| std::cmp::Reverse(s.1 .1));
            for (shape, (n, coverage)) in shapes.into_iter().take(3) {
                println!("      {shape}  ({n} patterns, {coverage} trajectories)");
            }
        }
        println!();
    }

    // The paper's qualitative finding, checked quantitatively.
    let weekday = mine_one_day(&recognized, &day_params, 2)
        .expect("valid params")
        .len();
    let weekend = mine_one_day(&recognized, &day_params, 5)
        .expect("valid params")
        .len();
    println!("weekday-day patterns: {weekday}; weekend-day patterns: {weekend}");
    println!(
        "paper's finding — \"weekend's patterns are sparse and irregular\": {}",
        if weekend < weekday {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}
