//! CSD explorer: inspect the City Semantic Diagram itself (the textual
//! counterpart of the paper's Fig. 6 map of Shanghai).
//!
//! Builds the diagram, prints construction statistics, the largest units,
//! and a worked semantic-recognition vote for one stay point (the paper's
//! Fig. 7 walkthrough).
//!
//! Run with: `cargo run --release --example csd_explorer`

use pervasive_miner::prelude::*;
use pm_cluster::GaussianKernel;
use pm_core::recognize::{recognize_stay_point, stay_points_of};

fn main() {
    let dataset = Dataset::generate(&CityConfig::small(11));
    let params = MinerParams::default();

    let stays = stay_points_of(&dataset.trajectories);
    let csd = CitySemanticDiagram::build(&dataset.pois, &stays, &params).expect("build");
    let stats = csd.stats();

    println!("City Semantic Diagram construction (Fig. 6 equivalent)");
    println!("  POIs                      {}", stats.n_pois);
    println!("  coarse clusters (Alg. 1)  {}", stats.n_coarse);
    println!("  leftover POIs             {}", stats.n_leftover);
    println!("  units after purification  {}", stats.n_purified);
    println!("  final units after merge   {}", stats.n_units);
    println!("  POIs covered by units     {}", stats.n_covered);
    println!("  single-category units     {:.1}%", stats.purity * 100.0);

    // The largest units and what they are.
    let mut units: Vec<(usize, &pm_core::construct::SemanticUnit)> =
        csd.units().iter().enumerate().collect();
    units.sort_by_key(|(_, u)| std::cmp::Reverse(u.members.len()));
    println!("\nlargest fine-grained semantic units:");
    for (uid, unit) in units.iter().take(8) {
        println!(
            "  unit {:>3}: {:>4} POIs at ({:>8.0}, {:>8.0})  tags {}",
            uid,
            unit.members.len(),
            unit.center.x,
            unit.center.y,
            unit.tags
        );
    }

    // A worked recognition vote (Fig. 7): take a real stay point and show
    // which unit wins.
    let sp = dataset.trajectories[0].stays[0];
    let kernel = GaussianKernel::new(params.r3sigma);
    let in_range = csd.range(sp.pos, params.r3sigma);
    println!(
        "\nsemantic recognition walkthrough (Fig. 7) for stay point at ({:.0}, {:.0}):",
        sp.pos.x, sp.pos.y
    );
    println!(
        "  {} POIs within R_3sigma = {} m",
        in_range.len(),
        params.r3sigma
    );
    let mut votes: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for &i in &in_range {
        if let Some(uid) = csd.unit_of(i) {
            *votes.entry(uid).or_default() +=
                csd.popularity(i) * kernel.coeff(csd.pois()[i].pos, sp.pos);
        }
    }
    let mut rows: Vec<(usize, f64)> = votes.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (uid, vote) in rows.iter().take(5) {
        println!(
            "  unit {:>3} vote {:>10.4}  tags {}",
            uid,
            vote,
            csd.units()[*uid].tags
        );
    }
    let tags = recognize_stay_point(&csd, &kernel, sp.pos);
    println!("  => recognized semantic property: {tags}");
}
