//! Pattern queries: the downstream-service view of mined patterns.
//!
//! The paper motivates mining with services — vouchers for Office -> Shop
//! commuters, transit planning, site selection. This example mines a week
//! of taxi data and answers those product questions with `PatternQuery`.
//!
//! Run with: `cargo run --release --example pattern_queries`

use pervasive_miner::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_core::types::{Category, WeekBucket};

fn main() {
    let dataset = Dataset::generate(&CityConfig::small(13));
    let params = MinerParams {
        sigma: 30,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&dataset.trajectories);
    let csd = CitySemanticDiagram::build(&dataset.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, dataset.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    println!("{} patterns mined\n", patterns.len());

    // "Which commuter flows should get shopping vouchers?"
    let voucher = PatternQuery::new()
        .from_category(Category::Business)
        .involving(Category::Shop)
        .min_support(30);
    println!("voucher targets (Office -> ... -> Shop):");
    for p in voucher.top_k(&patterns, 5) {
        println!("  {:<55} support {:>4}", p.describe(), p.support());
    }

    // "Where is weekday-morning commute demand concentrated?"
    let commute = PatternQuery::new()
        .from_category(Category::Residence)
        .to_category(Category::Business)
        .in_bucket(WeekBucket::WeekdayMorning);
    println!("\nweekday-morning commutes:");
    for p in commute.top_k(&patterns, 5) {
        println!(
            "  {:<30} from ({:>6.0},{:>6.0}) to ({:>6.0},{:>6.0})  support {:>4}",
            p.describe(),
            p.stays[0].pos.x,
            p.stays[0].pos.y,
            p.stays[1].pos.x,
            p.stays[1].pos.y,
            p.support()
        );
    }

    // "What happens around the airport?"
    let airport_pos = dataset.city.districts[dataset.city.airport].venues[0];
    let airport = PatternQuery::new().near(airport_pos, 500.0);
    println!("\nairport-involving patterns:");
    for p in airport.top_k(&patterns, 5) {
        println!("  {:<55} support {:>4}", p.describe(), p.support());
    }

    // "Any multi-leg evening chains?"
    let chains = PatternQuery::new().min_len(3);
    println!("\nmulti-leg chains:");
    for p in chains.top_k(&patterns, 5) {
        println!("  {:<55} support {:>4}", p.describe(), p.support());
    }
}
