//! Airport demand and the semantic-bias story — Fig. 14(g)/(h).
//!
//! Two findings the paper demonstrates on real Shanghai data:
//!
//! 1. The airport dominates taxi demand (a large share of all records).
//! 2. Hospital trips are *invisible* in check-in corpora (people do not
//!    share doctor visits) but taxi-based mining finds them — the semantic
//!    bias that motivates mining raw GPS data in the first place.
//!
//! Run with: `cargo run --release --example airport_hospital`

use pervasive_miner::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_core::types::Category;
use pm_synth::checkin::{generate_checkins, topic_ranking, SharingProfile};

fn main() {
    let dataset = Dataset::generate(&CityConfig::small(4));
    // Hospital flows are thinner than commutes; a lower support threshold
    // surfaces them (the paper inspects the hospital region specifically).
    let params = MinerParams {
        sigma: 15,
        ..MinerParams::default()
    };

    let stays = stay_points_of(&dataset.trajectories);
    let csd = CitySemanticDiagram::build(&dataset.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, dataset.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");

    // ---- (g) Airport demand -------------------------------------------------
    let airport = dataset.city.districts[dataset.city.airport].venues[0];
    let records_near = dataset
        .corpus
        .journeys
        .iter()
        .flat_map(|j| [j.pickup.pos, j.dropoff.pos])
        .filter(|p| p.distance(&airport) < 500.0)
        .count();
    let share = records_near as f64 / (dataset.corpus.journeys.len() * 2) as f64;
    println!(
        "airport: {:.1}% of all pick-up/drop-off records",
        share * 100.0
    );
    let airport_patterns: Vec<&FinePattern> = patterns
        .iter()
        .filter(|p| p.stays.iter().any(|sp| sp.pos.distance(&airport) < 500.0))
        .collect();
    println!("airport patterns discovered ({}):", airport_patterns.len());
    for p in airport_patterns.iter().take(6) {
        println!("  {:<55} support {:>4}", p.describe(), p.support());
    }

    // ---- (h) Hospital trips vs check-in bias --------------------------------
    let hospital_patterns: Vec<&FinePattern> = patterns
        .iter()
        .filter(|p| p.categories.contains(&Category::Medical))
        .collect();
    println!(
        "\nhospital patterns discovered from taxi data ({}):",
        hospital_patterns.len()
    );
    for p in hospital_patterns.iter().take(6) {
        println!("  {:<55} support {:>4}", p.describe(), p.support());
    }

    println!("\n...and what a check-in corpus would have shown instead:");
    for profile in [SharingProfile::new_york(), SharingProfile::tokyo()] {
        let checkins = generate_checkins(&dataset.corpus, &profile, 9);
        let ranking = topic_ranking(&checkins);
        let medical = ranking
            .iter()
            .find(|r| r.0 == Category::Medical)
            .map(|r| r.2)
            .unwrap_or(0.0);
        let rank = ranking
            .iter()
            .position(|r| r.0 == Category::Medical)
            .unwrap()
            + 1;
        println!(
            "  {:<10} {} check-ins; Medical share {:.3}% (rank {} of 15)",
            profile.name,
            checkins.len(),
            medical * 100.0,
            rank
        );
    }
    let actual_medical = dataset
        .corpus
        .journeys
        .iter()
        .filter(|j| j.true_to == Category::Medical)
        .count();
    println!(
        "  ground truth: {} hospital-bound journeys actually happened ({:.2}% of trips)",
        actual_medical,
        actual_medical as f64 / dataset.corpus.journeys.len() as f64 * 100.0
    );
}
