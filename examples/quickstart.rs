//! Quickstart: the canonical end-to-end Pervasive Miner flow.
//!
//! Generates a small synthetic city, builds the City Semantic Diagram from
//! the POI database and the taxi stay-point corpus, recognizes the semantic
//! property of every stay point, and mines fine-grained mobility patterns.
//!
//! Run with: `cargo run --release --example quickstart`

use pervasive_miner::prelude::*;
use pm_core::metrics::{pattern_metrics, summarize};
use pm_core::recognize::stay_points_of;

fn main() {
    // 1. Data: a synthetic city with POIs and a week of taxi journeys
    //    (substitute your own POI table and pick-up/drop-off records here).
    let config = CityConfig::small(7);
    let dataset = Dataset::generate(&config);
    println!(
        "city: {} POIs, {} taxi journeys, {} linked trajectories",
        dataset.pois.len(),
        dataset.corpus.journeys.len(),
        dataset.trajectories.len()
    );

    // 2. Build the City Semantic Diagram: popularity-based clustering,
    //    KL-divergence purification, cosine merging (paper §4.1).
    let params = MinerParams {
        sigma: 30,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&dataset.trajectories);
    let csd = CitySemanticDiagram::build(&dataset.pois, &stays, &params).expect("build");
    let stats = csd.stats();
    println!(
        "CSD: {} fine-grained semantic units covering {} POIs ({:.0}% single-category)",
        stats.n_units,
        stats.n_covered,
        stats.purity * 100.0
    );

    // 3. Recognize the semantic property of every stay point (paper §4.2).
    let recognized = recognize_all(&csd, dataset.trajectories.clone(), &params).expect("recognize");
    let tagged = recognized
        .iter()
        .flat_map(|t| &t.stays)
        .filter(|sp| !sp.tags.is_empty())
        .count();
    let total: usize = recognized.iter().map(|t| t.len()).sum();
    println!("recognized {tagged}/{total} stay points");

    // 4. Mine fine-grained patterns (paper §4.3, Algorithm 4).
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    let summary = summarize(&patterns);
    println!(
        "\n{} fine-grained patterns, coverage {}, avg sparsity {:.1} m, avg consistency {:.3}\n",
        summary.n_patterns, summary.coverage, summary.avg_sparsity, summary.avg_consistency
    );
    println!("top patterns:");
    for p in patterns.iter().take(10) {
        let m = pattern_metrics(p);
        println!(
            "  {:<55} support {:>4}  sparsity {:>5.1} m  consistency {:.3}",
            p.describe(),
            p.support(),
            m.spatial_sparsity,
            m.semantic_consistency
        );
    }
}
