//! Regenerates the committed example dataset under `examples/data/`.
//!
//! The dataset is the tiny synthetic city at the shared bench seed, exported
//! through the `pm-io` writers in the real CSV input formats (WGS-84,
//! Shanghai-anchored). A few deliberately malformed lines are appended to
//! each file so the example doubles as a lenient-ingestion demo: CI mines it
//! with `--lenient --report` and the run report shows nonzero quarantine
//! tallies next to the clean counters.
//!
//! ```text
//! cargo run --example export_example_data [OUT_DIR]
//! ```

use pervasive_miner::io::{write_journeys, write_pois, JourneyRecord};
use pervasive_miner::prelude::*;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/data".to_string());
    let ds = Dataset::generate(&CityConfig::tiny(2020));
    // The paper's deployment frame: a local meter grid anchored at Shanghai.
    let projection = Projection::new(GeoPoint::new(121.4737, 31.2304));

    let mut pois_csv = write_pois(&ds.pois, &projection);
    pois_csv.push_str("9001,not-a-number,31.2304,shop,0\n"); // unparsable lon
    pois_csv.push_str("9002,121.4700,31.2300,palace,0\n"); // unknown category

    let journeys: Vec<JourneyRecord> = ds
        .corpus
        .journeys
        .iter()
        .map(|j| JourneyRecord {
            pickup: j.pickup,
            dropoff: j.dropoff,
            card: j.passenger,
        })
        .collect();
    let mut journeys_csv = write_journeys(&journeys, &projection);
    journeys_csv.push_str("121.4700,31.2300,500,121.4800,31.2400,100,\n"); // time travel
    journeys_csv.push_str("121.4700,31.2300,oops,121.4800,31.2400,900,\n"); // unparsable time

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    std::fs::write(format!("{out_dir}/pois.csv"), pois_csv).expect("write pois.csv");
    std::fs::write(format!("{out_dir}/journeys.csv"), journeys_csv).expect("write journeys.csv");
    eprintln!(
        "wrote {out_dir}/pois.csv ({} POIs + 2 bad lines) and {out_dir}/journeys.csv ({} journeys + 2 bad lines)",
        ds.pois.len(),
        journeys.len()
    );
}
