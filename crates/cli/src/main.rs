//! `pervasive-miner` — command-line front end.
//!
//! ```text
//! pervasive-miner mine   [--scale tiny|small|paper] [--seed N] [--sigma N]
//!                        [--pois FILE --journeys FILE] [--lenient]
//!                        [--artifact FILE] [--top N]
//! pervasive-miner serve  --artifact FILE [--addr HOST:PORT] [--threads N]
//!                        [--shards N] [--wal-dir DIR]
//!                        [--remine-interval SECS] [--remine-dir DIR]
//! pervasive-miner replay --journeys FILE [--addr HOST:PORT] [--rate N] [--batch N]
//!                        [--users N]
//! pervasive-miner motifs --artifact FILE [--journeys FILE] [--scale ..] [--seed N]
//!                        [--top N] [--out FILE]
//! pervasive-miner artifact-check <FILE>
//! pervasive-miner fig    <6|9|10|11|12|13|14>  [--scale ..] [--seed N] [--csv DIR]
//! pervasive-miner table  <1|3>                 [--scale ..] [--seed N]
//! pervasive-miner all    [--scale ..] [--seed N] [--csv DIR]
//! pervasive-miner svg    [--scale ..] [--seed N] [--out FILE]
//! ```
//!
//! `mine` runs the CSD-PM pipeline and prints the top patterns; `fig` and
//! `table` regenerate one paper figure/table; `all` regenerates everything
//! (optionally exporting CSVs for plotting).
//!
//! By default `mine` runs on a synthetic city; given `--pois` and
//! `--journeys` it ingests real CSV data instead (WGS-84, projected into a
//! Shanghai-anchored local frame). Ingestion is strict — the first
//! malformed line aborts with its line number — unless `--lenient` is
//! passed, which quarantines malformed records, mines what remains, and
//! prints a dropped-records summary to stderr.
//!
//! `mine --artifact` additionally persists the full run (CSD + patterns +
//! parameters) as a versioned `pm-store` artifact; `serve` loads such an
//! artifact and answers semantic queries over HTTP (including live
//! ingestion at `POST /v1/ingest` and artifact hot-swap at
//! `POST /v1/reload`); `replay` streams a journey CSV into a running
//! server's ingest endpoint at a configurable rate; `artifact-check`
//! verifies an artifact on disk re-serializes byte-identically.
//!
//! `motifs` mines the daily mobility-motif distribution of a trajectory
//! corpus (a journeys CSV, or the synthetic city named by `--scale`/
//! `--seed`) against a stored artifact's CSD, prints the ranked classes,
//! and writes the table back into the artifact as its optional motif
//! section — served at `GET /v1/motifs` by `serve`.
//!
//! `cohorts` embeds every user of such a corpus as a sparse semantic-unit
//! visit/transition vector, clusters the population into life-pattern
//! cohorts (`--k` fixes the count, `--k-min` the k-anonymity floor), and
//! writes the table back as the optional cohort section — served at
//! `GET /v1/cohorts` and the per-user endpoints.

use pervasive_miner::core::construct::ConstructionOptions;
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::core::types::Poi;
use pervasive_miner::eval::{export, figures, report, run_all};
use pervasive_miner::io::{
    journeys_to_trajectories, read_journeys_observed, read_pois_observed, IngestMode,
    QuarantineReport,
};
use pervasive_miner::prelude::*;
use pervasive_miner::serve::{ServeConfig, ServeState, Server, Snapshot};
use pervasive_miner::store::Artifact;
use pervasive_miner::stream::EngineConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    target: Option<String>,
    scale: String,
    seed: u64,
    sigma: Option<usize>,
    csv: Option<PathBuf>,
    out: Option<PathBuf>,
    pois: Option<PathBuf>,
    journeys: Option<PathBuf>,
    lenient: bool,
    threads: Option<usize>,
    report: Option<PathBuf>,
    report_format: ReportFormat,
    artifact: Option<PathBuf>,
    top: usize,
    addr: String,
    rate: u64,
    batch: usize,
    wal_dir: Option<PathBuf>,
    remine_interval: u64,
    remine_dir: Option<PathBuf>,
    shards: Option<usize>,
    users: Option<usize>,
    k: usize,
    k_min: u32,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Json,
    Text,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        target: None,
        scale: "small".into(),
        seed: 2020,
        sigma: None,
        csv: None,
        out: None,
        pois: None,
        journeys: None,
        lenient: false,
        threads: None,
        report: None,
        report_format: ReportFormat::Json,
        artifact: None,
        top: 20,
        addr: "127.0.0.1:8080".into(),
        rate: 0,
        batch: 256,
        wal_dir: None,
        remine_interval: 0,
        remine_dir: None,
        shards: None,
        users: None,
        k: 0,
        k_min: pervasive_miner::cohort::DEFAULT_K_MIN,
    };
    let mut positional = Vec::new();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => args.scale = argv.next().ok_or("--scale needs a value")?,
            "--seed" => {
                args.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--sigma" => {
                args.sigma = Some(
                    argv.next()
                        .ok_or("--sigma needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --sigma: {e}"))?,
                )
            }
            "--csv" => args.csv = Some(PathBuf::from(argv.next().ok_or("--csv needs a dir")?)),
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or("--out needs a file")?)),
            "--pois" => args.pois = Some(PathBuf::from(argv.next().ok_or("--pois needs a file")?)),
            "--journeys" => {
                args.journeys = Some(PathBuf::from(argv.next().ok_or("--journeys needs a file")?))
            }
            "--lenient" => args.lenient = true,
            "--report" => {
                args.report = Some(PathBuf::from(argv.next().ok_or("--report needs a file")?))
            }
            "--report-format" => {
                args.report_format =
                    match argv.next().ok_or("--report-format needs a value")?.as_str() {
                        "json" => ReportFormat::Json,
                        "text" => ReportFormat::Text,
                        other => return Err(format!("bad --report-format '{other}' (json|text)")),
                    }
            }
            "--threads" => {
                args.threads = Some(
                    argv.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                )
            }
            "--artifact" => {
                args.artifact = Some(PathBuf::from(argv.next().ok_or("--artifact needs a file")?))
            }
            "--top" => {
                args.top = argv
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?
            }
            "--addr" => args.addr = argv.next().ok_or("--addr needs host:port")?,
            "--wal-dir" => {
                args.wal_dir = Some(PathBuf::from(argv.next().ok_or("--wal-dir needs a dir")?))
            }
            "--remine-interval" => {
                args.remine_interval = argv
                    .next()
                    .ok_or("--remine-interval needs seconds")?
                    .parse()
                    .map_err(|e| format!("bad --remine-interval: {e}"))?
            }
            "--remine-dir" => {
                args.remine_dir = Some(PathBuf::from(
                    argv.next().ok_or("--remine-dir needs a dir")?,
                ))
            }
            "--shards" => {
                args.shards = Some(
                    argv.next()
                        .ok_or("--shards needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?,
                );
                if args.shards == Some(0) {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--users" => {
                args.users = Some(
                    argv.next()
                        .ok_or("--users needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --users: {e}"))?,
                );
                if args.users == Some(0) {
                    return Err("--users must be at least 1".into());
                }
            }
            "--rate" => {
                args.rate = argv
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?
            }
            "--k" => {
                args.k = argv
                    .next()
                    .ok_or("--k needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?
            }
            "--k-min" => {
                args.k_min = argv
                    .next()
                    .ok_or("--k-min needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --k-min: {e}"))?;
                if args.k_min == 0 {
                    return Err("--k-min must be at least 1".into());
                }
            }
            "--batch" => {
                args.batch = argv
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --batch: {e}"))?;
                if args.batch == 0 {
                    return Err("--batch must be at least 1".into());
                }
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    args.target = positional.into_iter().next();
    Ok(args)
}

fn usage() -> String {
    "usage: pervasive-miner <mine|serve|replay|motifs|cohorts|artifact-check|fig|table|all|svg> [target] \
     [--scale tiny|small|paper] [--seed N] [--sigma N] [--csv DIR] [--out FILE] \
     [--pois FILE --journeys FILE] [--lenient] [--threads N] \
     [--report FILE] [--report-format json|text] \
     [--artifact FILE] [--top N] [--addr HOST:PORT] [--rate N] [--batch N] \
     [--users N] [--shards N] [--wal-dir DIR] [--remine-interval SECS] [--remine-dir DIR]\n\
     --pois/--journeys: mine real CSV data instead of a synthetic city\n\
     --lenient: quarantine malformed input lines instead of aborting on the \
     first one; a dropped-records summary goes to stderr\n\
     --threads: worker threads for the data-parallel pipeline stages \
     (0 = all cores; default: the PM_THREADS environment variable, else 1). \
     Results are bit-identical at every thread count\n\
     --report: write a machine-readable run report (per-stage wall time, \
     counters, degradation/quarantine tallies) after `mine`; \
     --report-format picks json (default) or a text table\n\
     --artifact: with `mine`, also write the run as a pm-store artifact; \
     with `serve`, the artifact to load (required)\n\
     --top: how many patterns `mine` prints (default 20)\n\
     --addr: `serve` listen address (default 127.0.0.1:8080; port 0 picks \
     an ephemeral port, announced on stderr); for `replay`, the server to \
     stream into\n\
     --shards: with `serve`, split the live ingest engine into N user-keyed \
     shards, each with its own worker thread and WAL segment stream \
     (default: the PM_SHARDS environment variable, else 1). Merged live \
     reads are byte-identical at every shard count; a WAL dir remembers \
     its shard count and refuses to reopen with a different one\n\
     --wal-dir: with `serve`, write-ahead-log accepted ingest batches into \
     DIR and recover the live engine state from it on startup — a killed \
     server restarts where it left off; SIGINT/SIGTERM cut a final \
     checkpoint before exiting\n\
     --remine-interval: with `serve`, re-mine the accumulated live stays \
     every SECS seconds in a supervised background job and hot-swap the \
     snapshot on success (0 = off, the default); status at GET /v1/miner\n\
     --remine-dir: where re-mined generations are published (default: the \
     artifact path with a .generations extension). If the --artifact file \
     is missing or damaged, `serve` degrades to the newest verifiable \
     generation found here\n\
     replay --journeys FILE: stream a journey CSV into a running server's \
     POST /v1/ingest as live stay records; --rate caps records/second \
     (0 = unthrottled), --batch sets records per request (default 256), \
     --users folds the stream onto N synthetic user ids (u0..uN-1) to \
     exercise a chosen user cardinality; overload answers are retried \
     honoring the server's Retry-After\n\
     artifact-check <FILE>: reload an artifact, verify it re-serializes \
     byte-identically, and report which optional sections it carries\n\
     motifs --artifact FILE: mine daily mobility motifs (per-user-per-day \
     unit-transition graphs, canonicalized) from --journeys CSV or the \
     synthetic --scale/--seed city, print the --top ranked classes, and \
     write the table into the artifact (--out writes elsewhere)\n\
     cohorts --artifact FILE: embed each user's semantic-unit visit/\
     transition profile, cluster users into life-pattern cohorts, and \
     write the table into the artifact (--out writes elsewhere; corpus \
     from --journeys CSV or the synthetic --scale/--seed city); --k fixes \
     the cohort count (0 = auto), --k-min sets the k-anonymity floor \
     below which cohort aggregates are suppressed (default 5)"
        .into()
}

fn config(scale: &str, seed: u64) -> Result<CityConfig, String> {
    match scale {
        "tiny" => Ok(CityConfig::tiny(seed)),
        "small" => Ok(CityConfig::small(seed)),
        "paper" => Ok(CityConfig::paper(seed)),
        other => Err(format!("unknown scale '{other}' (tiny|small|paper)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cfg = config(&args.scale, args.seed)?;
    let mut params = MinerParams::default();
    if args.scale == "tiny" {
        params.sigma = 20; // sensible support for the small corpus
    }
    if let Some(s) = args.sigma {
        params.sigma = s;
    }
    if let Some(t) = args.threads {
        params.threads = t;
    }

    if args.report.is_some() && args.command != "mine" {
        return Err("--report only applies to the `mine` command".into());
    }
    if args.artifact.is_some()
        && !matches!(
            args.command.as_str(),
            "mine" | "serve" | "motifs" | "cohorts"
        )
    {
        return Err(
            "--artifact only applies to the `mine`, `serve`, `motifs`, and `cohorts` commands"
                .into(),
        );
    }

    // Commands that operate on a stored artifact never need a synthetic
    // city — branch before dataset generation.
    match args.command.as_str() {
        "serve" => return serve_command(&args),
        "replay" => return replay_command(&args),
        "artifact-check" => return artifact_check(&args),
        "motifs" => return motifs_command(&args, &params),
        "cohorts" => return cohorts_command(&args, &params),
        _ => {}
    }

    if args.pois.is_some() || args.journeys.is_some() {
        if args.command != "mine" {
            return Err("--pois/--journeys only apply to the `mine` command".into());
        }
        return mine_ingested(&args, &params);
    }

    eprintln!(
        "generating {} city (seed {}), sigma = {} ...",
        args.scale, args.seed, params.sigma
    );
    let ds = Dataset::generate(&cfg);
    eprintln!(
        "  {} POIs, {} journeys, {} trajectories",
        ds.pois.len(),
        ds.corpus.journeys.len(),
        ds.trajectories.len()
    );

    match args.command.as_str() {
        "mine" => mine(&ds, &params, &args),
        "svg" => svg(&ds, &params, &args),
        "fig" => figure(&ds, &params, args.target.as_deref().ok_or(usage())?, &args),
        "table" => table(&ds, args.target.as_deref().ok_or(usage())?, &args),
        "all" => {
            for t in ["1", "3"] {
                table(&ds, t, &args)?;
            }
            for f in ["6", "9", "10", "11", "12", "13", "14"] {
                figure(&ds, &params, f, &args)?;
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn mine(ds: &Dataset, params: &MinerParams, args: &Args) -> Result<(), String> {
    let obs = observer(args, params);
    let (csd, patterns) = mine_pipeline(&ds.pois, ds.trajectories.clone(), params, &obs, args.top)?;
    // Synthetic cities live in a local meter frame with no geographic
    // anchor, so the artifact carries no projection.
    write_artifact(args, Artifact::new(csd, patterns, *params))?;
    write_report(args, &obs)
}

/// Persists the mined run when `--artifact` was requested.
fn write_artifact(args: &Args, artifact: Artifact) -> Result<(), String> {
    let Some(path) = &args.artifact else {
        return Ok(());
    };
    artifact
        .write_file(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!(
        "wrote artifact to {} ({})",
        path.display(),
        artifact.describe()
    );
    Ok(())
}

/// A recording handle when `--report` was requested, the no-op otherwise.
fn observer(args: &Args, params: &MinerParams) -> Obs {
    if args.report.is_none() {
        return Obs::noop();
    }
    let obs = Obs::enabled();
    obs.set_threads(pm_runtime::resolve_threads(params.threads));
    obs
}

/// Dumps the run report to the `--report` path in the requested format.
fn write_report(args: &Args, obs: &Obs) -> Result<(), String> {
    let Some(path) = &args.report else {
        return Ok(());
    };
    let report = obs.report();
    let body = match args.report_format {
        ReportFormat::Json => report.to_json(),
        ReportFormat::Text => report.to_text(),
    };
    std::fs::write(path, body).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("wrote run report to {}", path.display());
    Ok(())
}

/// Reads real POI/journey CSVs (strict or lenient per `--lenient`) and runs
/// the mining pipeline on them. Quarantined records are summarized on
/// stderr; the run proceeds on whatever survived.
fn mine_ingested(args: &Args, params: &MinerParams) -> Result<(), String> {
    let (pois_path, journeys_path) = match (&args.pois, &args.journeys) {
        (Some(p), Some(j)) => (p, j),
        _ => return Err("mining real data needs both --pois and --journeys".into()),
    };
    let mode = if args.lenient {
        IngestMode::Lenient
    } else {
        IngestMode::Strict
    };
    // The paper's deployment frame: a local meter grid anchored at Shanghai.
    let projection = pervasive_miner::io::default_projection();
    let read = |path: &Path| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let ingest_err = |path: &Path, e: pervasive_miner::io::IoError| {
        format!(
            "{}: {e} (use --lenient to quarantine bad lines)",
            path.display()
        )
    };

    let obs = observer(args, params);
    let (pois, poi_report) =
        read_pois_observed(&read(pois_path)?, &projection, mode, params.threads, &obs)
            .map_err(|e| ingest_err(pois_path, e))?;
    let (journeys, journey_report) = read_journeys_observed(
        &read(journeys_path)?,
        &projection,
        mode,
        params.threads,
        &obs,
    )
    .map_err(|e| ingest_err(journeys_path, e))?;
    report_quarantine(pois_path, &poi_report);
    report_quarantine(journeys_path, &journey_report);

    let trajectories = journeys_to_trajectories(&journeys);
    eprintln!(
        "ingested {} POIs, {} journeys -> {} trajectories, sigma = {}",
        pois.len(),
        journeys.len(),
        trajectories.len(),
        params.sigma
    );
    let (csd, patterns) = mine_pipeline(&pois, trajectories, params, &obs, args.top)?;
    // Ingested data is geographic: store the shared origin so the service
    // can answer lat/lon queries in the same frame.
    write_artifact(
        args,
        Artifact::new(csd, patterns, *params).with_projection(pervasive_miner::io::DEFAULT_ORIGIN),
    )?;
    write_report(args, &obs)
}

/// Unix graceful shutdown: SIGINT/SIGTERM flip an atomic flag from an
/// async-signal-safe handler; a monitor thread polls it and drives the
/// server's cooperative shutdown (which drains connections and cuts a
/// final WAL checkpoint).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    /// The handler itself only stores to an atomic — the only thing that
    /// is safe to do in signal context.
    extern "C" fn mark_shutdown(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, mark_shutdown as *const () as usize);
            signal(SIGTERM, mark_shutdown as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Loads an artifact and serves semantic queries over HTTP until killed
/// (or the listener fails). The bound address goes to stderr so scripts
/// can use `--addr 127.0.0.1:0` and discover the ephemeral port.
/// The artifact path is remembered as the default for `POST /v1/reload`,
/// so re-mining to the same file and hitting reload hot-swaps the service.
///
/// The online loop rides on three optional flags: `--wal-dir` makes live
/// ingest crash-safe (log before engine, checkpoint periodically, recover
/// on startup), `--remine-interval` runs the supervised background
/// re-miner, and `--remine-dir` is where its generations publish — also
/// the last-good fallback when the primary artifact won't load.
fn serve_command(args: &Args) -> Result<(), String> {
    use pervasive_miner::serve::{RemineConfig, Reminer};
    use pervasive_miner::store::GenerationStore;
    use pervasive_miner::stream::{Recognizer, ShardConfig, ShardedEngine, WalConfig};

    let path = args
        .artifact
        .as_ref()
        .ok_or("serve needs --artifact FILE (produce one with `mine --artifact`)")?;
    let obs = Obs::enabled();
    let remine_dir = args
        .remine_dir
        .clone()
        .unwrap_or_else(|| path.with_extension("generations"));

    // Load the primary artifact; when it is missing or damaged, degrade to
    // the newest verifiable generation the re-miner published — a server
    // that survived earlier crashes stays serveable.
    let artifact = match Artifact::read_file(path) {
        Ok(artifact) => {
            eprintln!("loaded {}: {}", path.display(), artifact.describe());
            artifact
        }
        Err(primary_err) => {
            let fallback = GenerationStore::open(&remine_dir, 1)
                .and_then(|store| store.latest_good())
                .ok()
                .flatten();
            match fallback {
                Some((generation, artifact)) => {
                    obs.incr("miner.degraded_to_last_good", 1);
                    eprintln!(
                        "warning: {}: {primary_err}; degraded to last-good generation \
                         {generation} from {}",
                        path.display(),
                        remine_dir.display()
                    );
                    artifact
                }
                None => return Err(format!("{}: {primary_err}", path.display())),
            }
        }
    };
    let engine_config = EngineConfig::from_miner(&artifact.params);
    let snapshot =
        Arc::new(Snapshot::new(artifact).map_err(|e| format!("{}: {e}", path.display()))?);

    // The live ingest engine: N user-keyed shards (--shards, PM_SHARDS,
    // else 1), each with its own worker and — with --wal-dir — its own WAL
    // segment stream. Opening restores every shard (checkpoint first, then
    // sealed replay of intact frames); recovery tallies land on the same
    // wal.* counters /v1/stats exposes.
    let shards = args.shards.unwrap_or_else(pm_runtime::default_shards);
    let mut shard_config = ShardConfig::new(shards, engine_config);
    if let Some(dir) = &args.wal_dir {
        shard_config = shard_config.with_wal(WalConfig::new(dir));
    }
    let recognize: Recognizer = {
        let snapshot = Arc::clone(&snapshot);
        Arc::new(move |pos| snapshot.primary_category(pos))
    };
    let (engine, recovery) =
        ShardedEngine::open(shard_config, &recognize).map_err(|e| match &args.wal_dir {
            Some(dir) => format!("wal {}: {e}", dir.display()),
            None => format!("engine: {e}"),
        })?;
    if shards > 1 {
        eprintln!("ingest sharded across {shards} user-keyed shards");
    }
    if let Some(dir) = &args.wal_dir {
        let r = &recovery.report;
        obs.incr("wal.replayed_batches", r.replayed_batches);
        obs.incr("wal.replayed_records", r.replayed_records);
        obs.incr("wal.torn_frames", r.torn_frames);
        obs.incr("wal.corrupt_frames", r.corrupt_frames);
        eprintln!(
            "wal {}: recovered {}/{shards} shards from checkpoints (replayed {} batches / \
             {} records, {} torn + {} corrupt frames dropped)",
            dir.display(),
            recovery.checkpoints_restored,
            r.replayed_batches,
            r.replayed_records,
            r.torn_frames,
            r.corrupt_frames,
        );
    }

    let state = Arc::new(
        ServeState::with_engine(Arc::clone(&snapshot), engine)
            .with_reload_path(path)
            .with_obs(obs.clone()),
    );

    let config = ServeConfig {
        threads: args.threads.unwrap_or(0),
        ..ServeConfig::default()
    };
    let server = Server::bind_with_state(&args.addr, Arc::clone(&state), config, obs.clone())
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("listening on {addr}");

    // The supervised background re-miner: publishes verified generations
    // into the store and hot-swaps the snapshot on success.
    let reminer = if args.remine_interval > 0 {
        let remine = RemineConfig {
            interval: std::time::Duration::from_secs(args.remine_interval),
            ..RemineConfig::default()
        };
        let store = GenerationStore::open(&remine_dir, remine.keep_generations)
            .map_err(|e| format!("{}: {e}", remine_dir.display()))?;
        eprintln!(
            "re-mining every {}s into {} (keeping {} generations)",
            args.remine_interval,
            remine_dir.display(),
            remine.keep_generations
        );
        Some(Reminer::spawn(Arc::clone(&state), store, remine, obs))
    } else {
        None
    };

    #[cfg(unix)]
    {
        signals::install();
        let handle = server.shutdown_handle().map_err(|e| e.to_string())?;
        std::thread::spawn(move || loop {
            if signals::requested() {
                eprintln!("shutdown signal received; draining ...");
                handle.shutdown();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
    }

    // run() drains connections and cuts the final WAL checkpoint itself.
    let result = server.run().map_err(|e| format!("serve: {e}"));
    if let Some(reminer) = reminer {
        reminer.stop();
    }
    eprintln!("server stopped");
    result
}

/// Streams a journey CSV into a running server's `POST /v1/ingest`.
///
/// Each journey becomes two live **stay** records sharing one user id (the
/// payment card when present, an anonymous per-journey id otherwise) — in
/// the taxi regime pick-ups and drop-offs *are* stays, so they bypass dwell
/// detection and feed the transition window directly. Coordinates go over
/// the wire in the shared Shanghai-anchored local frame. Overload answers
/// (`429`/`503`) back off and retry; any other failure aborts with a
/// nonzero exit.
fn replay_command(args: &Args) -> Result<(), String> {
    use pervasive_miner::serve::client::Conn;
    use std::fmt::Write as _;

    let path = args
        .journeys
        .as_ref()
        .ok_or("replay needs --journeys FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let addr: std::net::SocketAddr = args
        .addr
        .parse()
        .map_err(|e| format!("bad --addr {}: {e}", args.addr))?;
    let projection = pervasive_miner::io::default_projection();

    // (user, x, y, t) stay records, lazily drawn from the CSV. With
    // --users N the stream folds onto N synthetic ids (u0..uN-1) so a
    // small CSV can exercise any user cardinality.
    let fold_users = args.users;
    let mut skipped = 0usize;
    let records = pervasive_miner::io::JourneyStream::new(&text, &projection)
        .enumerate()
        .filter_map(|(i, parsed)| match parsed {
            Ok(j) => {
                let user = match fold_users {
                    Some(n) => format!("u{}", i % n),
                    None => match j.card {
                        Some(card) => format!("card-{card}"),
                        None => format!("anon-{i}"),
                    },
                };
                Some([(user.clone(), j.pickup), (user, j.dropoff)])
            }
            Err(_) => {
                skipped += 1;
                None
            }
        })
        .flatten();

    let mut conn = Conn::open(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut sent = 0u64;
    let mut batches = 0u64;
    let mut accepted = 0u64;
    let mut quarantined = 0u64;
    let mut stays = 0u64;
    let mut transitions = 0u64;
    let started = std::time::Instant::now();

    let mut batch: Vec<(String, pervasive_miner::core::types::GpsPoint)> =
        Vec::with_capacity(args.batch);
    let mut pending = records.peekable();
    while pending.peek().is_some() {
        batch.clear();
        while batch.len() < args.batch {
            match pending.next() {
                Some(r) => batch.push(r),
                None => break,
            }
        }
        let mut body = String::from("{\"stays\":[");
        for (i, (user, p)) in batch.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"user\":\"{user}\",\"x\":{},\"y\":{},\"t\":{}}}",
                p.pos.x, p.pos.y, p.time
            );
        }
        body.push_str("]}");

        // Bounded retry on overload; reconnect when the server closed the
        // keep-alive session (error statuses close the connection).
        let mut attempts = 0;
        let reply = loop {
            let result = conn.post("/v1/ingest", &body);
            match result {
                Ok((200, reply)) => break reply,
                Ok((status @ (429 | 503), _)) if attempts < 50 => {
                    attempts += 1;
                    // Back off by the server's Retry-After clock when it
                    // sent one; otherwise fall back to linear client-side
                    // backoff. Capped so a generous server hint cannot
                    // stall the replay for minutes.
                    let wait = conn
                        .retry_after()
                        .map(std::time::Duration::from_secs)
                        .unwrap_or_else(|| std::time::Duration::from_millis(20 * attempts))
                        .min(std::time::Duration::from_secs(5));
                    std::thread::sleep(wait);
                    conn = Conn::open(addr).map_err(|e| format!("reconnect {addr}: {e}"))?;
                    let _ = status;
                }
                Ok((status, reply)) => return Err(format!("ingest failed with {status}: {reply}")),
                Err(e) if attempts < 5 => {
                    attempts += 1;
                    conn = Conn::open(addr).map_err(|e| format!("reconnect {addr}: {e}"))?;
                    let _ = e;
                }
                Err(e) => return Err(format!("ingest request failed: {e}")),
            }
        };
        let count = |key: &str| -> u64 {
            pervasive_miner::serve::json::parse(&reply)
                .ok()
                .and_then(|v| v.get(key).and_then(|n| n.as_i64()))
                .unwrap_or(0) as u64
        };
        accepted += count("accepted");
        quarantined += count("quarantined");
        stays += count("stays");
        transitions += count("transitions");
        sent += batch.len() as u64;
        batches += 1;

        if args.rate > 0 {
            // Keep the long-run average at `--rate` records/second.
            let due = std::time::Duration::from_secs_f64(sent as f64 / args.rate as f64);
            if let Some(wait) = due.checked_sub(started.elapsed()) {
                std::thread::sleep(wait);
            }
        }
    }
    eprintln!(
        "replayed {sent} records in {batches} batches ({skipped} malformed lines skipped): \
         {accepted} accepted, {quarantined} quarantined, {stays} stays, {transitions} transitions"
    );
    Ok(())
}

/// Mines the daily mobility-motif distribution of a trajectory corpus
/// against a stored artifact's CSD and writes the ranked table back into
/// the artifact as its optional motif section.
///
/// Nodes are *semantic units* (Algorithm 3's nearest recognized unit per
/// stay), unlike the live `/v1/live/motifs` path where nodes are primary
/// categories — the batch side sees the full CSD, the live side only the
/// recognizer's category vote. Each trajectory is one user; its stays
/// bucket into absolute days, each day's transition graph canonicalizes
/// via `pm-motif`, and the population distribution over canonical forms is
/// the motif table.
fn motifs_command(args: &Args, params: &MinerParams) -> Result<(), String> {
    use pervasive_miner::cluster::GaussianKernel;
    use pervasive_miner::core::recognize::recognize_stay_point_unit;
    use pervasive_miner::motif::{DayGraphBuilder, MotifAggregator};
    use pervasive_miner::stream::DAY_SECS;

    let path = args
        .artifact
        .as_ref()
        .ok_or("motifs needs --artifact FILE (produce one with `mine --artifact`)")?;
    let artifact = Artifact::read_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("loaded {}: {}", path.display(), artifact.describe());

    let trajectories = trajectory_corpus(args, params, "motif")?;

    let kernel = GaussianKernel::new(artifact.params.r3sigma);
    let mut agg = MotifAggregator::new();
    let mut unrecognized = 0u64;
    for traj in &trajectories {
        let mut current: Option<(i64, DayGraphBuilder)> = None;
        for sp in &traj.stays {
            let (unit, _tags, primary) = recognize_stay_point_unit(&artifact.csd, &kernel, sp.pos);
            let Some(unit) = unit else {
                unrecognized += 1;
                continue;
            };
            let day = sp.time.div_euclid(DAY_SECS);
            match &mut current {
                Some((d, builder)) if *d == day => builder.visit(unit as u64, primary),
                slot => {
                    if let Some((_, builder)) = slot.take() {
                        agg.record(&builder.finish());
                    }
                    let mut builder = DayGraphBuilder::new();
                    builder.visit(unit as u64, primary);
                    *slot = Some((day, builder));
                }
            }
        }
        if let Some((_, builder)) = current {
            agg.record(&builder.finish());
        }
    }

    let table = agg.table();
    println!(
        "{} motif classes over {} user-days ({} oversize days, {} unrecognized stays skipped)",
        table.classes.len(),
        table.total_days,
        table.oversize_days,
        unrecognized,
    );
    for class in table.classes.iter().take(args.top) {
        println!(
            "  #{:<3} form {:#018x}  {} nodes / {} edges  {:>6} days  share {:.4}",
            class.id, class.form, class.nodes, class.edges, class.days, class.share
        );
    }

    let out = args.out.as_ref().unwrap_or(path);
    let artifact = artifact.with_motifs(table);
    artifact
        .write_file(out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    eprintln!(
        "wrote motif-bearing artifact to {} ({})",
        out.display(),
        artifact.describe()
    );
    Ok(())
}

/// The trajectory corpus a mining command works over: a journeys CSV when
/// given, otherwise the synthetic city `--scale`/`--seed` describe.
fn trajectory_corpus(
    args: &Args,
    params: &MinerParams,
    what: &str,
) -> Result<Vec<SemanticTrajectory>, String> {
    match &args.journeys {
        Some(journeys_path) => {
            let projection = pervasive_miner::io::default_projection();
            let text = std::fs::read_to_string(journeys_path)
                .map_err(|e| format!("{}: {e}", journeys_path.display()))?;
            let mode = if args.lenient {
                IngestMode::Lenient
            } else {
                IngestMode::Strict
            };
            let (journeys, report) =
                read_journeys_observed(&text, &projection, mode, params.threads, &Obs::noop())
                    .map_err(|e| {
                        format!(
                            "{}: {e} (use --lenient to quarantine bad lines)",
                            journeys_path.display()
                        )
                    })?;
            report_quarantine(journeys_path, &report);
            Ok(journeys_to_trajectories(&journeys))
        }
        None => {
            let cfg = config(&args.scale, args.seed)?;
            eprintln!(
                "generating {} city (seed {}) as the {what} corpus ...",
                args.scale, args.seed
            );
            Ok(Dataset::generate(&cfg).trajectories)
        }
    }
}

/// `cohorts`: embed every user in the corpus as a semantic-unit
/// visit/transition vector, cluster the population into life-pattern
/// cohorts, and write the resulting [`pervasive_miner::cohort::CohortTable`] into the
/// artifact as its optional `coho` section (served at `GET /v1/cohorts`,
/// `GET /v1/users/:id/patterns`, and `GET /v1/users/:id/similar`).
fn cohorts_command(args: &Args, params: &MinerParams) -> Result<(), String> {
    use pervasive_miner::cluster::GaussianKernel;
    use pervasive_miner::cohort::{embed_users, CohortParams, CohortTable, UserStay};
    use pervasive_miner::core::recognize::recognize_stay_point_unit;

    let path = args
        .artifact
        .as_ref()
        .ok_or("cohorts needs --artifact FILE (produce one with `mine --artifact`)")?;
    let artifact = Artifact::read_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("loaded {}: {}", path.display(), artifact.describe());

    let trajectories = trajectory_corpus(args, params, "cohort")?;

    // One user per carded passenger ("card-N"); anonymous trajectories
    // each stand alone ("uIDX" by corpus position) — the same identity
    // rule the replay command applies to the live stream.
    let kernel = GaussianKernel::new(artifact.params.r3sigma);
    let mut unrecognized = 0u64;
    let mut groups: BTreeMap<String, Vec<UserStay>> = BTreeMap::new();
    for (i, traj) in trajectories.iter().enumerate() {
        let user = match traj.passenger {
            Some(card) => format!("card-{card}"),
            None => format!("u{i}"),
        };
        let stays = groups.entry(user).or_default();
        for sp in &traj.stays {
            let (unit, _tags, primary) = recognize_stay_point_unit(&artifact.csd, &kernel, sp.pos);
            let Some(unit) = unit else {
                unrecognized += 1;
                continue;
            };
            stays.push(UserStay {
                unit: unit as u64,
                category: primary,
                time: sp.time,
            });
        }
    }
    groups.retain(|_, stays| !stays.is_empty());
    let groups: Vec<(String, Vec<UserStay>)> = groups.into_iter().collect();

    let cohort_params = CohortParams {
        k: args.k,
        seed: args.seed,
        k_min: args.k_min,
        threads: params.threads,
        ..CohortParams::default()
    };
    let embeddings = embed_users(&groups, cohort_params.threads);
    let table = CohortTable::mine(embeddings, &cohort_params);

    let hidden = table
        .cohorts
        .iter()
        .filter(|c| table.suppressed(c.size))
        .count();
    println!(
        "{} users in {} cohorts ({} below the k-anonymity floor of {}) via {} ({} unrecognized stays skipped)",
        table.users.len(),
        table.cohorts.len(),
        hidden,
        table.k_min,
        table.method.name(),
        unrecognized,
    );
    for cohort in &table.cohorts {
        if table.suppressed(cohort.size) {
            println!(
                "  cohort {:<3} suppressed (size < {})",
                cohort.id, table.k_min
            );
            continue;
        }
        let dominant = cohort
            .dominant_category()
            .map(|c| c.name())
            .unwrap_or("untagged");
        println!(
            "  cohort {:<3} {:>6} users  dominant {:<20} avg {:.1} active days / {:.1} stays",
            cohort.id, cohort.size, dominant, cohort.mean_active_days, cohort.mean_stays
        );
    }
    for user in table.users.iter().take(args.top) {
        println!(
            "  user {}  cohort {}  stays {}  active-days {}",
            user.user, user.cohort, user.stays, user.active_days
        );
    }

    let out = args.out.as_ref().unwrap_or(path);
    let artifact = artifact.with_cohorts(table);
    artifact
        .write_file(out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    eprintln!(
        "wrote cohort-bearing artifact to {} ({})",
        out.display(),
        artifact.describe()
    );
    Ok(())
}

/// Reloads an artifact, proves it re-serializes byte-identically — the
/// on-disk integrity check scripts run after `mine --artifact` — and
/// reports the section layout, naming which optional sections (motifs,
/// cohorts) are present.
fn artifact_check(args: &Args) -> Result<(), String> {
    let path = args
        .target
        .as_ref()
        .map(PathBuf::from)
        .or_else(|| args.artifact.clone())
        .ok_or("artifact-check needs a path: artifact-check <FILE>")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let artifact =
        Artifact::from_bytes_verified(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "{}: ok — {} bytes, {}",
        path.display(),
        bytes.len(),
        artifact.describe()
    );
    let sections = pervasive_miner::store::section_summary(&bytes)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut optional = Vec::new();
    for s in &sections {
        println!(
            "  section {}  {:>12} bytes{}",
            s.tag_str(),
            s.payload_bytes,
            if s.optional { "  (optional)" } else { "" }
        );
        if s.optional {
            optional.push(match s.tag_str().as_str() {
                "motf" => "motifs".to_string(),
                "coho" => "cohorts".to_string(),
                other => other.to_string(),
            });
        }
    }
    if optional.is_empty() {
        println!("  optional sections: none");
    } else {
        println!("  optional sections: {}", optional.join(", "));
    }
    Ok(())
}

fn report_quarantine(path: &Path, report: &QuarantineReport) {
    if !report.is_clean() {
        eprintln!("{}: {report}", path.display());
    }
}

fn mine_pipeline(
    pois: &[Poi],
    trajectories: Vec<SemanticTrajectory>,
    params: &MinerParams,
    obs: &Obs,
    top: usize,
) -> Result<(CitySemanticDiagram, Vec<FinePattern>), String> {
    let mut events = Vec::new();
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build_observed(
        pois,
        &stays,
        params,
        ConstructionOptions::default(),
        obs,
    )
    .map_err(|e| e.to_string())?;
    let recognized = pervasive_miner::core::recognize::recognize_all_observed(
        &csd,
        trajectories,
        params,
        &mut events,
        obs,
    )
    .map_err(|e| e.to_string())?;
    let patterns = pervasive_miner::core::extract::extract_patterns_observed(
        &recognized,
        params,
        &mut events,
        obs,
    )
    .map_err(|e| e.to_string())?;
    // Post-construction degradations (recognition + extraction); the
    // construction ones were tallied inside `build_observed`.
    pervasive_miner::core::error::record_degradations(obs, &events);
    let span = obs.span("metrics.summarize");
    let summary = pervasive_miner::core::metrics::summarize(&patterns);
    span.finish();
    println!(
        "{} fine-grained patterns, coverage {}, avg sparsity {:.1} m, avg consistency {:.3}",
        summary.n_patterns, summary.coverage, summary.avg_sparsity, summary.avg_consistency
    );
    for p in patterns.iter().take(top) {
        let m = pervasive_miner::core::metrics::pattern_metrics(p);
        println!(
            "  {:<55} support {:>5}  sparsity {:>6.1} m  consistency {:.3}",
            p.describe(),
            p.support(),
            m.spatial_sparsity,
            m.semantic_consistency
        );
    }
    Ok((csd, patterns))
}

fn svg(ds: &Dataset, params: &MinerParams, args: &Args) -> Result<(), String> {
    use pervasive_miner::eval::svg::{render_svg, SvgOptions};
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, params).map_err(|e| e.to_string())?;
    let recognized =
        recognize_all(&csd, ds.trajectories.clone(), params).map_err(|e| e.to_string())?;
    let patterns = extract_patterns(&recognized, params).map_err(|e| e.to_string())?;
    let document = render_svg(Some(&csd), &patterns, &SvgOptions::default());
    match &args.out {
        Some(path) => {
            std::fs::write(path, &document).map_err(|e| format!("write failed: {e}"))?;
            eprintln!(
                "wrote {} ({} units, {} patterns)",
                path.display(),
                csd.units().len(),
                patterns.len()
            );
        }
        None => println!("{document}"),
    }
    Ok(())
}

fn figure(ds: &Dataset, params: &MinerParams, which: &str, args: &Args) -> Result<(), String> {
    let baseline = BaselineParams::default();
    let io = |e: std::io::Error| format!("csv write failed: {e}");
    match which {
        "6" => {
            let stays = stay_points_of(&ds.trajectories);
            let csd =
                CitySemanticDiagram::build(&ds.pois, &stays, params).map_err(|e| e.to_string())?;
            let s = csd.stats();
            println!("Fig. 6 — CSD construction");
            println!("  coarse clusters {}, leftovers {}, purified {}, final units {}, covered {}, purity {:.1}%",
                s.n_coarse, s.n_leftover, s.n_purified, s.n_units, s.n_covered, s.purity * 100.0);
        }
        "9" | "10" => {
            let results = run_all(ds, params, &baseline).map_err(|e| e.to_string())?;
            if which == "9" {
                let rows = figures::fig9(&results);
                println!("{}", report::render_fig9(&rows));
                if let Some(dir) = &args.csv {
                    export::write_csv(&dir.join("fig09.csv"), &export::fig9_csv(&rows))
                        .map_err(io)?;
                }
            } else {
                let rows = figures::fig10(&results);
                println!("{}", report::render_fig10(&rows));
                if let Some(dir) = &args.csv {
                    export::write_csv(&dir.join("fig10.csv"), &export::fig10_csv(&rows))
                        .map_err(io)?;
                }
            }
        }
        "11" | "12" | "13" => {
            let recognized =
                Recognized::compute(ds, params, &baseline).map_err(|e| e.to_string())?;
            let (title, name, points) = match which {
                "11" => (
                    "Fig. 11 — metrics vs support threshold sigma",
                    "fig11.csv",
                    figures::fig11_support_sweep(
                        &recognized,
                        params,
                        &baseline,
                        &[25, 50, 75, 100],
                    )
                    .map_err(|e| e.to_string())?,
                ),
                "12" => (
                    "Fig. 12 — metrics vs density threshold rho (m^-2)",
                    "fig12.csv",
                    figures::fig12_density_sweep(
                        &recognized,
                        params,
                        &baseline,
                        &[0.002, 0.01, 0.02, 0.04, 0.08],
                    )
                    .map_err(|e| e.to_string())?,
                ),
                _ => (
                    "Fig. 13 — metrics vs temporal constraint delta_t (minutes)",
                    "fig13.csv",
                    figures::fig13_temporal_sweep(
                        &recognized,
                        params,
                        &baseline,
                        &[15, 30, 45, 60, 75],
                    )
                    .map_err(|e| e.to_string())?,
                ),
            };
            println!("{}", report::render_sweep(title, "value", &points));
            if let Some(dir) = &args.csv {
                export::write_csv(&dir.join(name), &export::sweep_csv(&points)).map_err(io)?;
            }
        }
        "14" => {
            let stays = stay_points_of(&ds.trajectories);
            let csd =
                CitySemanticDiagram::build(&ds.pois, &stays, params).map_err(|e| e.to_string())?;
            let recognized =
                recognize_all(&csd, ds.trajectories.clone(), params).map_err(|e| e.to_string())?;
            let patterns = extract_patterns(&recognized, params).map_err(|e| e.to_string())?;
            let demo = figures::fig14_full(ds, &recognized, &patterns, params, args.seed)
                .map_err(|e| e.to_string())?;
            println!("{}", report::render_fig14(&demo));
            if let Some(dir) = &args.csv {
                export::write_csv(&dir.join("fig14.csv"), &export::fig14_csv(&demo)).map_err(io)?;
            }
        }
        other => return Err(format!("unknown figure '{other}' (6|9|10|11|12|13|14)")),
    }
    Ok(())
}

fn table(ds: &Dataset, which: &str, args: &Args) -> Result<(), String> {
    match which {
        "1" => {
            let t = figures::table1(ds, args.seed, 10);
            println!("{}", report::render_table1(&t));
        }
        "3" => {
            let t = figures::table3(ds);
            println!("{}", report::render_table3(&t));
        }
        other => return Err(format!("unknown table '{other}' (1|3)")),
    }
    Ok(())
}
