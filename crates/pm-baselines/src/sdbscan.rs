//! SDBSCAN (Jiang, Zhao, Dong, Ishikawa, Xiao, Sasaki — the paper's
//! ref \[19\]): the density-based variant of Splitter.
//!
//! Identical skeleton — PrefixSpan then per-position clustering — but the
//! refinement uses DBSCAN at a fixed radius instead of Mean Shift. Members
//! whose stay points land in the same DBSCAN cluster at every position form
//! one fine-grained candidate; noise members drop out. The fixed `eps` is
//! again the weakness versus the auto-thresholded OPTICS of Algorithm 4.

use crate::common::{
    assemble_pattern, coarse_patterns, respects_delta_t, sort_patterns, BaselineParams,
};
use pm_cluster::{dbscan, DbscanParams};
use pm_core::error::MinerError;
use pm_core::extract::FinePattern;
use pm_core::params::MinerParams;
use pm_core::types::SemanticTrajectory;
use pm_geo::LocalPoint;
use std::collections::HashMap;

/// Runs the SDBSCAN extractor over recognized trajectories.
///
/// Fails fast on invalid [`MinerParams`]; stay points with non-finite
/// coordinates are DBSCAN noise, so their members drop out like any other
/// noise member.
pub fn sdbscan_extract(
    db: &[SemanticTrajectory],
    params: &MinerParams,
    baseline: &BaselineParams,
) -> Result<Vec<FinePattern>, MinerError> {
    params.validate()?;
    let mut out = Vec::new();

    for coarse in coarse_patterns(db, params) {
        let m = coarse.categories.len();
        let members: Vec<&(usize, Vec<usize>)> = coarse
            .members
            .iter()
            .filter(|mem| respects_delta_t(db, mem, params.delta_t))
            .collect();
        if members.len() < params.sigma {
            continue;
        }

        // DBSCAN per position with min_pts = sigma (a cluster must have a
        // chance of clearing the support gate). Noise at any position
        // disqualifies a member.
        let mut keys: Vec<Option<Vec<usize>>> = vec![Some(Vec::with_capacity(m)); members.len()];
        for k in 0..m {
            let pts: Vec<LocalPoint> = members
                .iter()
                .map(|(t, s)| db[*t].stays[s[k]].pos)
                .collect();
            let clustering = dbscan(&pts, DbscanParams::new(baseline.dbscan_eps, params.sigma));
            for (i, label) in clustering.labels.iter().enumerate() {
                match (label, &mut keys[i]) {
                    (Some(l), Some(key)) => key.push(*l),
                    _ => keys[i] = None,
                }
            }
        }

        let mut buckets: HashMap<Vec<usize>, Vec<(usize, Vec<usize>)>> = HashMap::new();
        for (i, mem) in members.iter().enumerate() {
            if let Some(key) = &keys[i] {
                buckets.entry(key.clone()).or_default().push((*mem).clone());
            }
        }
        let mut bucket_list: Vec<_> = buckets.into_iter().collect();
        bucket_list.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, bucket) in bucket_list {
            if let Some(p) = assemble_pattern(db, &coarse.categories, &bucket, params) {
                out.push(p);
            }
        }
    }

    sort_patterns(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::{Category, StayPoint, Tags};

    fn extract(
        db: &[SemanticTrajectory],
        params: &MinerParams,
        baseline: &BaselineParams,
    ) -> Vec<FinePattern> {
        sdbscan_extract(db, params, baseline).expect("valid params")
    }

    fn sp(x: f64, y: f64, t: i64, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, y), t, Tags::only(c))
    }

    fn small_params() -> MinerParams {
        MinerParams {
            sigma: 5,
            rho: 0.0005,
            ..MinerParams::default()
        }
    }

    fn commute_db(n: usize, origin_x: f64) -> Vec<SemanticTrajectory> {
        (0..n)
            .map(|i| {
                let dx = (i % 5) as f64 * 8.0;
                SemanticTrajectory::new(vec![
                    sp(origin_x + dx, 0.0, 7 * 3600, Category::Residence),
                    sp(5_000.0 + dx, 0.0, 8 * 3600 - 1200, Category::Business),
                ])
            })
            .collect()
    }

    #[test]
    fn finds_the_commute_pattern() {
        let db = commute_db(20, 0.0);
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        assert!(!ps.is_empty());
        assert_eq!(ps[0].support(), 20);
    }

    #[test]
    fn separates_distant_origins() {
        let mut db = commute_db(10, 0.0);
        db.extend(commute_db(10, 3_000.0));
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        let commutes: Vec<_> = ps
            .iter()
            .filter(|p| p.categories == vec![Category::Residence, Category::Business])
            .collect();
        assert_eq!(commutes.len(), 2);
    }

    #[test]
    fn noise_members_are_dropped() {
        let mut db = commute_db(10, 0.0);
        // One straggler 500m off: DBSCAN noise at position 0.
        db.push(SemanticTrajectory::new(vec![
            sp(500.0, 0.0, 7 * 3600, Category::Residence),
            sp(5_000.0, 0.0, 8 * 3600 - 1200, Category::Business),
        ]));
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        let commute = ps
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("commute pattern");
        assert_eq!(commute.support(), 10, "the straggler must not join");
    }

    #[test]
    fn tiny_eps_destroys_support() {
        // The fixed-eps weakness: at eps = 1m every stay point is noise
        // (min_pts = 5 within 1m never happens with an 8m jitter grid).
        let db = commute_db(20, 0.0);
        let narrow = BaselineParams {
            dbscan_eps: 1.0,
            ..BaselineParams::default()
        };
        let ps = extract(&db, &small_params(), &narrow);
        assert!(ps.is_empty());
    }

    #[test]
    fn empty_database() {
        assert!(extract(&[], &small_params(), &BaselineParams::default()).is_empty());
    }

    #[test]
    fn agrees_with_splitter_on_clean_data() {
        // On well-separated clean data both baselines find the same two
        // patterns (they differ on messy boundaries, not on easy cases).
        let mut db = commute_db(10, 0.0);
        db.extend(commute_db(10, 3_000.0));
        let s = crate::splitter_extract(&db, &small_params(), &BaselineParams::default())
            .expect("valid params");
        let d = extract(&db, &small_params(), &BaselineParams::default());
        assert_eq!(s.len(), d.len());
    }
}
