//! Splitter (Zhang, Han, Shou, Lu, La Porta — the paper's ref \[17\]):
//! PrefixSpan coarse mining followed by top-down Mean Shift refinement.
//!
//! Each coarse pattern's member stay points are mean-shifted per position
//! with a fixed bandwidth; members whose per-position mode assignments
//! coincide form one fine-grained candidate. The fixed bandwidth is the
//! structural weakness versus Algorithm 4's auto-thresholded OPTICS: too
//! wide and distinct venues merge (sparse groups that the density gate then
//! kills), too narrow and one venue splinters (support falls below sigma).

use crate::common::{
    assemble_pattern, coarse_patterns, respects_delta_t, sort_patterns, BaselineParams,
};
use pm_cluster::{mean_shift, MeanShiftParams};
use pm_core::error::MinerError;
use pm_core::extract::FinePattern;
use pm_core::params::MinerParams;
use pm_core::types::SemanticTrajectory;
use pm_geo::LocalPoint;
use std::collections::HashMap;

/// Runs the Splitter extractor over recognized trajectories.
///
/// Fails fast on invalid [`MinerParams`]; members whose stay points carry
/// non-finite coordinates (unlabelled by mean shift) are dropped rather
/// than panicking.
pub fn splitter_extract(
    db: &[SemanticTrajectory],
    params: &MinerParams,
    baseline: &BaselineParams,
) -> Result<Vec<FinePattern>, MinerError> {
    params.validate()?;
    let mut out = Vec::new();

    for coarse in coarse_patterns(db, params) {
        let m = coarse.categories.len();
        // Universal temporal constraint first (cheap).
        let members: Vec<&(usize, Vec<usize>)> = coarse
            .members
            .iter()
            .filter(|mem| respects_delta_t(db, mem, params.delta_t))
            .collect();
        if members.len() < params.sigma {
            continue;
        }

        // Mean Shift per position; a member's key is its mode tuple. A stay
        // with non-finite coordinates gets no mode — that member drops out.
        let mut keys: Vec<Option<Vec<usize>>> = vec![Some(Vec::with_capacity(m)); members.len()];
        for k in 0..m {
            let pts: Vec<LocalPoint> = members
                .iter()
                .map(|(t, s)| db[*t].stays[s[k]].pos)
                .collect();
            let ms = mean_shift(&pts, MeanShiftParams::new(baseline.ms_bandwidth));
            for (i, label) in ms.clustering.labels.iter().enumerate() {
                match (label, &mut keys[i]) {
                    (Some(l), Some(key)) => key.push(*l),
                    _ => keys[i] = None,
                }
            }
        }

        let mut buckets: HashMap<Vec<usize>, Vec<(usize, Vec<usize>)>> = HashMap::new();
        for (i, mem) in members.iter().enumerate() {
            if let Some(key) = &keys[i] {
                buckets.entry(key.clone()).or_default().push((*mem).clone());
            }
        }
        let mut bucket_list: Vec<_> = buckets.into_iter().collect();
        bucket_list.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order
        for (_, bucket) in bucket_list {
            if let Some(p) = assemble_pattern(db, &coarse.categories, &bucket, params) {
                out.push(p);
            }
        }
    }

    sort_patterns(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::{Category, StayPoint, Tags};

    fn extract(
        db: &[SemanticTrajectory],
        params: &MinerParams,
        baseline: &BaselineParams,
    ) -> Vec<FinePattern> {
        splitter_extract(db, params, baseline).expect("valid params")
    }

    fn sp(x: f64, y: f64, t: i64, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, y), t, Tags::only(c))
    }

    fn small_params() -> MinerParams {
        MinerParams {
            sigma: 5,
            rho: 0.0005,
            ..MinerParams::default()
        }
    }

    fn commute_db(n: usize, origin_x: f64) -> Vec<SemanticTrajectory> {
        (0..n)
            .map(|i| {
                let dx = (i % 5) as f64 * 8.0;
                SemanticTrajectory::new(vec![
                    sp(origin_x + dx, 0.0, 7 * 3600, Category::Residence),
                    sp(5_000.0 + dx, 0.0, 8 * 3600 - 1200, Category::Business),
                ])
            })
            .collect()
    }

    #[test]
    fn finds_the_commute_pattern() {
        let db = commute_db(20, 0.0);
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        assert!(!ps.is_empty());
        assert_eq!(
            ps[0].categories,
            vec![Category::Residence, Category::Business]
        );
        assert_eq!(ps[0].support(), 20);
    }

    #[test]
    fn splits_two_origins_into_two_patterns() {
        let mut db = commute_db(10, 0.0);
        db.extend(commute_db(10, 3_000.0));
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        let commutes: Vec<_> = ps
            .iter()
            .filter(|p| p.categories == vec![Category::Residence, Category::Business])
            .collect();
        assert_eq!(commutes.len(), 2);
    }

    #[test]
    fn wide_bandwidth_merges_origins() {
        // The fixed-bandwidth weakness: with a 5km bandwidth the two origins
        // collapse into one mode, and the merged group is too sparse for the
        // default rho, so the pattern vanishes entirely.
        let mut db = commute_db(10, 0.0);
        db.extend(commute_db(10, 3_000.0));
        let wide = BaselineParams {
            ms_bandwidth: 5_000.0,
            ..BaselineParams::default()
        };
        let params = MinerParams {
            sigma: 5,
            rho: 0.002,
            ..MinerParams::default()
        };
        let ps = extract(&db, &params, &wide);
        assert!(
            ps.iter()
                .all(|p| p.categories != vec![Category::Residence, Category::Business]),
            "merged sparse group must fail the density gate"
        );
    }

    #[test]
    fn delta_t_is_honoured() {
        let mut db = commute_db(10, 0.0);
        // Members with a 5h gap.
        db.extend((0..10).map(|i| {
            let dx = (i % 5) as f64 * 8.0;
            SemanticTrajectory::new(vec![
                sp(dx, 0.0, 7 * 3600, Category::Residence),
                sp(5_000.0 + dx, 0.0, 12 * 3600, Category::Business),
            ])
        }));
        let ps = extract(&db, &small_params(), &BaselineParams::default());
        let commute = ps
            .iter()
            .find(|p| p.categories == vec![Category::Residence, Category::Business])
            .expect("commute pattern");
        assert_eq!(commute.support(), 10);
    }

    #[test]
    fn empty_database() {
        assert!(extract(&[], &small_params(), &BaselineParams::default()).is_empty());
    }

    #[test]
    fn deterministic() {
        let db = commute_db(20, 0.0);
        let a = extract(&db, &small_params(), &BaselineParams::default());
        let b = extract(&db, &small_params(), &BaselineParams::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
        }
    }
}
