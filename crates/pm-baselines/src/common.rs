//! Shared machinery of the baseline extractors: coarse-pattern membership
//! (PrefixSpan + embedding mapping), the universal `delta_t`/`rho`/`sigma`
//! filters, and fine-pattern assembly.

use pm_core::extract::FinePattern;
use pm_core::params::MinerParams;
use pm_core::types::{Category, SemanticTrajectory, StayPoint};
use pm_geo::{centroid, den, LocalPoint};
use pm_seqmine::{prefixspan, PrefixSpanParams};

/// Baseline-specific tunables (the CSD pipeline needs none of these; the
/// originals hand-tune them, which is part of why they lose).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineParams {
    /// Mean Shift bandwidth for Splitter's refinement, in meters.
    pub ms_bandwidth: f64,
    /// DBSCAN radius for SDBSCAN's per-position clustering, in meters.
    pub dbscan_eps: f64,
    /// DBSCAN radius for ROI hot-region detection — stay-point density
    /// scale, so venues fragment into several small regions (ref \[21\]).
    pub roi_eps: f64,
    /// DBSCAN minimum points for ROI hot-region detection.
    pub roi_min_pts: usize,
    /// A hot region annotates itself with every category holding at least
    /// this share of the POIs it overlaps.
    pub roi_tag_share: f64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        Self {
            ms_bandwidth: 100.0,
            dbscan_eps: 80.0,
            roi_eps: 30.0,
            roi_min_pts: 10,
            roi_tag_share: 0.12,
        }
    }
}

/// One coarse pattern with its member embeddings, shared by both baseline
/// extractors.
pub(crate) struct CoarseMembers {
    pub categories: Vec<Category>,
    /// `(trajectory index, stay index per pattern position)`.
    pub members: Vec<(usize, Vec<usize>)>,
}

/// Mines coarse patterns and maps occurrences back to stay indices
/// (untagged stay points are skipped from the sequences).
pub(crate) fn coarse_patterns(
    db: &[SemanticTrajectory],
    params: &MinerParams,
) -> Vec<CoarseMembers> {
    let mut sequences: Vec<Vec<u32>> = Vec::with_capacity(db.len());
    let mut stay_of_item: Vec<Vec<usize>> = Vec::with_capacity(db.len());
    for st in db {
        let mut seq = Vec::new();
        let mut map = Vec::new();
        for (i, sp) in st.stays.iter().enumerate() {
            if let Some(cat) = sp.primary_category() {
                seq.push(cat as u32);
                map.push(i);
            }
        }
        sequences.push(seq);
        stay_of_item.push(map);
    }
    prefixspan(
        &sequences,
        PrefixSpanParams::new(params.sigma, params.min_pattern_len, params.max_pattern_len),
    )
    .into_iter()
    .map(|p| CoarseMembers {
        categories: p
            .items
            .iter()
            .map(|&i| Category::from_index(i as usize))
            .collect(),
        members: p
            .occurrences
            .iter()
            .map(|occ| {
                (
                    occ.seq,
                    occ.positions
                        .iter()
                        .map(|&q| stay_of_item[occ.seq][q])
                        .collect(),
                )
            })
            .collect(),
    })
    .collect()
}

/// The universal temporal constraint: every adjacent stay-point gap of the
/// member's embedding must be below `delta_t`.
pub(crate) fn respects_delta_t(
    db: &[SemanticTrajectory],
    member: &(usize, Vec<usize>),
    delta_t: i64,
) -> bool {
    let (traj, stays) = member;
    stays
        .windows(2)
        .all(|w| (db[*traj].stays[w[1]].time - db[*traj].stays[w[0]].time).abs() < delta_t)
}

/// Assembles a [`FinePattern`] from a member set if it passes the universal
/// support and density gates; returns `None` otherwise.
pub(crate) fn assemble_pattern(
    db: &[SemanticTrajectory],
    categories: &[Category],
    members: &[(usize, Vec<usize>)],
    params: &MinerParams,
) -> Option<FinePattern> {
    if members.len() < params.sigma {
        return None;
    }
    let m = categories.len();
    let groups: Vec<Vec<StayPoint>> = (0..m)
        .map(|k| members.iter().map(|(t, s)| db[*t].stays[s[k]]).collect())
        .collect();
    // Universal density gate (rho) on every positional group.
    for g in &groups {
        let pts: Vec<LocalPoint> = g.iter().map(|sp| sp.pos).collect();
        if den(&pts) < params.rho {
            return None;
        }
    }
    let stays: Vec<StayPoint> = groups
        .iter()
        .map(|g| representative(g))
        .collect::<Option<_>>()?;
    Some(FinePattern {
        categories: categories.to_vec(),
        stays,
        members: members.iter().map(|(t, _)| *t).collect(),
        groups,
    })
}

/// Group representative: member stay point closest to the centroid, stamped
/// with the average time (same convention as Algorithm 4 line 19). Returns
/// `None` for an empty group rather than panicking.
fn representative(group: &[StayPoint]) -> Option<StayPoint> {
    let pts: Vec<LocalPoint> = group.iter().map(|sp| sp.pos).collect();
    let center = centroid(&pts)?;
    let closest = group.iter().min_by(|a, b| {
        a.pos
            .distance_sq(&center)
            .total_cmp(&b.pos.distance_sq(&center))
    })?;
    // i128 accumulation: extreme timestamps must not overflow the sum.
    let avg_time =
        (group.iter().map(|sp| sp.time as i128).sum::<i128>() / group.len() as i128) as i64;
    Some(StayPoint::new(closest.pos, avg_time, closest.tags))
}

/// Deterministic ordering shared by both baseline extractors.
pub(crate) fn sort_patterns(patterns: &mut [FinePattern]) {
    patterns.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.categories.cmp(&b.categories))
            .then_with(|| {
                a.stays[0]
                    .pos
                    .x
                    .total_cmp(&b.stays[0].pos.x)
                    .then(a.stays[0].pos.y.total_cmp(&b.stays[0].pos.y))
            })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::Tags;

    fn sp(x: f64, t: i64, c: Category) -> StayPoint {
        StayPoint::new(LocalPoint::new(x, 0.0), t, Tags::only(c))
    }

    #[test]
    fn coarse_patterns_map_back_to_stays() {
        let db = vec![
            SemanticTrajectory::new(vec![
                sp(0.0, 0, Category::Residence),
                StayPoint::untagged(LocalPoint::new(10.0, 0.0), 100),
                sp(20.0, 200, Category::Business),
            ]),
            SemanticTrajectory::new(vec![
                sp(1.0, 0, Category::Residence),
                sp(21.0, 200, Category::Business),
            ]),
        ];
        let params = MinerParams {
            sigma: 2,
            ..MinerParams::default()
        };
        let coarse = coarse_patterns(&db, &params);
        let two = coarse
            .iter()
            .find(|c| c.categories == vec![Category::Residence, Category::Business])
            .expect("Res->Bus coarse pattern");
        assert_eq!(two.members.len(), 2);
        // First trajectory's embedding skips the untagged stay (index 1).
        assert_eq!(two.members[0], (0, vec![0, 2]));
        assert_eq!(two.members[1], (1, vec![0, 1]));
    }

    #[test]
    fn delta_t_filter() {
        let db = vec![SemanticTrajectory::new(vec![
            sp(0.0, 0, Category::Residence),
            sp(10.0, 1_000, Category::Business),
        ])];
        let member = (0usize, vec![0usize, 1usize]);
        assert!(respects_delta_t(&db, &member, 1_001));
        assert!(!respects_delta_t(&db, &member, 1_000));
    }

    #[test]
    fn assemble_respects_sigma_and_rho() {
        let db: Vec<SemanticTrajectory> = (0..10)
            .map(|i| {
                SemanticTrajectory::new(vec![
                    sp(i as f64 * 5.0, 0, Category::Residence),
                    sp(1_000.0 + i as f64 * 5.0, 600, Category::Business),
                ])
            })
            .collect();
        let members: Vec<(usize, Vec<usize>)> = (0..10).map(|t| (t, vec![0, 1])).collect();
        let cats = vec![Category::Residence, Category::Business];

        let ok = MinerParams {
            sigma: 10,
            rho: 1e-4,
            ..MinerParams::default()
        };
        let p = assemble_pattern(&db, &cats, &members, &ok).expect("passes");
        assert_eq!(p.support(), 10);
        assert_eq!(p.groups.len(), 2);

        let too_sparse = MinerParams {
            sigma: 10,
            rho: 10.0,
            ..MinerParams::default()
        };
        assert!(assemble_pattern(&db, &cats, &members, &too_sparse).is_none());

        let too_few = MinerParams {
            sigma: 11,
            rho: 1e-4,
            ..MinerParams::default()
        };
        assert!(assemble_pattern(&db, &cats, &members, &too_few).is_none());
    }
}
