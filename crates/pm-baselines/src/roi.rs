//! ROI-based semantic recognition (Chen, Kuo, Peng — the paper's ref \[21\]).
//!
//! The hybrid algorithm: DBSCAN over the stay-point corpus detects *hot
//! regions* — small, fragmented clusters at stay-point density scale — and
//! each region is annotated with the categories of the POIs it overlaps.
//! A stay point inherits the annotation of the region covering it.
//!
//! Two structural weaknesses follow, both of which the paper measures:
//!
//! - **Uncontrolled purity**: with no purification step, a region's tag set
//!   is whatever POI mix happens to overlap it. Neighbouring fragments of
//!   the same venue see different local mixes, so nearby stay points in one
//!   pattern group carry different tag sets — the wide ROI boxes of
//!   Fig. 10, and fragmented coarse support in Figs. 11–13.
//! - **Coverage gaps**: stay points outside every hot region stay untagged
//!   and drop out of the mined sequences, costing patterns and coverage.

use crate::common::BaselineParams;
use pm_cluster::{dbscan, DbscanParams};
use pm_core::params::MinerParams;
use pm_core::types::{Category, Poi, SemanticTrajectory, Tags};
use pm_geo::{centroid, GridIndex, KdTree, LocalPoint};

/// A hot region: a dense fragment of stay points with POI-derived semantics.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// Region centroid.
    pub center: LocalPoint,
    /// Radius covering the member stay points (max member distance, floored
    /// at half the DBSCAN radius).
    pub radius: f64,
    /// Categories holding at least `roi_tag_share` of the POIs the region
    /// overlaps (region radius plus the annotation margin).
    pub tags: Tags,
    /// Majority category of the overlapped POIs: the stable region-level
    /// label that drives the sequence-mining item.
    pub majority: Option<Category>,
}

/// The ROI recognizer: hot regions gate coverage; covered stay points are
/// annotated from their nearest raw POIs.
#[derive(Debug, Clone)]
pub struct RoiRecognizer {
    regions: Vec<HotRegion>,
    centers: GridIndex,
    max_radius: f64,
    poi_tree: KdTree,
    poi_categories: Vec<Category>,
}

/// How many nearest POIs annotate a covered stay point. Small by design:
/// ref \[21\] queries the semantic background directly, with none of CSD's
/// popularity-weighted unit smoothing, so whatever mix happens to sit
/// closest wins — GPS noise reshuffles that mix between nearby stay points.
const ANNOTATION_KNN: usize = 5;

/// Margin added to a region's radius when gathering annotation POIs. Kept
/// deliberately local (unlike CSD's R_3sigma smoothing): ref \[21\] annotates
/// each hot region from the POIs it spatially overlaps.
const ANNOTATION_MARGIN_M: f64 = 30.0;

impl RoiRecognizer {
    /// Detects and annotates hot regions from the stay-point corpus.
    pub fn build(
        stay_points: &[LocalPoint],
        pois: &[Poi],
        _params: &MinerParams,
        baseline: &BaselineParams,
    ) -> Self {
        let clustering = dbscan(
            stay_points,
            DbscanParams::new(baseline.roi_eps, baseline.roi_min_pts),
        );
        let poi_positions: Vec<LocalPoint> = pois.iter().map(|p| p.pos).collect();
        let poi_index = GridIndex::build(&poi_positions, (baseline.roi_eps * 4.0).max(1.0));

        let mut regions = Vec::new();
        for cluster in clustering.clusters() {
            let pts: Vec<LocalPoint> = cluster.iter().map(|&i| stay_points[i]).collect();
            let Some(center) = centroid(&pts) else {
                continue;
            };
            let radius = pts
                .iter()
                .map(|p| p.distance(&center))
                .fold(0.0f64, f64::max)
                .max(baseline.roi_eps / 2.0);
            let mut counts = [0usize; Category::COUNT];
            let mut total = 0usize;
            for idx in poi_index.range(center, radius + ANNOTATION_MARGIN_M) {
                counts[pois[idx].category as usize] += 1;
                total += 1;
            }
            let mut tags = Tags::EMPTY;
            let mut majority = None;
            if total > 0 {
                for (c, &n) in counts.iter().enumerate() {
                    if n as f64 / total as f64 >= baseline.roi_tag_share {
                        tags = tags.with(Category::from_index(c));
                    }
                }
                if let Some(best) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| n)
                    .map(|(c, _)| Category::from_index(c))
                {
                    majority = Some(best);
                    // At minimum the dominant category describes the region.
                    if tags.is_empty() {
                        tags = Tags::only(best);
                    }
                }
            }
            regions.push(HotRegion {
                center,
                radius,
                tags,
                majority,
            });
        }

        let centers_flat: Vec<LocalPoint> = regions.iter().map(|r| r.center).collect();
        let max_radius = regions.iter().map(|r| r.radius).fold(1.0f64, f64::max);
        Self {
            centers: GridIndex::build(&centers_flat, max_radius.max(1.0)),
            regions,
            max_radius,
            poi_tree: KdTree::build(&poi_positions),
            poi_categories: pois.iter().map(|p| p.category).collect(),
        }
    }

    /// Annotates one covered stay point: the category set of its
    /// `ANNOTATION_KNN` nearest POIs — raw database-query annotation with
    /// uncontrolled purity (nearby stay points see different mixes). The
    /// primary is the majority among those POIs, ties resolved to the
    /// nearest — so GPS noise reshuffling the top-k flips the label.
    pub fn annotate(&self, pos: LocalPoint) -> (Tags, Option<Category>) {
        let nearest = self.poi_tree.k_nearest(pos, ANNOTATION_KNN);
        let tags: Tags = nearest
            .iter()
            .map(|&(idx, _)| self.poi_categories[idx])
            .collect();
        let mut counts = [0usize; Category::COUNT];
        for &(idx, _) in &nearest {
            counts[self.poi_categories[idx] as usize] += 1;
        }
        let primary = nearest.first().map(|&(idx, _)| {
            let mut best = self.poi_categories[idx];
            for &(i, _) in &nearest {
                let c = self.poi_categories[i];
                if counts[c as usize] > counts[best as usize] {
                    best = c;
                }
            }
            best
        });
        (tags, primary)
    }

    /// The detected hot regions.
    pub fn regions(&self) -> &[HotRegion] {
        &self.regions
    }

    /// The region covering `pos`, if any (nearest covering center wins).
    pub fn region_of(&self, pos: LocalPoint) -> Option<&HotRegion> {
        let mut best: Option<(f64, &HotRegion)> = None;
        for idx in self.centers.range(pos, self.max_radius) {
            let r = &self.regions[idx];
            let d = r.center.distance(&pos);
            if d <= r.radius && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, r));
            }
        }
        best.map(|(_, r)| r)
    }

    /// Recognizes every stay point: nearest-POI annotation for points
    /// covered by a hot region, untagged otherwise.
    pub fn recognize_all(&self, trajectories: Vec<SemanticTrajectory>) -> Vec<SemanticTrajectory> {
        trajectories
            .into_iter()
            .map(|mut st| {
                for sp in &mut st.stays {
                    if self.region_of(sp.pos).is_some() {
                        let (tags, primary) = self.annotate(sp.pos);
                        sp.tags = tags;
                        sp.primary = primary;
                    } else {
                        sp.tags = Tags::EMPTY;
                        sp.primary = None;
                    }
                }
                st
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::StayPoint;

    fn baseline() -> BaselineParams {
        BaselineParams::default()
    }

    /// Two stay-point hot spots: one over a pure shop street, one over a
    /// mixed shop/office corner.
    fn setup() -> (Vec<LocalPoint>, Vec<Poi>) {
        let mut stays = Vec::new();
        for k in 0..60 {
            stays.push(LocalPoint::new((k % 6) as f64 * 8.0, (k % 5) as f64 * 8.0));
        }
        for k in 0..60 {
            stays.push(LocalPoint::new(
                2_000.0 + (k % 6) as f64 * 8.0,
                (k % 5) as f64 * 8.0,
            ));
        }
        let mut pois = Vec::new();
        for i in 0..20 {
            pois.push(Poi::new(
                i,
                LocalPoint::new((i % 5) as f64 * 12.0, 10.0),
                Category::Shop,
            ));
        }
        // The mixed corner: interleaved shops and offices.
        for i in 0..10 {
            pois.push(Poi::new(
                100 + i,
                LocalPoint::new(2_000.0 + i as f64 * 11.0, 10.0),
                if i % 2 == 0 {
                    Category::Shop
                } else {
                    Category::Business
                },
            ));
        }
        (stays, pois)
    }

    fn build(stays: &[LocalPoint], pois: &[Poi]) -> RoiRecognizer {
        RoiRecognizer::build(stays, pois, &MinerParams::default(), &baseline())
    }

    #[test]
    fn detects_hot_regions() {
        let (stays, pois) = setup();
        let roi = build(&stays, &pois);
        assert!(!roi.regions().is_empty());
        assert!(roi.region_of(LocalPoint::new(20.0, 16.0)).is_some());
        assert!(roi.region_of(LocalPoint::new(10_000.0, 0.0)).is_none());
    }

    #[test]
    fn pure_corner_gets_pure_tags() {
        let (stays, pois) = setup();
        let roi = build(&stays, &pois);
        let r = roi.region_of(LocalPoint::new(20.0, 16.0)).expect("covered");
        assert!(r.tags.contains(Category::Shop));
        assert!(!r.tags.contains(Category::Business));
    }

    #[test]
    fn mixed_corner_gets_mixed_tags() {
        let (stays, pois) = setup();
        let roi = build(&stays, &pois);
        let r = roi
            .region_of(LocalPoint::new(2_020.0, 16.0))
            .expect("covered");
        assert!(
            r.tags.contains(Category::Shop) && r.tags.contains(Category::Business),
            "uncontrolled purity: mixed region keeps both tags, got {}",
            r.tags
        );
    }

    #[test]
    fn uncovered_points_stay_untagged() {
        let (stays, pois) = setup();
        let roi = build(&stays, &pois);
        let out = roi.recognize_all(vec![SemanticTrajectory::new(vec![
            StayPoint::untagged(LocalPoint::new(20.0, 16.0), 0),
            StayPoint::untagged(LocalPoint::new(10_000.0, 0.0), 600),
        ])]);
        assert!(!out[0].stays[0].tags.is_empty());
        assert!(out[0].stays[1].tags.is_empty());
    }

    #[test]
    fn sparse_corpus_produces_no_regions() {
        let stays: Vec<LocalPoint> = (0..10)
            .map(|i| LocalPoint::new(i as f64 * 5_000.0, 0.0))
            .collect();
        let roi = build(&stays, &[]);
        assert!(roi.regions().is_empty());
    }

    #[test]
    fn region_without_pois_is_untagged() {
        let mut stays = Vec::new();
        for k in 0..40 {
            stays.push(LocalPoint::new((k % 6) as f64 * 8.0, (k / 6) as f64 * 8.0));
        }
        let roi = build(&stays, &[]);
        assert!(!roi.regions().is_empty());
        assert!(roi.regions().iter().all(|r| r.tags.is_empty()));
    }
}
