//! Competitor implementations — the five baselines the paper evaluates
//! Pervasive Miner against (§5).
//!
//! Two building blocks compose into the paper's six pipelines:
//!
//! **Semantic recognition** (fills stay-point tags):
//! - CSD (the paper's contribution, in `pm-core`), or
//! - [`roi`]: hot-region detection + POI annotation (Chen, Kuo, Peng —
//!   ref \[21\]). DBSCAN over stay points finds hot regions; each region is
//!   annotated with the categories of the POIs it overlaps, with no
//!   purification — the "uncontrolled purity" weakness the paper calls out.
//!
//! **Pattern extraction** (turns tagged trajectories into fine patterns):
//! - CounterpartCluster (Algorithm 4, in `pm-core`), or
//! - [`splitter`]: PrefixSpan + top-down Mean Shift refinement (Zhang et
//!   al. — ref \[17\]), or
//! - [`sdbscan`]: PrefixSpan + per-position DBSCAN (Jiang et al. —
//!   ref \[19\]).
//!
//! Combining them yields CSD-PM, ROI-PM, CSD-Splitter, ROI-Splitter,
//! CSD-SDBSCAN and ROI-SDBSCAN; `pm-eval` wires the combinations. Support
//! (`sigma`), temporal constraint (`delta_t`) and density threshold (`rho`)
//! are "universal factors in all six approaches" (paper §5), so every
//! extractor honours all three.

pub mod common;
pub mod roi;
pub mod sdbscan;
pub mod splitter;

pub use common::BaselineParams;
pub use roi::RoiRecognizer;
pub use sdbscan::sdbscan_extract;
pub use splitter::splitter_extract;
