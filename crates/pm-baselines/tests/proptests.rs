//! Property-based tests for the baseline extractors: whatever the input,
//! both must honour the universal sigma / rho / delta_t gates, produce
//! aligned groups, and stay deterministic.

use pm_baselines::{sdbscan_extract, splitter_extract, BaselineParams};
use pm_core::params::MinerParams;
use pm_core::types::{Category, SemanticTrajectory, StayPoint, Tags};
use pm_geo::LocalPoint;
use proptest::prelude::*;

/// Random two-stay commuter trajectories around a handful of venues.
fn trajectory_db() -> impl Strategy<Value = Vec<SemanticTrajectory>> {
    let venue = 0usize..4;
    let traj = (
        venue.clone(),
        venue,
        0i64..1_800,
        -20.0..20.0f64,
        -20.0..20.0f64,
    )
        .prop_map(|(v_from, v_to, dt, jx, jy)| {
            let venue_pos =
                |v: usize| LocalPoint::new((v % 2) as f64 * 3_000.0, (v / 2) as f64 * 3_000.0);
            let cats = [
                Category::Residence,
                Category::Business,
                Category::Shop,
                Category::Restaurant,
            ];
            SemanticTrajectory::new(vec![
                StayPoint::new(
                    venue_pos(v_from) + LocalPoint::new(jx, jy),
                    7 * 3600,
                    Tags::only(cats[v_from]),
                ),
                StayPoint::new(
                    venue_pos(v_to) + LocalPoint::new(jy, jx),
                    7 * 3600 + 900 + dt,
                    Tags::only(cats[v_to]),
                ),
            ])
        });
    prop::collection::vec(traj, 0..60)
}

fn params() -> MinerParams {
    MinerParams {
        sigma: 8,
        rho: 1e-5,
        ..MinerParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn splitter_postconditions(db in trajectory_db()) {
        let ps = splitter_extract(&db, &params(), &BaselineParams::default()).expect("valid params");
        for p in &ps {
            prop_assert!(p.support() >= params().sigma);
            prop_assert_eq!(p.groups.len(), p.len());
            for g in &p.groups {
                prop_assert_eq!(g.len(), p.support());
                let pts: Vec<LocalPoint> = g.iter().map(|sp| sp.pos).collect();
                prop_assert!(pm_geo::den(&pts) >= params().rho);
            }
            // Members respect delta_t on their embeddings.
            for &m in &p.members {
                for w in db[m].stays.windows(2) {
                    prop_assert!((w[1].time - w[0].time).abs() < params().delta_t);
                }
            }
        }
    }

    #[test]
    fn sdbscan_postconditions(db in trajectory_db()) {
        let ps = sdbscan_extract(&db, &params(), &BaselineParams::default()).expect("valid params");
        for p in &ps {
            prop_assert!(p.support() >= params().sigma);
            prop_assert_eq!(p.groups.len(), p.len());
            for (k, g) in p.groups.iter().enumerate() {
                prop_assert_eq!(g.len(), p.support());
                // SDBSCAN groups are DBSCAN clusters: every member has a
                // same-group neighbour within eps (for non-singleton groups).
                if g.len() > 1 {
                    for sp in g {
                        let near = g.iter().any(|o| {
                            o.pos != sp.pos
                                && o.pos.distance(&sp.pos)
                                    <= BaselineParams::default().dbscan_eps * (g.len() as f64)
                        });
                        prop_assert!(near || g.iter().filter(|o| o.pos == sp.pos).count() > 1,
                            "position {k} has an isolated member");
                    }
                }
            }
        }
    }

    #[test]
    fn both_extractors_are_deterministic(db in trajectory_db()) {
        let base = BaselineParams::default();
        let a1 = splitter_extract(&db, &params(), &base).expect("valid params");
        let a2 = splitter_extract(&db, &params(), &base).expect("valid params");
        prop_assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            prop_assert_eq!(&x.members, &y.members);
        }
        let b1 = sdbscan_extract(&db, &params(), &base).expect("valid params");
        let b2 = sdbscan_extract(&db, &params(), &base).expect("valid params");
        prop_assert_eq!(b1.len(), b2.len());
        for (x, y) in b1.iter().zip(&b2) {
            prop_assert_eq!(&x.members, &y.members);
        }
    }

    /// No trajectory supports two patterns with the same category chain
    /// (buckets partition the members of a coarse pattern).
    #[test]
    fn buckets_partition_members(db in trajectory_db()) {
        let ps = splitter_extract(&db, &params(), &BaselineParams::default()).expect("valid params");
        use std::collections::HashMap;
        let mut seen: HashMap<(Vec<Category>, usize), usize> = HashMap::new();
        for p in &ps {
            for &m in &p.members {
                let count = seen.entry((p.categories.clone(), m)).or_insert(0);
                *count += 1;
                prop_assert_eq!(*count, 1, "trajectory {} in two same-chain patterns", m);
            }
        }
    }
}
