//! Incremental stay-point detection — Definition 5, one fix at a time.
//!
//! The batch detector ([`pm_core::recognize::detect_stay_points`]) scans a
//! complete trajectory: it grows a window while every fix stays within
//! `theta_d` of the window's *first* fix, emits the window's mean as a stay
//! point once it spans `theta_t` seconds, and otherwise advances the anchor
//! by one. The streaming form below keeps the not-yet-settled suffix of that
//! scan as a `pending` buffer with the invariant *every buffered fix is
//! within `theta_d` of the buffer's front*, and settles lazily:
//!
//! - an arriving fix inside `theta_d` of the front just joins the buffer —
//!   the batch loop would have extended the same window;
//! - an arriving fix outside `theta_d` is the batch loop's window breaker:
//!   the buffered prefix either collapses into a stay (duration ≥ `theta_t`)
//!   or loses its front fix, after which the invariant is re-established by
//!   rescanning (the batch `i += 1` path) and the new fix is retried;
//! - [`StayPointDetector::flush`] is end-of-stream: the batch loop's final
//!   windows settle exactly the same way.
//!
//! Arithmetic is shared with the batch path
//! ([`pm_core::recognize::collapse_window`]) — same summation order, same
//! 128-bit time averaging — so emitted stays are bit-identical, not merely
//! close. `tests/stream_parity.rs` proves this property over random
//! trajectories, including out-of-order and duplicate timestamps.
//!
//! Transport-order policy: timestamps must be strictly increasing per
//! detector. A fix at or before the last admitted time is quarantined
//! (counted, dropped) — the streaming analogue of pm-io's quarantine lane.
//! Non-finite coordinates are admitted (they advance the ordering clock,
//! like a batch sanitize step would keep the record) but dropped before
//! window logic, mirroring `Degradation::DroppedGpsFixes` in the batch
//! detector.

use crate::error::StreamError;
use pm_core::params::MinerParams;
use pm_core::recognize::collapse_window;
use pm_core::types::{GpsPoint, StayPoint, Timestamp};
use std::collections::VecDeque;

/// Default bound on buffered fixes per user; a dwell longer than this many
/// fixes degrades (oldest fixes are shed) instead of growing without limit.
pub const DEFAULT_MAX_PENDING: usize = 4096;

/// Detection thresholds of one streaming detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Definition 5 spatial threshold (meters).
    pub theta_d: f64,
    /// Definition 5 temporal threshold (seconds).
    pub theta_t: Timestamp,
    /// Hard cap on buffered fixes. Parity with the batch detector holds
    /// while no window outgrows this bound.
    pub max_pending: usize,
}

impl StreamParams {
    /// Streaming thresholds matching a batch run's parameters.
    pub fn from_miner(params: &MinerParams) -> StreamParams {
        StreamParams {
            theta_d: params.theta_d,
            theta_t: params.theta_t,
            max_pending: DEFAULT_MAX_PENDING,
        }
    }

    /// Rejects thresholds that cannot drive detection.
    pub fn validate(&self) -> Result<(), StreamError> {
        if !(self.theta_d.is_finite() && self.theta_d >= 0.0) {
            return Err(StreamError::config(format!(
                "theta_d {} must be finite and non-negative",
                self.theta_d
            )));
        }
        if self.theta_t <= 0 {
            return Err(StreamError::config(format!(
                "theta_t {} must be positive",
                self.theta_t
            )));
        }
        if self.max_pending < 2 {
            return Err(StreamError::config(format!(
                "max_pending {} must be at least 2",
                self.max_pending
            )));
        }
        Ok(())
    }
}

/// What happened to one pushed fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixStatus {
    /// Admitted into window logic (it may emit stays much later).
    Accepted,
    /// Timestamp at or before the last admitted fix: quarantined.
    OutOfOrder,
    /// Non-finite coordinates: dropped after advancing the ordering clock.
    NonFinite,
}

/// Cumulative per-detector tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Fixes admitted into window logic.
    pub accepted: u64,
    /// Fixes quarantined for violating time order.
    pub quarantined: u64,
    /// Fixes dropped for non-finite coordinates.
    pub dropped_non_finite: u64,
    /// Buffered fixes shed by the `max_pending` bound.
    pub overflowed: u64,
    /// Stay points emitted.
    pub emitted: u64,
}

/// The per-user incremental detector.
#[derive(Debug, Clone)]
pub struct StayPointDetector {
    params: StreamParams,
    /// The unsettled suffix. Invariant: every element is within `theta_d`
    /// of the front element.
    pending: VecDeque<GpsPoint>,
    /// Last admitted timestamp — the strictly-increasing ordering clock.
    last_time: Option<Timestamp>,
    stats: DetectorStats,
}

impl StayPointDetector {
    /// A fresh detector. `params` must already be validated.
    pub fn new(params: StreamParams) -> StayPointDetector {
        StayPointDetector {
            params,
            pending: VecDeque::new(),
            last_time: None,
            stats: DetectorStats::default(),
        }
    }

    /// Feeds one fix; any stay points it settles are appended to `out`.
    pub fn push(&mut self, fix: GpsPoint, out: &mut Vec<StayPoint>) -> FixStatus {
        if !self.admit_time(fix.time) {
            return FixStatus::OutOfOrder;
        }
        if !(fix.pos.x.is_finite() && fix.pos.y.is_finite()) {
            self.stats.dropped_non_finite += 1;
            return FixStatus::NonFinite;
        }
        self.stats.accepted += 1;
        self.accept(fix, out);
        FixStatus::Accepted
    }

    /// Advances the ordering clock without entering window logic. Returns
    /// `false` (and counts a quarantine) when `t` is not strictly after the
    /// last admitted time. Used for pre-detected stay records, which share
    /// the transport contract but bypass detection.
    pub fn admit_time(&mut self, t: Timestamp) -> bool {
        if let Some(last) = self.last_time {
            if t <= last {
                self.stats.quarantined += 1;
                return false;
            }
        }
        self.last_time = Some(t);
        true
    }

    /// End-of-stream: settles everything still buffered exactly like the
    /// batch detector's final windows. The ordering clock survives, so a
    /// flushed detector keeps rejecting stale timestamps.
    pub fn flush(&mut self, out: &mut Vec<StayPoint>) {
        loop {
            if self.pending.is_empty() {
                return;
            }
            if self.window_duration() >= self.params.theta_t {
                let n = self.pending.len();
                self.emit_prefix(n, out);
                return;
            }
            self.pending.pop_front();
            self.restore_invariant(out);
        }
    }

    /// Buffered, not-yet-settled fixes.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The last admitted timestamp.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.last_time
    }

    /// Cumulative tallies.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// The unsettled buffer, oldest first — the persistence view used by
    /// engine state serialization.
    pub(crate) fn pending(&self) -> &VecDeque<GpsPoint> {
        &self.pending
    }

    /// Rebuilds a detector from persisted parts. The caller (engine state
    /// deserialization) is responsible for having validated `params`;
    /// buffer invariants hold because the parts came from a live detector.
    pub(crate) fn from_parts(
        params: StreamParams,
        pending: VecDeque<GpsPoint>,
        last_time: Option<Timestamp>,
        stats: DetectorStats,
    ) -> StayPointDetector {
        StayPointDetector {
            params,
            pending,
            last_time,
            stats,
        }
    }

    /// Window logic for one admitted, finite fix. Mirrors one step of the
    /// batch scan: the fix either extends the current window or breaks it,
    /// and a broken window settles (emit or advance-by-one) until the fix
    /// finds its place.
    fn accept(&mut self, fix: GpsPoint, out: &mut Vec<StayPoint>) {
        loop {
            let Some(anchor) = self.pending.front().copied() else {
                self.pending.push_back(fix);
                return;
            };
            if fix.pos.distance(&anchor.pos) <= self.params.theta_d {
                if self.pending.len() >= self.params.max_pending {
                    // Bounded-memory degradation: shed the oldest fix and
                    // re-establish the invariant before retrying. Parity
                    // with batch holds only below this bound.
                    self.pending.pop_front();
                    self.stats.overflowed += 1;
                    self.restore_invariant(out);
                    continue;
                }
                self.pending.push_back(fix);
                return;
            }
            // `fix` is the batch loop's window breaker.
            if self.window_duration() >= self.params.theta_t {
                let n = self.pending.len();
                self.emit_prefix(n, out);
            } else {
                self.pending.pop_front();
                self.restore_invariant(out);
            }
        }
    }

    /// Time spanned by the buffered window (saturating, like batch).
    fn window_duration(&self) -> Timestamp {
        match (self.pending.front(), self.pending.back()) {
            (Some(a), Some(b)) => b.time.saturating_sub(a.time),
            _ => 0,
        }
    }

    /// Collapses the first `count` buffered fixes into one stay point.
    fn emit_prefix(&mut self, count: usize, out: &mut Vec<StayPoint>) {
        let window: Vec<GpsPoint> = self.pending.drain(..count).collect();
        out.push(collapse_window(&window));
        self.stats.emitted += 1;
    }

    /// Re-establishes the buffer invariant after the front changed,
    /// emitting any window that already satisfies Definition 5 along the
    /// way — the batch loop's rescan from a new anchor.
    fn restore_invariant(&mut self, out: &mut Vec<StayPoint>) {
        loop {
            let Some(anchor) = self.pending.front().copied() else {
                return;
            };
            let mut breaker = None;
            for (k, p) in self.pending.iter().enumerate().skip(1) {
                if p.pos.distance(&anchor.pos) > self.params.theta_d {
                    breaker = Some(k);
                    break;
                }
            }
            let Some(k) = breaker else {
                return;
            };
            if self.pending[k - 1].time.saturating_sub(anchor.time) >= self.params.theta_t {
                self.emit_prefix(k, out);
            } else {
                self.pending.pop_front();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::recognize::detect_stay_points_tracked;
    use pm_core::types::GpsTrajectory;
    use pm_geo::LocalPoint;

    fn params() -> StreamParams {
        StreamParams {
            theta_d: 100.0,
            theta_t: 300,
            max_pending: DEFAULT_MAX_PENDING,
        }
    }

    fn fix(x: f64, y: f64, t: Timestamp) -> GpsPoint {
        GpsPoint::new(LocalPoint::new(x, y), t)
    }

    /// Batch output on the already-sanitized sequence.
    fn batch(pts: &[GpsPoint], p: StreamParams) -> Vec<StayPoint> {
        let miner = MinerParams {
            theta_d: p.theta_d,
            theta_t: p.theta_t,
            ..MinerParams::default()
        };
        let mut events = Vec::new();
        detect_stay_points_tracked(&GpsTrajectory::new(pts.to_vec()), &miner, &mut events)
    }

    fn stream(pts: &[GpsPoint], p: StreamParams) -> Vec<StayPoint> {
        let mut d = StayPointDetector::new(p);
        let mut out = Vec::new();
        for &f in pts {
            d.push(f, &mut out);
        }
        d.flush(&mut out);
        out
    }

    #[test]
    fn dwell_emits_one_stay_matching_batch() {
        let pts: Vec<GpsPoint> = (0..10).map(|i| fix((i % 3) as f64, 0.0, i * 60)).collect();
        let got = stream(&pts, params());
        assert_eq!(got, batch(&pts, params()));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn two_dwells_with_travel_between() {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(fix(0.0, i as f64, i * 60));
        }
        pts.push(fix(5000.0, 0.0, 8 * 60)); // travel breaker
        for i in 0..8 {
            pts.push(fix(9000.0 + i as f64, 0.0, (20 + i) * 60));
        }
        let got = stream(&pts, params());
        assert_eq!(got, batch(&pts, params()));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn short_dwell_emits_nothing() {
        let pts: Vec<GpsPoint> = (0..3).map(|i| fix(0.0, 0.0, i * 60)).collect();
        assert!(stream(&pts, params()).is_empty());
        assert_eq!(stream(&pts, params()), batch(&pts, params()));
    }

    #[test]
    fn out_of_order_and_duplicates_are_quarantined() {
        let mut d = StayPointDetector::new(params());
        let mut out = Vec::new();
        assert_eq!(d.push(fix(0.0, 0.0, 100), &mut out), FixStatus::Accepted);
        assert_eq!(d.push(fix(0.0, 0.0, 100), &mut out), FixStatus::OutOfOrder);
        assert_eq!(d.push(fix(0.0, 0.0, 50), &mut out), FixStatus::OutOfOrder);
        assert_eq!(d.push(fix(0.0, 0.0, 101), &mut out), FixStatus::Accepted);
        assert_eq!(d.stats().quarantined, 2);
        assert_eq!(d.stats().accepted, 2);
    }

    #[test]
    fn non_finite_fixes_advance_the_clock_but_are_dropped() {
        let mut d = StayPointDetector::new(params());
        let mut out = Vec::new();
        assert_eq!(
            d.push(fix(f64::NAN, 0.0, 10), &mut out),
            FixStatus::NonFinite
        );
        // The bad fix consumed t=10; a finite fix at the same time is late.
        assert_eq!(d.push(fix(0.0, 0.0, 10), &mut out), FixStatus::OutOfOrder);
        assert_eq!(d.push(fix(0.0, 0.0, 11), &mut out), FixStatus::Accepted);
        assert_eq!(d.stats().dropped_non_finite, 1);
    }

    #[test]
    fn overflow_sheds_oldest_and_keeps_running() {
        let p = StreamParams {
            max_pending: 4,
            theta_t: 1_000_000, // never satisfied: force pure buffering
            ..params()
        };
        let mut d = StayPointDetector::new(p);
        let mut out = Vec::new();
        for i in 0..10 {
            d.push(fix(0.0, 0.0, i), &mut out);
        }
        assert_eq!(d.pending_len(), 4);
        assert_eq!(d.stats().overflowed, 6);
        assert!(out.is_empty());
    }

    #[test]
    fn flush_is_idempotent() {
        let pts: Vec<GpsPoint> = (0..10).map(|i| fix(0.0, 0.0, i * 60)).collect();
        let mut d = StayPointDetector::new(params());
        let mut out = Vec::new();
        for &f in &pts {
            d.push(f, &mut out);
        }
        d.flush(&mut out);
        let n = out.len();
        d.flush(&mut out);
        assert_eq!(out.len(), n);
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn params_validation_rejects_nonsense() {
        assert!(params().validate().is_ok());
        for bad in [
            StreamParams {
                theta_d: f64::NAN,
                ..params()
            },
            StreamParams {
                theta_d: -1.0,
                ..params()
            },
            StreamParams {
                theta_t: 0,
                ..params()
            },
            StreamParams {
                max_pending: 1,
                ..params()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
