//! **pm-stream** — online trajectory ingestion for the Pervasive Miner
//! stack.
//!
//! The batch pipeline consumes complete trajectories; this crate consumes
//! GPS fixes *as they arrive* and produces the same artifacts incrementally:
//!
//! - [`StayPointDetector`]: a per-user state machine fed one
//!   [`pm_core::types::GpsPoint`] at a time that emits exactly the stay
//!   points Definition 5's batch detector
//!   ([`pm_core::recognize::detect_stay_points`]) would have found on the
//!   same admitted sequence — bit-for-bit, proven by the
//!   `tests/stream_parity.rs` proptest. Memory is bounded per user.
//! - [`TransitionWindow`]: a deterministic sliding window of semantic
//!   transition counts (`Residence → Business & Office` in the last W
//!   seconds), driven purely by event time — no wall clock, so replays are
//!   reproducible.
//! - [`IngestEngine`]: the multi-user front door. Routes records to per-user
//!   detectors, quarantines out-of-order timestamps, recognizes emitted
//!   stays against whatever recognizer the caller supplies (pm-serve passes
//!   the *current* snapshot, so hot-swaps take effect at the next batch),
//!   feeds transitions into the window, accumulates emitted stays (bounded)
//!   for background re-mining, and evicts stale users. The complete engine
//!   state round-trips through [`IngestEngine::state_bytes`] byte-exactly.
//! - [`Wal`]: a segmented, CRC-framed write-ahead log that makes ingestion
//!   crash-safe — batches are logged before they touch the engine, engine
//!   state is checkpointed periodically, and [`Wal::open`] recovers the
//!   longest clean prefix after a kill (see [`wal`]).
//! - [`ShardedEngine`]: N user-keyed engine shards behind one logical front
//!   door — per-shard WAL segment streams, per-shard worker threads, and a
//!   sealed global clock that keeps shards=1 and shards=N byte-identical
//!   on every merged read (see [`sharded`]).
//! - [`MotifWindow`]: a sliding ring of daily mobility-motif counts. Each
//!   user's recognized stays accumulate into a per-day transition graph
//!   (nodes are primary categories on the live path); the day closes when
//!   a later day begins or the user is evicted, and the closed graph's
//!   canonical form (via `pm-motif`) lands in the window. Merged across
//!   shards as [`LiveMotifs`] — the payload of `GET /v1/live/motifs`.
//!
//! Everything is std-only, panic-free on untrusted input, and deterministic:
//! the same record sequence produces the same stays, the same window
//! contents, and the same eviction order, regardless of thread count or
//! wall-clock time.

pub mod detector;
pub mod engine;
pub mod error;
pub mod motif;
pub mod sharded;
pub mod wal;
pub mod window;

pub use detector::{DetectorStats, FixStatus, StayPointDetector, StreamParams};
pub use engine::{BatchOutcome, EngineConfig, EngineStats, IngestEngine, IngestRecord};
pub use error::StreamError;
pub use motif::{MotifCell, MotifWindow, DAY_SECS, MOTIF_WINDOW_DAYS};
pub use sharded::{
    shard_of, LiveMotifs, LiveView, Recognizer, ShardConfig, ShardRecovery, ShardedEngine, WalTick,
};
pub use wal::{AppendInfo, Recovery, RecoveryReport, SealedBatch, Wal, WalConfig};
pub use window::{TransitionWindow, WindowConfig};
