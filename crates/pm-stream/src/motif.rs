//! A deterministic sliding window of daily mobility-motif counts.
//!
//! The window is a ring of absolute-day-aligned buckets, one per calendar
//! day of event time (`day = t.div_euclid(86_400)`), spanning the last
//! [`MOTIF_WINDOW_DAYS`] days. It follows the [`TransitionWindow`]
//! discipline exactly — lazy event-driven rotation, read-time age
//! exclusion, no wall clock — but each slot holds a form-keyed map of
//! motif-class cells rather than a dense category matrix, because
//! canonical forms are sparse.
//!
//! Days are closed (and recorded here) by the engine when a user's stream
//! reaches a later day, or when the user is evicted. A day older than the
//! window at closure time is counted late, never inserted. The in-window
//! *content* is shard-layout independent: a day judged late on a lazily
//! caught-up shard would have aged out of an eagerly advanced shard's ring
//! by the time any settled read observes it, so merged views agree even
//! though the internal `late_days`/`recorded_days` split may not — which
//! is why only content and closure tallies are ever surfaced.
//!
//! [`TransitionWindow`]: crate::window::TransitionWindow

use crate::error::StreamError;
use pm_core::types::{Category, Timestamp};
use pm_motif::{DayGraph, MotifTable};
use std::collections::BTreeMap;

/// Seconds per motif day bucket — days are fixed UTC-aligned buckets of
/// event time, matching the batch pipeline's per-trajectory day split.
pub const DAY_SECS: Timestamp = 86_400;

/// Span of the live motif window, in day buckets. Fixed rather than
/// configured: the motif analytic is "shape of recent days", and seven of
/// them match the default transition window's week-scale retention.
pub const MOTIF_WINDOW_DAYS: usize = 7;

/// One motif class's in-window accumulation: day count plus the node
/// category breakdown summed over those days.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifCell {
    /// User-days in the window that collapsed to this form.
    pub days: u64,
    /// Node occurrences per primary category across those days.
    pub category_counts: [u64; Category::COUNT],
    /// Node occurrences with no recognized primary category.
    pub untagged_nodes: u64,
}

impl Default for MotifCell {
    fn default() -> MotifCell {
        MotifCell {
            days: 0,
            category_counts: [0; Category::COUNT],
            untagged_nodes: 0,
        }
    }
}

impl MotifCell {
    pub(crate) fn absorb(&mut self, other: &MotifCell) {
        self.days += other.days;
        for (i, n) in other.category_counts.iter().enumerate() {
            self.category_counts[i] += n;
        }
        self.untagged_nodes += other.untagged_nodes;
    }
}

/// Sliding per-form day counts over the last [`MOTIF_WINDOW_DAYS`] days of
/// event time.
#[derive(Debug, Clone)]
pub struct MotifWindow {
    /// Per-slot form-keyed class cells (sparse: most days share few forms).
    classes: Vec<BTreeMap<u64, MotifCell>>,
    /// Per-slot count of oversize days (more than `pm_motif::MAX_NODES`
    /// distinct places — bucketed, never silently dropped).
    oversize: Vec<u64>,
    /// The absolute day each slot currently holds.
    periods: Vec<Timestamp>,
    /// Maximum event time observed, in raw seconds — the stream clock.
    clock: Option<Timestamp>,
    late_days: u64,
    recorded_days: u64,
}

impl Default for MotifWindow {
    fn default() -> MotifWindow {
        MotifWindow::new()
    }
}

impl MotifWindow {
    /// An empty window.
    pub fn new() -> MotifWindow {
        MotifWindow {
            classes: vec![BTreeMap::new(); MOTIF_WINDOW_DAYS],
            oversize: vec![0; MOTIF_WINDOW_DAYS],
            // i64::MIN doubles as "never written", as in TransitionWindow.
            periods: vec![Timestamp::MIN; MOTIF_WINDOW_DAYS],
            clock: None,
            late_days: 0,
            recorded_days: 0,
        }
    }

    /// Records one closed day graph under absolute day `day`. Returns
    /// `false` when the day is already older than the window (counted
    /// late, not recorded).
    pub fn record(&mut self, day: Timestamp, graph: &DayGraph) -> bool {
        // A closed day implies the clock reached at least that day's start.
        self.advance(day.saturating_mul(DAY_SECS));
        let clock_day = self.clock.map_or(day, |c| c.div_euclid(DAY_SECS)).max(day);
        let n = MOTIF_WINDOW_DAYS as i64;
        if clock_day.saturating_sub(day) >= n {
            self.late_days += 1;
            return false;
        }
        let slot = day.rem_euclid(n) as usize;
        if self.periods[slot] != day {
            // The slot last held a day at least one full rotation ago.
            self.classes[slot].clear();
            self.oversize[slot] = 0;
            self.periods[slot] = day;
        }
        match graph.form {
            None => self.oversize[slot] += 1,
            Some(form) => {
                let cell = self.classes[slot].entry(form).or_default();
                cell.days += 1;
                for (i, c) in graph.category_counts.iter().enumerate() {
                    cell.category_counts[i] += c;
                }
                cell.untagged_nodes += graph.untagged_nodes;
            }
        }
        self.recorded_days += 1;
        true
    }

    /// Advances the stream clock to `to` seconds without recording
    /// anything (a no-op when the clock is already at or past `to`).
    pub fn advance(&mut self, to: Timestamp) {
        self.clock = Some(self.clock.map_or(to, |c| c.max(to)));
    }

    /// The stream clock: the latest event time seen, in seconds.
    pub fn as_of(&self) -> Option<Timestamp> {
        self.clock
    }

    /// The merged in-window content: form-keyed cells plus the oversize
    /// day count, with stale slots excluded by age at read time. This is
    /// the shard-merge unit — maps from several windows sum cell-wise into
    /// the same view one window over the union stream would hold.
    pub fn in_window(&self) -> (BTreeMap<u64, MotifCell>, u64) {
        let mut cells: BTreeMap<u64, MotifCell> = BTreeMap::new();
        let mut oversize = 0u64;
        let Some(clock) = self.clock else {
            return (cells, oversize);
        };
        let clock_day = clock.div_euclid(DAY_SECS);
        let n = MOTIF_WINDOW_DAYS as i64;
        for (slot, forms) in self.classes.iter().enumerate() {
            let age = clock_day.saturating_sub(self.periods[slot]);
            if !(0..n).contains(&age) {
                continue;
            }
            for (form, cell) in forms {
                cells.entry(*form).or_default().absorb(cell);
            }
            oversize += self.oversize[slot];
        }
        (cells, oversize)
    }

    /// The in-window content ranked into a [`MotifTable`] —
    /// `total_days` covers oversize days, classes rank by
    /// `(days desc, form asc)`, exactly like the batch aggregator.
    pub fn table(&self) -> MotifTable {
        let (cells, oversize) = self.in_window();
        rank_cells(cells, oversize)
    }

    /// Persistence view: per-slot cells, per-slot oversize counts,
    /// per-slot days, clock, and the two lifetime tallies, in that order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (
        &[BTreeMap<u64, MotifCell>],
        &[u64],
        &[Timestamp],
        Option<Timestamp>,
        u64,
        u64,
    ) {
        (
            &self.classes,
            &self.oversize,
            &self.periods,
            self.clock,
            self.late_days,
            self.recorded_days,
        )
    }

    /// Rebuilds a window from persisted parts, re-validating the slot
    /// geometry so corrupt state cannot index out of bounds later.
    pub(crate) fn from_parts(
        classes: Vec<BTreeMap<u64, MotifCell>>,
        oversize: Vec<u64>,
        periods: Vec<Timestamp>,
        clock: Option<Timestamp>,
        late_days: u64,
        recorded_days: u64,
    ) -> Result<MotifWindow, StreamError> {
        if classes.len() != MOTIF_WINDOW_DAYS
            || oversize.len() != MOTIF_WINDOW_DAYS
            || periods.len() != MOTIF_WINDOW_DAYS
        {
            return Err(StreamError::corrupt(format!(
                "motif window has {}/{}/{} slots, expected {MOTIF_WINDOW_DAYS}",
                classes.len(),
                oversize.len(),
                periods.len()
            )));
        }
        Ok(MotifWindow {
            classes,
            oversize,
            periods,
            clock,
            late_days,
            recorded_days,
        })
    }
}

/// Ranks merged in-window cells into a [`MotifTable`] — shared by the
/// single-window read and the sharded merge so both views are built by
/// the same code path.
pub fn rank_cells(cells: BTreeMap<u64, MotifCell>, oversize_days: u64) -> MotifTable {
    let total_days = cells.values().map(|c| c.days).sum::<u64>() + oversize_days;
    let mut ranked: Vec<(u64, MotifCell)> = cells.into_iter().collect();
    ranked.sort_by(|(fa, a), (fb, b)| b.days.cmp(&a.days).then(fa.cmp(fb)));
    MotifTable::from_parts(
        total_days,
        oversize_days,
        ranked
            .into_iter()
            .map(|(form, c)| (form, c.days, c.category_counts, c.untagged_nodes))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_motif::DayGraphBuilder;

    fn day_graph(keys: &[u64]) -> DayGraph {
        let mut b = DayGraphBuilder::new();
        for &k in keys {
            b.visit(k, Some(Category::Residence));
        }
        b.finish()
    }

    #[test]
    fn days_accumulate_and_expire() {
        let mut w = MotifWindow::new();
        assert!(w.record(0, &day_graph(&[1, 2, 1])));
        assert!(w.record(1, &day_graph(&[1, 2, 1])));
        let t = w.table();
        assert_eq!(t.total_days, 2);
        assert_eq!(t.classes.len(), 1);
        // Advancing a week past day 0 ages it out; day 1 stays visible
        // until the clock passes its own horizon.
        w.advance(7 * DAY_SECS);
        assert_eq!(w.table().total_days, 1);
        w.advance(8 * DAY_SECS);
        assert_eq!(w.table().total_days, 0);
    }

    #[test]
    fn late_days_are_dropped_not_inserted() {
        let mut w = MotifWindow::new();
        w.advance(20 * DAY_SECS);
        assert!(!w.record(2, &day_graph(&[1])));
        assert_eq!(w.table().total_days, 0);
        assert!(w.record(19, &day_graph(&[1])));
        assert_eq!(w.table().total_days, 1);
    }

    #[test]
    fn oversize_days_are_counted_in_the_denominator() {
        let mut w = MotifWindow::new();
        let mut nine = DayGraphBuilder::new();
        for k in 0..9u64 {
            nine.visit(k, None);
        }
        assert!(w.record(0, &nine.finish()));
        assert!(w.record(0, &day_graph(&[1, 2, 1])));
        let t = w.table();
        assert_eq!(t.total_days, 2);
        assert_eq!(t.oversize_days, 1);
        assert_eq!(t.classes.len(), 1);
        assert_eq!(t.classes[0].share, 0.5);
    }

    #[test]
    fn slot_reclaim_zeroes_the_stranded_day() {
        let mut w = MotifWindow::new();
        assert!(w.record(0, &day_graph(&[1])));
        // Day 7 maps onto day 0's ring slot after a clock jump.
        w.advance(7 * DAY_SECS);
        assert!(w.record(7, &day_graph(&[1, 2, 1])));
        let t = w.table();
        assert_eq!(t.total_days, 1);
        assert_eq!(t.classes[0].nodes, 2, "only day 7's class remains");
    }

    #[test]
    fn merge_matches_the_union_window() {
        // Two windows over disjoint halves of a day stream merge to the
        // same view one window over everything holds.
        let days: Vec<(Timestamp, Vec<u64>)> = vec![
            (0, vec![1, 2, 1]),
            (1, vec![1]),
            (1, vec![3, 4, 3]),
            (2, vec![5, 6, 7]),
        ];
        let mut whole = MotifWindow::new();
        let mut a = MotifWindow::new();
        let mut b = MotifWindow::new();
        for (i, (day, keys)) in days.iter().enumerate() {
            whole.record(*day, &day_graph(keys));
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            part.record(*day, &day_graph(keys));
        }
        for w in [&mut a, &mut b] {
            w.advance(whole.as_of().unwrap_or(0));
        }
        let (mut cells, mut oversize) = a.in_window();
        let (cells_b, over_b) = b.in_window();
        for (form, cell) in &cells_b {
            cells.entry(*form).or_default().absorb(cell);
        }
        oversize += over_b;
        assert_eq!(rank_cells(cells, oversize), whole.table());
    }
}
