//! User-keyed sharding over [`IngestEngine`]: N independent shards, one
//! logical engine.
//!
//! A single `IngestEngine` serializes every user through one map and one
//! lock. [`ShardedEngine`] hashes each user id (FNV-1a, stable across
//! processes) into one of N shards, each with its own engine, transition
//! window, WAL segment stream, and — via
//! [`pm_runtime::ShardPool`] — its own worker thread. Per-user state never
//! crosses a shard boundary, so shards need no coordination beyond a shared
//! notion of time.
//!
//! # The sealed clock: why shards=1 and shards=N are byte-equivalent
//!
//! Lateness and TTL verdicts in an `IngestEngine` depend on the global
//! event clock, which a partitioned engine cannot reproduce record by
//! record. The fix is to make the clock explicit: each logical batch is
//! **sealed** at `max(previous global clock, max event time in the batch)`
//! under a sequencer lock, and every shard ingests its sub-batch via
//! [`IngestEngine::ingest_batch_sealed`] — clocks advance to the seal
//! *before* any record is processed. A verdict then depends only on the
//! user's own subsequence and the seal, never on which other records share
//! the shard. (The seal can be computed over all records, admitted or not:
//! a quarantined record's time is bounded by an already-admitted one.)
//!
//! Shards untouched by a batch are not eagerly advanced — that would turn
//! one logical append into N WAL writes. Instead every read path first
//! settles the engine: drains the shard queues, then calls
//! [`IngestEngine::advance_to`] on each shard with the sealed global clock.
//! Exact TTL eviction is memoryless (the evicted set is always
//! `{last_seen < clock - ttl}`), so lazy catch-up produces the same state
//! eager advancement would have — **provided `user_ttl_secs >=
//! window_secs`**, which [`ShardConfig::validate`] enforces for N > 1: it
//! guarantees an eviction-flushed stay is always older than the window, so
//! its transitions land in `late_dropped` no matter *when* the flush runs.
//!
//! # What merges, and what is per-shard
//!
//! Reads merge deterministically: per-`(from, to)` window counts, user
//! counts, lifetime tallies, and stay buffers (by shard index, oldest
//! first) are sums over the user partition, and every shard reports the
//! same sealed `as_of`. Two budgets are split, not shared: each shard gets
//! `ceil(max_users / N)` users and `ceil(max_stay_buffer / N)` buffered
//! stays, so *capacity* eviction and stay-buffer shedding trigger at
//! per-shard boundaries. Workloads that lean on those bounds are
//! shard-count sensitive by design; the byte-parity suite steers clear of
//! both.
//!
//! # WAL fan-out
//!
//! With a WAL configured, the root directory holds a `shards.meta` stamp
//! and one sub-log per shard (`shard-000/seg-*.wal`, ...). A batch's
//! sub-batches are appended (with the shared seal) to their shards' logs
//! *before* the engines see them, under the sequencer so log order equals
//! seal order. Opening with a different shard count than the directory was
//! written with is a loud error — records would silently land on the wrong
//! shard's state otherwise — as is a legacy unsharded layout.

use crate::engine::{BatchOutcome, EngineConfig, EngineStats, IngestEngine, IngestRecord};
use crate::error::StreamError;
use crate::motif::{rank_cells, MotifCell, MOTIF_WINDOW_DAYS};
use crate::wal::{RecoveryReport, Wal, WalConfig};
use pm_core::types::{Category, StayPoint, Timestamp};
use pm_geo::LocalPoint;
use pm_motif::MotifTable;
use pm_runtime::ShardPool;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Shared recognizer closure: maps a stay position onto its primary
/// category. `Arc`'d so shard workers can hold it across threads.
pub type Recognizer = Arc<dyn Fn(LocalPoint) -> Option<Category> + Send + Sync>;

/// FNV-1a over the user id: stable across processes, platforms, and runs —
/// shard placement is part of the on-disk contract.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a user id lands on.
pub fn shard_of(user: &str, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    (fnv1a64(user.as_bytes()) % shards as u64) as usize
}

/// Shape of a sharded engine. `engine` carries the *system-wide* budgets;
/// per-shard budgets are derived (`ceil(budget / shards)`).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of user-keyed shards (>= 1).
    pub shards: usize,
    /// Detector/window shape and system-wide memory budgets.
    pub engine: EngineConfig,
    /// WAL root directory config; each shard logs into a sub-directory.
    pub wal: Option<WalConfig>,
}

impl ShardConfig {
    /// A WAL-less config with `shards` shards.
    pub fn new(shards: usize, engine: EngineConfig) -> ShardConfig {
        ShardConfig {
            shards,
            engine,
            wal: None,
        }
    }

    /// Adds a write-ahead log rooted at `wal.dir`.
    pub fn with_wal(mut self, wal: WalConfig) -> ShardConfig {
        self.wal = Some(wal);
        self
    }

    /// Rejects shapes that cannot run or cannot stay shard-count
    /// deterministic.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.shards == 0 {
            return Err(StreamError::config("shards must be at least 1"));
        }
        self.engine.validate()?;
        if let Some(wal) = &self.wal {
            wal.validate()?;
        }
        if self.shards > 1 && self.engine.user_ttl_secs < self.engine.window.window_secs {
            // Lazy shard catch-up is only equivalent to eager advancement
            // when an eviction-flushed stay is guaranteed late (see the
            // module docs); that needs ttl >= window.
            return Err(StreamError::config(format!(
                "user_ttl_secs ({}) must be at least window_secs ({}) when sharding",
                self.engine.user_ttl_secs, self.engine.window.window_secs
            )));
        }
        Ok(())
    }

    /// The per-shard engine config: shared shape, split budgets.
    fn shard_engine_config(&self) -> EngineConfig {
        let split = |budget: usize| {
            if budget == 0 {
                0
            } else {
                budget.div_ceil(self.shards)
            }
        };
        EngineConfig {
            max_users: split(self.engine.max_users),
            max_stay_buffer: split(self.engine.max_stay_buffer),
            ..self.engine
        }
    }

    /// The WAL config of one shard's sub-log.
    fn shard_wal_config(&self, shard: usize) -> Option<WalConfig> {
        self.wal.as_ref().map(|root| WalConfig {
            dir: root.dir.join(format!("shard-{shard:03}")),
            ..root.clone()
        })
    }
}

/// Aggregate of what [`ShardedEngine::open`] recovered across all shards.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardRecovery {
    /// Field-wise sum of every shard's [`RecoveryReport`].
    pub report: RecoveryReport,
    /// Shards whose engine state was restored from a checkpoint.
    pub checkpoints_restored: u64,
}

/// What one logical batch did to the write-ahead logs, counted logically
/// (one ingested batch is one unit, however many shard logs it touched) so
/// `wal.*` observability counters read identically at any shard count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalTick {
    /// 1 when the batch was fully logged (0 for WAL-less engines).
    pub appended_batches: u64,
    /// Records covered by that logical append.
    pub appended_records: u64,
    /// 1 when any shard's append rolled a full segment.
    pub segments_rolled: u64,
    /// 1 when any shard's append failed (the batch still reaches the
    /// engines; losing durability must not lose live traffic).
    pub append_errors: u64,
}

/// A merged, read-consistent view of the live transition state — the
/// payload of `GET /v1/live/patterns`, shard-count independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveView {
    /// The sealed global clock every shard was settled to.
    pub as_of: Option<Timestamp>,
    /// The window span, from config.
    pub window_secs: i64,
    /// Users currently tracked across all shards.
    pub users: usize,
    /// Lifetime stays emitted.
    pub stays: u64,
    /// Sum of in-window transition counts.
    pub total: u64,
    /// Lifetime transitions dropped as older than the window.
    pub late_dropped: u64,
    /// Merged `(from, to, count)` triples, sorted by category index.
    pub transitions: Vec<(Category, Category, u64)>,
}

/// A merged, read-consistent view of the live motif state — the payload
/// of `GET /v1/live/motifs`, shard-count independent. Only in-window
/// content is exposed: closure-time lateness verdicts can differ between
/// eager and lazily caught-up shards, but a day they disagree on has
/// always aged out of the eager ring by the time any settled read runs,
/// so the merged table is identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveMotifs {
    /// The sealed global clock every shard was settled to.
    pub as_of: Option<Timestamp>,
    /// The window span in day buckets.
    pub window_days: usize,
    /// Lifetime user-days closed into the motif path.
    pub days_closed: u64,
    /// Lifetime closed days that exceeded the motif node cap.
    pub days_oversize: u64,
    /// The ranked in-window motif classes.
    pub table: MotifTable,
}

struct Shard {
    engine: Mutex<IngestEngine>,
    wal: Option<Mutex<Wal>>,
}

/// N user-keyed [`IngestEngine`] shards behind one logical front door. See
/// the module docs for the determinism contract.
pub struct ShardedEngine {
    config: ShardConfig,
    shards: Arc<Vec<Shard>>,
    /// One worker per shard; `None` for a single shard (inline execution —
    /// same bytes, no channel hop).
    pool: Option<ShardPool>,
    /// The sequencer: holds the sealed global clock. Held across seal
    /// computation, WAL appends, and job submission so per-shard queue
    /// order equals seal order; released before waiting on results so
    /// batches pipeline across shards.
    clock: Mutex<Option<Timestamp>>,
}

impl ShardedEngine {
    /// Opens a sharded engine: validates the config, recovers every
    /// shard's WAL (checkpoint + sealed replay), and settles all shards to
    /// the recovered global clock. `recognize` is needed because replay and
    /// the catch-up sweep settle stays exactly like live ingestion.
    pub fn open(
        config: ShardConfig,
        recognize: &Recognizer,
    ) -> Result<(ShardedEngine, ShardRecovery), StreamError> {
        config.validate()?;
        if let Some(root) = &config.wal {
            prepare_wal_root(&root.dir, config.shards)?;
        }
        let per_shard = config.shard_engine_config();
        let mut recovery = ShardRecovery::default();
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let (engine, wal) = match config.shard_wal_config(i) {
                Some(sub) => {
                    let (wal, rec) = Wal::open(sub)?;
                    absorb_report(&mut recovery.report, &rec.report);
                    let mut engine = match &rec.checkpoint {
                        Some(state) => {
                            recovery.checkpoints_restored += 1;
                            IngestEngine::from_state_bytes(state)?
                        }
                        None => IngestEngine::new(per_shard)?,
                    };
                    for batch in &rec.batches {
                        engine.ingest_batch_sealed(&batch.records, batch.seal, |p| recognize(p));
                    }
                    (engine, Some(Mutex::new(wal)))
                }
                None => (IngestEngine::new(per_shard)?, None),
            };
            shards.push(Shard {
                engine: Mutex::new(engine),
                wal,
            });
        }
        // Settle every shard to the recovered global clock: a shard whose
        // log was short still owes the evictions the others' clock implies.
        let global = shards
            .iter()
            .filter_map(|s| lock_engine(&s.engine).clock())
            .max();
        if let Some(g) = global {
            for shard in &shards {
                lock_engine(&shard.engine).advance_to(g, |p| recognize(p));
            }
        }
        let pool = (config.shards > 1).then(|| ShardPool::new(config.shards));
        Ok((
            ShardedEngine {
                shards: Arc::new(shards),
                pool,
                clock: Mutex::new(global),
                config,
            },
            recovery,
        ))
    }

    /// Wraps one already-built engine as a single WAL-less shard — the
    /// restore path for callers that checkpointed an engine themselves.
    pub fn from_engine(engine: IngestEngine) -> ShardedEngine {
        let clock = engine.clock();
        ShardedEngine {
            config: ShardConfig::new(1, engine.config()),
            shards: Arc::new(vec![Shard {
                engine: Mutex::new(engine),
                wal: None,
            }]),
            pool: None,
            clock: Mutex::new(clock),
        }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The shape this engine runs with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// The sealed global clock.
    pub fn clock(&self) -> Option<Timestamp> {
        *self.clock.lock().expect("clock lock")
    }

    /// Ingests one logical batch: seals the clock, logs each shard's
    /// sub-batch (WAL before engine), fans the sub-batches out to the
    /// shard workers, and waits for — and merges — their outcomes.
    ///
    /// The merged outcome covers the shards this batch *touched*; untouched
    /// shards owe their TTL sweep to the next settled read, whose outcome
    /// the caller must also account (see [`ShardedEngine::live_view`]).
    pub fn ingest_batch(
        &self,
        records: Vec<(String, IngestRecord)>,
        recognize: &Recognizer,
    ) -> (BatchOutcome, WalTick) {
        let mut tick = WalTick::default();
        let mut outcome = BatchOutcome::default();
        let mut pending = Vec::new();
        {
            let mut clock = self.clock.lock().expect("clock lock");
            let seal = {
                let batch_max = records
                    .iter()
                    .map(|(_, r)| match r {
                        IngestRecord::Fix(p) | IngestRecord::Stay(p) => p.time,
                    })
                    .max();
                match (*clock, batch_max) {
                    (Some(c), Some(m)) => Some(c.max(m)),
                    (c, m) => c.or(m),
                }
            };
            *clock = seal;
            let Some(seal) = seal else {
                return (outcome, tick); // empty batch on an empty engine
            };
            if records.is_empty() {
                return (outcome, tick);
            }
            // Partition, preserving order within each shard.
            let mut parts: Vec<Vec<(String, IngestRecord)>> =
                (0..self.config.shards).map(|_| Vec::new()).collect();
            for (user, record) in records {
                let s = shard_of(&user, self.config.shards);
                parts[s].push((user, record));
            }
            // WAL first: one logical append, fanned to the touched shards.
            if self.config.wal.is_some() {
                let mut failed = false;
                let mut rolled = false;
                let mut n_records = 0u64;
                for (i, part) in parts.iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let Some(wal) = &self.shards[i].wal else {
                        continue;
                    };
                    match wal.lock().expect("wal lock").append_batch(seal, part) {
                        Ok(info) => rolled |= info.rolled,
                        Err(_) => failed = true,
                    }
                    n_records += part.len() as u64;
                }
                if failed {
                    tick.append_errors = 1;
                } else {
                    tick.appended_batches = 1;
                    tick.appended_records = n_records;
                    tick.segments_rolled = u64::from(rolled);
                }
            }
            // Engines second, submitted under the sequencer so shard queues
            // stay in seal order.
            for (i, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                match &self.pool {
                    Some(pool) => {
                        let shards = Arc::clone(&self.shards);
                        let rec = Arc::clone(recognize);
                        pending.push(pool.run(i, move || {
                            lock_engine(&shards[i].engine)
                                .ingest_batch_sealed(&part, seal, |p| rec(p))
                        }));
                    }
                    None => {
                        outcome.absorb(&lock_engine(&self.shards[i].engine).ingest_batch_sealed(
                            &part,
                            seal,
                            |p| recognize(p),
                        ));
                    }
                }
            }
        } // sequencer released: the next batch can seal while we wait
        for rx in pending {
            outcome.absorb(&rx.recv().expect("shard ingest job completed"));
        }
        (outcome, tick)
    }

    /// Settles the engine (freeze the clock, drain the shard queues, catch
    /// every shard up) and runs `f` over the per-shard engine guards. The
    /// returned outcome carries whatever the catch-up sweep evicted; the
    /// caller owns folding it into observability counters.
    fn with_settled<T>(
        &self,
        recognize: &Recognizer,
        f: impl FnOnce(&mut [MutexGuard<'_, IngestEngine>]) -> T,
    ) -> (T, BatchOutcome) {
        let clock = self.clock.lock().expect("clock lock");
        let global = *clock;
        if let Some(pool) = &self.pool {
            // Drain: one no-op per shard queue; nothing new can enqueue
            // while we hold the sequencer.
            let barriers: Vec<_> = (0..self.config.shards)
                .map(|i| pool.run(i, || ()))
                .collect();
            for rx in barriers {
                rx.recv().expect("barrier job");
            }
        }
        let mut outcome = BatchOutcome::default();
        let mut guards: Vec<MutexGuard<'_, IngestEngine>> =
            self.shards.iter().map(|s| lock_engine(&s.engine)).collect();
        if let Some(g) = global {
            for guard in &mut guards {
                outcome.absorb(&guard.advance_to(g, |p| recognize(p)));
            }
        }
        (f(&mut guards), outcome)
    }

    /// The merged live transition view — byte-identical across shard
    /// counts for the same logical record stream.
    pub fn live_view(&self, recognize: &Recognizer) -> (LiveView, BatchOutcome) {
        self.with_settled(recognize, |guards| {
            let mut totals = vec![0u64; Category::COUNT * Category::COUNT];
            let mut users = 0usize;
            let mut stays = 0u64;
            let mut late_dropped = 0u64;
            let mut as_of = None;
            for g in guards.iter() {
                for (from, to, c) in g.window().counts() {
                    totals[(from as usize) * Category::COUNT + to as usize] += c;
                }
                users += g.users_len();
                stays += g.stats().stays;
                late_dropped += g.window().late_dropped();
                as_of = as_of.max(g.window().as_of());
            }
            let mut transitions = Vec::new();
            for from in 0..Category::COUNT {
                for to in 0..Category::COUNT {
                    let c = totals[from * Category::COUNT + to];
                    if c > 0 {
                        transitions.push((Category::from_index(from), Category::from_index(to), c));
                    }
                }
            }
            LiveView {
                as_of,
                window_secs: self.config.engine.window.window_secs,
                users,
                stays,
                total: transitions.iter().map(|(_, _, c)| c).sum(),
                late_dropped,
                transitions,
            }
        })
    }

    /// The merged live motif view — byte-identical across shard counts
    /// for the same logical record stream.
    pub fn live_motifs(&self, recognize: &Recognizer) -> (LiveMotifs, BatchOutcome) {
        self.with_settled(recognize, |guards| {
            let mut cells: BTreeMap<u64, MotifCell> = BTreeMap::new();
            let mut oversize = 0u64;
            let mut as_of = None;
            let mut days_closed = 0u64;
            let mut days_oversize = 0u64;
            for g in guards.iter() {
                let (shard_cells, shard_oversize) = g.motifs().in_window();
                for (form, cell) in &shard_cells {
                    cells.entry(*form).or_default().absorb(cell);
                }
                oversize += shard_oversize;
                as_of = as_of.max(g.motifs().as_of());
                days_closed += g.stats().motif_days_closed;
                days_oversize += g.stats().motif_days_oversize;
            }
            LiveMotifs {
                as_of,
                window_days: MOTIF_WINDOW_DAYS,
                days_closed,
                days_oversize,
                table: rank_cells(cells, oversize),
            }
        })
    }

    /// `(tracked users, buffered detector fixes)` across all shards, after
    /// settling — so gauge reads agree with what a single engine would
    /// report at the same clock.
    pub fn gauges(&self, recognize: &Recognizer) -> ((usize, usize), BatchOutcome) {
        self.with_settled(recognize, |guards| {
            let users = guards.iter().map(|g| g.users_len()).sum();
            let buffered = guards.iter().map(|g| g.buffered_fixes()).sum();
            (users, buffered)
        })
    }

    /// Lifetime tallies summed across shards (no settle: tallies are only
    /// moved by batches and settled reads, both of which already account).
    pub fn stats(&self) -> EngineStats {
        let mut out = EngineStats::default();
        for shard in self.shards.iter() {
            let s = lock_engine(&shard.engine).stats();
            out.accepted += s.accepted;
            out.quarantined += s.quarantined;
            out.dropped_non_finite += s.dropped_non_finite;
            out.stays += s.stays;
            out.transitions += s.transitions;
            out.late_transitions += s.late_transitions;
            out.evicted += s.evicted;
            out.stays_shed += s.stays_shed;
            out.motif_days_closed += s.motif_days_closed;
            out.motif_days_oversize += s.motif_days_oversize;
        }
        out
    }

    /// The accumulated `(user, stay)` pairs for re-mining: shard 0's
    /// buffer oldest-first, then shard 1's, and so on. Deterministic for a
    /// given shard count (the merge order is the shard order), settled
    /// first so every flush the clock implies has landed.
    pub fn stays_snapshot(
        &self,
        recognize: &Recognizer,
    ) -> (Vec<(String, StayPoint)>, BatchOutcome) {
        self.with_settled(recognize, |guards| {
            let mut out = Vec::new();
            for g in guards.iter() {
                out.extend(g.stays_snapshot());
            }
            out
        })
    }

    /// Whether any shard's WAL has accumulated enough records since its
    /// last checkpoint that the owner should cut one.
    pub fn should_checkpoint(&self) -> bool {
        self.shards.iter().any(|s| {
            s.wal
                .as_ref()
                .is_some_and(|w| w.lock().expect("wal lock").should_checkpoint())
        })
    }

    /// Checkpoints every shard: drains the queues under the sequencer,
    /// then writes each shard's engine state into its own log. One logical
    /// checkpoint, N durable files. No-op without a WAL.
    pub fn checkpoint_all(&self) -> Result<(), StreamError> {
        let _clock = self.clock.lock().expect("clock lock");
        if let Some(pool) = &self.pool {
            let barriers: Vec<_> = (0..self.config.shards)
                .map(|i| pool.run(i, || ()))
                .collect();
            for rx in barriers {
                rx.recv().expect("barrier job");
            }
        }
        for shard in self.shards.iter() {
            let Some(wal) = &shard.wal else {
                continue;
            };
            let state = lock_engine(&shard.engine).state_bytes();
            wal.lock().expect("wal lock").checkpoint(&state)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.config.shards)
            .field("wal", &self.config.wal.is_some())
            .finish_non_exhaustive()
    }
}

fn lock_engine<'a>(engine: &'a Mutex<IngestEngine>) -> MutexGuard<'a, IngestEngine> {
    engine.lock().expect("shard engine lock")
}

fn absorb_report(into: &mut RecoveryReport, from: &RecoveryReport) {
    into.segments_scanned += from.segments_scanned;
    into.replayed_batches += from.replayed_batches;
    into.replayed_records += from.replayed_records;
    into.torn_frames += from.torn_frames;
    into.corrupt_frames += from.corrupt_frames;
    into.corrupt_checkpoints += from.corrupt_checkpoints;
}

/// Name of the shard-count stamp inside a WAL root directory.
const SHARDS_META: &str = "shards.meta";

/// Creates/validates the WAL root: writes the `shards.meta` stamp on first
/// use, verifies it on reopen, and refuses legacy flat layouts.
fn prepare_wal_root(dir: &std::path::Path, shards: usize) -> Result<(), StreamError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| StreamError::io(format!("create {}: {e}", dir.display())))?;
    // A flat seg-/ckpt- file at the root is a pre-sharding layout; its
    // records were placed by no hash and cannot be fanned out safely.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if (name.starts_with("seg-") && name.ends_with(".wal"))
                || (name.starts_with("ckpt-") && name.ends_with(".walck"))
            {
                return Err(StreamError::config(format!(
                    "WAL dir {} uses the legacy unsharded layout ({name} at the root); \
                     recover it with the release that wrote it, then start a fresh dir",
                    dir.display()
                )));
            }
        }
    }
    let meta_path = dir.join(SHARDS_META);
    match std::fs::read_to_string(&meta_path) {
        Ok(text) => {
            let recorded: Option<usize> = text
                .strip_prefix("pm-shards/1 ")
                .and_then(|rest| rest.trim().parse().ok());
            match recorded {
                Some(n) if n == shards => Ok(()),
                Some(n) => Err(StreamError::config(format!(
                    "WAL dir {} was written with {n} shards, refusing to open with {shards}; \
                     user placement would change and records would replay onto the wrong shards",
                    dir.display()
                ))),
                None => Err(StreamError::corrupt(format!(
                    "unparseable {} in {}",
                    SHARDS_META,
                    dir.display()
                ))),
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(&meta_path, format!("pm-shards/1 {shards}\n"))
                .map_err(|e| StreamError::io(format!("write {}: {e}", meta_path.display())))?;
            Ok(())
        }
        Err(e) => Err(StreamError::io(format!(
            "read {}: {e}",
            meta_path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::StreamParams;
    use crate::window::WindowConfig;
    use pm_core::types::GpsPoint;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pm-sharded-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine_config() -> EngineConfig {
        EngineConfig {
            detector: StreamParams {
                theta_d: 100.0,
                theta_t: 300,
                max_pending: 64,
            },
            window: WindowConfig {
                window_secs: 86_400,
                bucket_secs: 3_600,
            },
            max_users: 1_000,
            user_ttl_secs: 86_400,
            max_stay_buffer: 10_000,
        }
    }

    fn recognizer() -> Recognizer {
        Arc::new(|pos: LocalPoint| {
            if pos.x < 5_000.0 {
                Some(Category::Residence)
            } else {
                Some(Category::Business)
            }
        })
    }

    fn stay(user: &str, x: f64, t: i64) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Stay(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    /// A deterministic interleaved stream: many users, alternating
    /// categories, occasional duplicates (quarantine food).
    fn stream(users: usize, steps: usize) -> Vec<Vec<(String, IngestRecord)>> {
        let mut batches = Vec::new();
        let mut t = 1_000i64;
        for step in 0..steps {
            let mut batch = Vec::new();
            for u in 0..users {
                t += 60;
                let x = if (step + u) % 2 == 0 { 0.0 } else { 9_000.0 };
                batch.push(stay(&format!("user-{u}"), x, t));
                if (step + u) % 5 == 0 {
                    batch.push(stay(&format!("user-{u}"), x, t)); // duplicate
                }
            }
            batches.push(batch);
        }
        batches
    }

    fn run(shards: usize, batches: &[Vec<(String, IngestRecord)>]) -> (LiveView, EngineStats) {
        let recog = recognizer();
        let (engine, _) =
            ShardedEngine::open(ShardConfig::new(shards, engine_config()), &recog).expect("open");
        for batch in batches {
            engine.ingest_batch(batch.clone(), &recog);
        }
        let (view, _) = engine.live_view(&recog);
        (view, engine.stats())
    }

    #[test]
    fn placement_is_stable_and_in_range() {
        for shards in [1, 2, 8, 13] {
            for u in 0..100 {
                let user = format!("user-{u}");
                let s = shard_of(&user, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&user, shards), "stable per user");
            }
        }
        // FNV-1a reference value ("a" -> 0xaf63dc4c8601ec8c).
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn merged_view_is_shard_count_independent() {
        let batches = stream(23, 8);
        let (one, stats_one) = run(1, &batches);
        for shards in [2, 3, 8] {
            let (many, stats_many) = run(shards, &batches);
            assert_eq!(one, many, "live view @ {shards} shards");
            assert_eq!(stats_one, stats_many, "stats @ {shards} shards");
        }
    }

    #[test]
    fn merged_motifs_are_shard_count_independent() {
        // Multi-day per-user streams: every user's day 0 and day 1 close
        // (a later day begins), day 2 stays pending and must not leak into
        // any view. The merged LiveMotifs must not depend on the layout.
        let mut batches = Vec::new();
        for day in 0..3i64 {
            let mut batch = Vec::new();
            for u in 0..17 {
                let base = day * 86_400 + 1_000 + u;
                batch.push(stay(&format!("user-{u}"), 0.0, base));
                if (day + u) % 2 == 0 {
                    batch.push(stay(&format!("user-{u}"), 9_000.0, base + 30_000));
                    batch.push(stay(&format!("user-{u}"), 0.0, base + 60_000));
                }
            }
            batches.push(batch);
        }
        let view = |shards: usize| {
            let recog = recognizer();
            let (engine, _) =
                ShardedEngine::open(ShardConfig::new(shards, engine_config()), &recog)
                    .expect("open");
            for batch in &batches {
                engine.ingest_batch(batch.clone(), &recog);
            }
            let (motifs, _) = engine.live_motifs(&recog);
            (motifs, engine.stats())
        };
        let (one, stats_one) = view(1);
        assert_eq!(one.days_closed, 2 * 17, "two closed days per user");
        assert_eq!(one.table.total_days, 2 * 17);
        assert_eq!(one.table.classes.len(), 2, "loop days and stay-home days");
        for shards in [2, 8] {
            let (many, stats_many) = view(shards);
            assert_eq!(one, many, "live motifs @ {shards} shards");
            assert_eq!(stats_one, stats_many, "stats @ {shards} shards");
        }
    }

    #[test]
    fn ttl_eviction_reconciles_across_shard_counts() {
        // A burst of users, then a single-user batch far past the TTL: in
        // the sharded run only that user's shard sees the batch, so every
        // other shard owes its sweep to the settled read.
        let cfg = engine_config();
        let mut batches = stream(16, 2);
        let last_t = 1_000 + (2 * 16 + 16) * 60 + cfg.user_ttl_secs + 10_000;
        batches.push(vec![stay("late-riser", 0.0, last_t)]);
        let (one, stats_one) = run(1, &batches);
        let (many, stats_many) = run(4, &batches);
        assert_eq!(one.users, 1, "only the late riser survives");
        assert_eq!(one, many);
        assert_eq!(stats_one.evicted, stats_many.evicted);
        assert_eq!(stats_one, stats_many);
    }

    #[test]
    fn wal_recovery_restores_the_merged_state() {
        let dir = scratch("recover");
        let recog = recognizer();
        let batches = stream(12, 5);
        let config = || ShardConfig::new(4, engine_config()).with_wal(WalConfig::new(&dir));
        let reference = {
            let (engine, _) = ShardedEngine::open(ShardConfig::new(4, engine_config()), &recog)
                .expect("open ref");
            for batch in &batches {
                engine.ingest_batch(batch.clone(), &recog);
            }
            engine.live_view(&recog).0
        };
        {
            let (engine, rec) = ShardedEngine::open(config(), &recog).expect("open");
            assert_eq!(rec.report.replayed_batches, 0);
            for (i, batch) in batches.iter().enumerate() {
                engine.ingest_batch(batch.clone(), &recog);
                if i == 2 {
                    engine.checkpoint_all().expect("checkpoint");
                }
            }
        } // kill: drop without checkpointing the tail
        let (engine, rec) = ShardedEngine::open(config(), &recog).expect("reopen");
        assert_eq!(rec.checkpoints_restored, 4, "every shard had a checkpoint");
        assert!(rec.report.replayed_batches > 0, "the tail replays");
        assert_eq!(engine.live_view(&recog).0, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_mismatch_is_a_loud_error() {
        let dir = scratch("mismatch");
        let recog = recognizer();
        {
            let cfg = ShardConfig::new(4, engine_config()).with_wal(WalConfig::new(&dir));
            let _ = ShardedEngine::open(cfg, &recog).expect("open @4");
        }
        let cfg = ShardConfig::new(8, engine_config()).with_wal(WalConfig::new(&dir));
        let err = ShardedEngine::open(cfg, &recog).expect_err("must refuse");
        assert!(err.to_string().contains("4 shards"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_flat_layout_is_refused() {
        let dir = scratch("legacy");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("seg-00000001.wal"), b"PMWAL01\n").expect("seed");
        let recog = recognizer();
        let cfg = ShardConfig::new(2, engine_config()).with_wal(WalConfig::new(&dir));
        let err = ShardedEngine::open(cfg, &recog).expect_err("must refuse");
        assert!(err.to_string().contains("legacy"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharding_requires_ttl_to_cover_the_window() {
        let mut cfg = engine_config();
        cfg.user_ttl_secs = cfg.window.window_secs - 1;
        assert!(ShardConfig::new(2, cfg).validate().is_err());
        assert!(
            ShardConfig::new(1, cfg).validate().is_ok(),
            "1 shard is eager"
        );
    }

    #[test]
    fn budgets_split_per_shard() {
        let cfg = ShardConfig::new(3, engine_config());
        let per = cfg.shard_engine_config();
        assert_eq!(per.max_users, 334);
        assert_eq!(per.max_stay_buffer, 3_334);
    }
}
