//! Typed failure taxonomy of the streaming layer, matching the PR-1 rule:
//! bad configuration or bad data is an `Err`, never a panic.

use std::fmt;

/// Why a streaming component could not be built or driven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A configuration value fails validation; the message names it.
    BadConfig { message: String },
    /// A write-ahead-log filesystem operation failed; the message carries
    /// the OS error and the path involved (stringified so the error stays
    /// `Clone + PartialEq` like the rest of the taxonomy).
    Io { message: String },
    /// Persisted bytes (a checkpoint or an engine state blob) failed
    /// structural validation — bad magic, impossible lengths, CRC mismatch.
    Corrupt { context: String },
}

impl StreamError {
    pub(crate) fn config(message: impl Into<String>) -> StreamError {
        StreamError::BadConfig {
            message: message.into(),
        }
    }

    pub(crate) fn io(message: impl Into<String>) -> StreamError {
        StreamError::Io {
            message: message.into(),
        }
    }

    pub(crate) fn corrupt(context: impl Into<String>) -> StreamError {
        StreamError::Corrupt {
            context: context.into(),
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::BadConfig { message } => write!(f, "bad stream config: {message}"),
            StreamError::Io { message } => write!(f, "wal io: {message}"),
            StreamError::Corrupt { context } => write!(f, "corrupt stream state: {context}"),
        }
    }
}

impl std::error::Error for StreamError {}
