//! Typed failure taxonomy of the streaming layer, matching the PR-1 rule:
//! bad configuration or bad data is an `Err`, never a panic.

use std::fmt;

/// Why a streaming component could not be built or driven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A configuration value fails validation; the message names it.
    BadConfig { message: String },
}

impl StreamError {
    pub(crate) fn config(message: impl Into<String>) -> StreamError {
        StreamError::BadConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::BadConfig { message } => write!(f, "bad stream config: {message}"),
        }
    }
}

impl std::error::Error for StreamError {}
