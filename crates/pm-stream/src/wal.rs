//! Crash-safe write-ahead log for the ingestion engine.
//!
//! Every ingested batch is appended to a **segmented, CRC-framed log**
//! before it reaches the engine; periodically the engine's full state
//! ([`crate::IngestEngine::state_bytes`]) is written as a **checkpoint**
//! and the segments it covers are garbage-collected. On startup
//! [`Wal::open`] recovers the newest valid checkpoint plus every cleanly
//! framed batch after it, so a process killed mid-stream resumes with
//! byte-identical engine state for the durably-logged prefix.
//!
//! # On-disk layout
//!
//! A WAL directory holds two kinds of files:
//!
//! - `seg-<seq>.wal` — an 8-byte magic (`PMWAL02\n`) followed by frames
//!   `[payload len: u32 LE][crc32(payload): u32 LE][payload]`. One frame is
//!   one ingested batch; the payload is the batch's **sealed clock** (the
//!   global event clock the batch was ingested under — see
//!   [`crate::IngestEngine::ingest_batch_sealed`]) followed by a
//!   little-endian record list (user id, fix/stay kind, x/y as IEEE-754
//!   bits, timestamp). Recording the seal matters for sharded engines: a
//!   shard's sub-batch must replay under the clock the *whole* logical
//!   batch established, which the shard's own records cannot reconstruct.
//! - `ckpt-<seq>.walck` — the same magic + one CRC frame whose payload is
//!   an engine state blob. The `<seq>` names the **next** segment: the
//!   state already covers every segment numbered below it.
//!
//! # Recovery policy: the longest clean prefix
//!
//! Replay walks segments in sequence order and stops at the **first**
//! frame that is torn (truncated mid-frame — the expected `kill -9`
//! signature) or corrupt (CRC mismatch, impossible length). Everything
//! before that point is returned; nothing after it is trusted, because a
//! gap would otherwise silently reorder history. Both conditions are
//! counted separately in the [`RecoveryReport`] so operators can tell a
//! routine torn tail from real corruption.
//!
//! Appends never reuse a recovered segment: each process generation starts
//! a fresh segment above every sequence number it has seen, so a torn tail
//! can never be appended *through*.
//!
//! # Durability policy
//!
//! Checkpoints are written atomically (temp file + fsync + rename + parent
//! directory fsync). Batch appends reach the OS page cache immediately —
//! which survives process death, the failure mode this log is built for —
//! and are additionally fsynced when [`WalConfig::sync_on_append`] is set
//! (machine-crash durability at a per-batch latency cost).

use crate::engine::IngestRecord;
use crate::error::StreamError;
use pm_core::types::{GpsPoint, Timestamp};
use pm_geo::LocalPoint;
use pm_store::bytes::{ByteReader, ByteWriter};
use pm_store::crc::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every WAL file (segments and checkpoints alike).
/// `PMWAL02` added the per-batch sealed clock; v1 logs are not readable
/// (their segments fail the magic check and recover as torn-at-zero).
const WAL_MAGIC: &[u8; 8] = b"PMWAL02\n";

/// Upper bound on one frame's payload; a length field above this is
/// corruption, not a batch (the serve layer caps request bodies at 1 MiB,
/// so real frames sit far below).
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Shape of one write-ahead log.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and checkpoints; created if missing.
    pub dir: PathBuf,
    /// Roll to a new segment once the current one reaches this size.
    pub segment_max_bytes: u64,
    /// [`Wal::should_checkpoint`] turns true after this many appended
    /// records (the owner decides when to actually cut one).
    pub checkpoint_every_records: u64,
    /// Fsync after every append (machine-crash durability) instead of only
    /// at checkpoints and segment rolls (process-crash durability).
    pub sync_on_append: bool,
}

impl WalConfig {
    /// A sensible default shape rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 16 * 1024 * 1024,
            checkpoint_every_records: 50_000,
            sync_on_append: false,
        }
    }

    /// Rejects shapes that cannot run.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.segment_max_bytes == 0 {
            return Err(StreamError::config("segment_max_bytes must be positive"));
        }
        if self.checkpoint_every_records == 0 {
            return Err(StreamError::config(
                "checkpoint_every_records must be positive",
            ));
        }
        Ok(())
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files scanned (whether or not fully replayed).
    pub segments_scanned: u64,
    /// Cleanly framed batches replayed.
    pub replayed_batches: u64,
    /// Records inside those batches.
    pub replayed_records: u64,
    /// Frames abandoned for mid-frame truncation (the `kill -9` tail).
    pub torn_frames: u64,
    /// Frames abandoned for CRC mismatch or impossible length.
    pub corrupt_frames: u64,
    /// Checkpoint files that failed validation and were skipped.
    pub corrupt_checkpoints: u64,
}

/// One logged batch: the records plus the sealed clock they were ingested
/// under (see [`crate::IngestEngine::ingest_batch_sealed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SealedBatch {
    /// The global event clock sealed for this batch.
    pub seal: Timestamp,
    /// The batch's records, in ingest order.
    pub records: Vec<(String, IngestRecord)>,
}

/// Everything recovered from the directory: the newest valid engine state
/// checkpoint (if any), the clean batches appended after it, and tallies.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Engine state bytes from the newest valid checkpoint.
    pub checkpoint: Option<Vec<u8>>,
    /// Sealed batches after the checkpoint, in append order.
    pub batches: Vec<SealedBatch>,
    /// What the scan saw.
    pub report: RecoveryReport,
}

/// What one append did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendInfo {
    /// Payload + framing bytes written.
    pub bytes: u64,
    /// Whether the append closed a segment that hit the size bound and
    /// rolled to a fresh one. Opening the *first* segment of a process
    /// generation does not count: that would inflate roll tallies N-fold
    /// under N-shard WAL fan-out without any segment actually filling.
    pub rolled: bool,
}

/// A segmented, CRC-framed write-ahead log rooted in one directory.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    /// The open segment, if any: `(seq, file, bytes written)`. Opened
    /// lazily so checkpoints never leave empty segments behind.
    active: Option<(u64, File, u64)>,
    /// Sequence number the next new segment will take.
    next_seq: u64,
    /// Records appended since the last checkpoint (or open).
    records_since_checkpoint: u64,
}

impl Wal {
    /// Opens (creating if needed) the log at `config.dir` and recovers its
    /// contents: the newest valid checkpoint and every cleanly framed batch
    /// after it, in order. Appends then start a fresh segment numbered
    /// above everything seen.
    pub fn open(config: WalConfig) -> Result<(Wal, Recovery), StreamError> {
        config.validate()?;
        fs::create_dir_all(&config.dir)
            .map_err(|e| StreamError::io(format!("create {}: {e}", config.dir.display())))?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        let mut checkpoints: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&config.dir)
            .map_err(|e| StreamError::io(format!("read {}: {e}", config.dir.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| StreamError::io(format!("scan {}: {e}", config.dir.display())))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = parse_numbered(name, "seg-", ".wal") {
                segments.push((seq, path));
            } else if let Some(seq) = parse_numbered(name, "ckpt-", ".walck") {
                checkpoints.push((seq, path));
            }
        }
        segments.sort_unstable_by_key(|(seq, _)| *seq);
        checkpoints.sort_unstable_by_key(|(seq, _)| *seq);

        let mut report = RecoveryReport::default();
        // Newest checkpoint that actually validates wins; broken ones are
        // skipped (counted), falling back to older state plus more replay.
        let mut checkpoint = None;
        let mut replay_from = 0u64;
        for (seq, path) in checkpoints.iter().rev() {
            match read_checkpoint(path) {
                Ok(state) => {
                    checkpoint = Some(state);
                    replay_from = *seq;
                    break;
                }
                Err(_) => report.corrupt_checkpoints += 1,
            }
        }

        let mut batches = Vec::new();
        let mut clean = true;
        for (seq, path) in &segments {
            if *seq < replay_from {
                continue; // covered by the checkpoint
            }
            report.segments_scanned += 1;
            if !clean {
                continue; // past the first bad frame: untrusted
            }
            clean = replay_segment(path, &mut batches, &mut report)?;
        }
        report.replayed_batches = batches.len() as u64;
        report.replayed_records = batches.iter().map(|b| b.records.len() as u64).sum();

        let max_seen = segments
            .last()
            .map(|(s, _)| *s)
            .unwrap_or(0)
            .max(checkpoints.last().map(|(s, _)| *s).unwrap_or(0));
        let wal = Wal {
            config,
            active: None,
            next_seq: max_seen + 1,
            records_since_checkpoint: 0,
        };
        Ok((
            wal,
            Recovery {
                checkpoint,
                batches,
                report,
            },
        ))
    }

    /// Appends one sealed batch as a single CRC frame. The batch is in the
    /// OS page cache when this returns (on disk too if `sync_on_append`).
    pub fn append_batch(
        &mut self,
        seal: Timestamp,
        records: &[(String, IngestRecord)],
    ) -> Result<AppendInfo, StreamError> {
        let payload = encode_batch(seal, records);
        let frame_len = 8 + payload.len() as u64;
        let mut rolled = false;
        if let Some((_, _, bytes)) = &self.active {
            if bytes + frame_len > self.config.segment_max_bytes {
                self.close_active(true)?;
                rolled = true;
            }
        }
        if self.active.is_none() {
            self.open_segment()?;
        }
        let (_, file, bytes) = self.active.as_mut().expect("segment opened above");
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        file.write_all(&frame)
            .map_err(|e| StreamError::io(format!("append: {e}")))?;
        *bytes += frame_len;
        if self.config.sync_on_append {
            file.sync_data()
                .map_err(|e| StreamError::io(format!("sync append: {e}")))?;
        }
        self.records_since_checkpoint += records.len() as u64;
        Ok(AppendInfo {
            bytes: frame_len,
            rolled,
        })
    }

    /// Whether enough records have accumulated since the last checkpoint
    /// that the owner should cut one.
    pub fn should_checkpoint(&self) -> bool {
        self.records_since_checkpoint >= self.config.checkpoint_every_records
    }

    /// Records appended since the last checkpoint (or open).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Cuts a checkpoint: durably writes `state` (atomic temp file, fsync,
    /// rename), then garbage-collects every segment and checkpoint it
    /// supersedes. `state` must cover everything appended so far — callers
    /// pass the engine's [`crate::IngestEngine::state_bytes`] taken under
    /// the same lock as their appends.
    pub fn checkpoint(&mut self, state: &[u8]) -> Result<(), StreamError> {
        // The checkpoint is named by the *next* segment sequence: it covers
        // every segment below it, including the one being closed now.
        self.close_active(true)?;
        let seq = self.next_seq;
        let final_path = self.config.dir.join(format!("ckpt-{seq:08}.walck"));
        let tmp_path = self.config.dir.join(format!("ckpt-{seq:08}.walck.tmp"));
        let mut payload = Vec::with_capacity(16 + state.len());
        payload.extend_from_slice(WAL_MAGIC);
        payload.extend_from_slice(&(state.len() as u32).to_le_bytes());
        payload.extend_from_slice(&crc32(state).to_le_bytes());
        payload.extend_from_slice(state);
        let mut tmp = File::create(&tmp_path)
            .map_err(|e| StreamError::io(format!("create {}: {e}", tmp_path.display())))?;
        tmp.write_all(&payload)
            .and_then(|()| tmp.sync_all())
            .map_err(|e| StreamError::io(format!("write {}: {e}", tmp_path.display())))?;
        drop(tmp);
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| StreamError::io(format!("rename {}: {e}", final_path.display())))?;
        sync_dir(&self.config.dir)?;
        self.records_since_checkpoint = 0;
        // GC: everything the new checkpoint covers. Failures here are
        // ignored — stale files only cost disk and are re-collected later.
        if let Ok(entries) = fs::read_dir(&self.config.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                let covered = parse_numbered(name, "seg-", ".wal").is_some_and(|s| s < seq)
                    || parse_numbered(name, "ckpt-", ".walck").is_some_and(|s| s < seq);
                if covered {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        Ok(())
    }

    /// Flushes the active segment to disk (fsync). A no-op without one.
    pub fn sync(&mut self) -> Result<(), StreamError> {
        if let Some((_, file, _)) = &mut self.active {
            file.sync_data()
                .map_err(|e| StreamError::io(format!("sync: {e}")))?;
        }
        Ok(())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    fn open_segment(&mut self) -> Result<(), StreamError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = self.config.dir.join(format!("seg-{seq:08}.wal"));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| StreamError::io(format!("create {}: {e}", path.display())))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| StreamError::io(format!("write {}: {e}", path.display())))?;
        self.active = Some((seq, file, WAL_MAGIC.len() as u64));
        Ok(())
    }

    fn close_active(&mut self, sync: bool) -> Result<(), StreamError> {
        if let Some((_, file, _)) = self.active.take() {
            if sync {
                file.sync_all()
                    .map_err(|e| StreamError::io(format!("sync segment: {e}")))?;
            }
        }
        Ok(())
    }
}

/// `prefix<number>suffix` → the number.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> Result<(), StreamError> {
    // Directory fsync makes the rename itself durable. Unix-only; other
    // platforms get rename atomicity without directory durability.
    #[cfg(unix)]
    {
        let d =
            File::open(dir).map_err(|e| StreamError::io(format!("open {}: {e}", dir.display())))?;
        d.sync_all()
            .map_err(|e| StreamError::io(format!("sync {}: {e}", dir.display())))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn encode_batch(seal: Timestamp, records: &[(String, IngestRecord)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.i64(seal);
    w.count(records.len());
    for (user, record) in records {
        let name = user.as_bytes();
        w.u16(name.len().min(u16::MAX as usize) as u16);
        w.bytes(&name[..name.len().min(u16::MAX as usize)]);
        let (kind, p) = match record {
            IngestRecord::Fix(p) => (0u8, p),
            IngestRecord::Stay(p) => (1u8, p),
        };
        w.u8(kind);
        w.f64(p.pos.x);
        w.f64(p.pos.y);
        w.i64(p.time);
    }
    w.into_bytes()
}

fn decode_batch(payload: &[u8]) -> Result<SealedBatch, StreamError> {
    let corrupt = |e: pm_store::StoreError| StreamError::corrupt(e.to_string());
    let mut r = ByteReader::new(payload);
    let seal = r.i64("wal batch seal").map_err(corrupt)?;
    let n = r.count(27, "wal batch records").map_err(corrupt)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = r.u16("wal record user length").map_err(corrupt)? as usize;
        let user = String::from_utf8(
            r.bytes(name_len, "wal record user")
                .map_err(corrupt)?
                .to_vec(),
        )
        .map_err(|_| StreamError::corrupt("wal record user is not UTF-8"))?;
        let kind = r.u8("wal record kind").map_err(corrupt)?;
        let x = r.f64("wal record x").map_err(corrupt)?;
        let y = r.f64("wal record y").map_err(corrupt)?;
        let t = r.i64("wal record time").map_err(corrupt)?;
        let point = GpsPoint::new(LocalPoint::new(x, y), t);
        let record = match kind {
            0 => IngestRecord::Fix(point),
            1 => IngestRecord::Stay(point),
            k => {
                return Err(StreamError::corrupt(format!(
                    "wal record kind {k} is neither fix nor stay"
                )))
            }
        };
        out.push((user, record));
    }
    r.finish("wal batch").map_err(corrupt)?;
    Ok(SealedBatch { seal, records: out })
}

/// Replays one segment. Returns `true` when the whole segment framed
/// cleanly, `false` (after counting the reason) at the first bad frame.
fn replay_segment(
    path: &Path,
    batches: &mut Vec<SealedBatch>,
    report: &mut RecoveryReport,
) -> Result<bool, StreamError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StreamError::io(format!("read {}: {e}", path.display())))?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // A segment without its magic never completed its first write (or
        // was overwritten): treat as torn at offset zero.
        report.torn_frames += 1;
        return Ok(false);
    }
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            report.torn_frames += 1;
            return Ok(false);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len as u32 > MAX_FRAME_BYTES {
            report.corrupt_frames += 1;
            return Ok(false);
        }
        if bytes.len() - pos - 8 < len {
            report.torn_frames += 1;
            return Ok(false);
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            report.corrupt_frames += 1;
            return Ok(false);
        }
        match decode_batch(payload) {
            Ok(batch) => batches.push(batch),
            Err(_) => {
                // CRC matched but the payload doesn't parse: corruption
                // that happens to preserve the checksum, or a format skew.
                report.corrupt_frames += 1;
                return Ok(false);
            }
        }
        pos += 8 + len;
    }
    Ok(true)
}

/// Reads and validates one checkpoint file, returning the state payload.
fn read_checkpoint(path: &Path) -> Result<Vec<u8>, StreamError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StreamError::io(format!("read {}: {e}", path.display())))?;
    let header = WAL_MAGIC.len() + 8;
    if bytes.len() < header || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StreamError::corrupt("checkpoint header"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if len as u32 > MAX_FRAME_BYTES || bytes.len() != header + len {
        return Err(StreamError::corrupt("checkpoint length"));
    }
    let state = &bytes[header..];
    if crc32(state) != crc {
        return Err(StreamError::corrupt("checkpoint crc"));
    }
    Ok(state.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    /// A fresh, empty directory unique to this test run.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pm-wal-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn fix(user: &str, x: f64, t: i64) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Fix(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    fn stay(user: &str, x: f64, t: i64) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Stay(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    #[test]
    fn empty_dir_recovers_nothing() {
        let dir = scratch("empty");
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("open");
        assert!(rec.checkpoint.is_none());
        assert!(rec.batches.is_empty());
        assert_eq!(rec.report, RecoveryReport::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batches_roundtrip_across_reopen() {
        let dir = scratch("roundtrip");
        let b1 = vec![fix("alice", 1.5, 100), stay("bob", -2.0, 200)];
        let b2 = vec![fix("alice", f64::NAN, 300)]; // NaN bits survive
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(200, &b1).expect("append");
            wal.append_batch(300, &b2).expect("append");
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].seal, 200);
        assert_eq!(rec.batches[0].records, b1);
        assert_eq!(rec.report.replayed_records, 3);
        // NaN position: compare bits, not values.
        assert_eq!(rec.batches[1].seal, 300);
        match rec.batches[1].records[0].1 {
            IngestRecord::Fix(p) => assert!(p.pos.x.is_nan()),
            _ => panic!("kind changed"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_gcs_covered_segments_and_restores_state() {
        let dir = scratch("ckpt");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(1, &[fix("u", 0.0, 1)]).expect("append");
            wal.checkpoint(b"engine-state-1").expect("checkpoint");
            wal.append_batch(2, &[fix("u", 0.0, 2)]).expect("append");
        }
        let segs = fs::read_dir(&dir)
            .expect("ls")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .count();
        assert_eq!(segs, 1, "covered segment was collected");
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(rec.checkpoint.as_deref(), Some(&b"engine-state-1"[..]));
        assert_eq!(rec.batches.len(), 1, "only the post-checkpoint batch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_checkpoint_wins_and_corrupt_ones_fall_back() {
        let dir = scratch("ckpt-fallback");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(1, &[fix("u", 0.0, 1)]).expect("append");
            wal.checkpoint(b"state-old").expect("checkpoint");
            wal.append_batch(2, &[fix("u", 0.0, 2)]).expect("append");
            wal.checkpoint(b"state-new").expect("checkpoint");
            wal.append_batch(3, &[fix("u", 0.0, 3)]).expect("append");
        }
        // Corrupt the newest checkpoint: recovery must fall back to the
        // older one — except GC already removed it, so fall back to empty.
        let newest = fs::read_dir(&dir)
            .expect("ls")
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("ckpt-"))
            })
            .max()
            .expect("a checkpoint");
        let mut bytes = fs::read(&newest).expect("read ckpt");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).expect("rewrite ckpt");
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert!(rec.checkpoint.is_none(), "corrupt checkpoint skipped");
        assert_eq!(rec.report.corrupt_checkpoints, 1);
        // With no usable checkpoint, replay starts from the oldest segment
        // still on disk — the post-"state-new" one only, since older
        // segments were GC'd by the (now corrupt) checkpoint.
        assert_eq!(rec.batches.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_the_clean_prefix() {
        let dir = scratch("torn");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            wal.append_batch(1, &[fix("u", 0.0, 1)]).expect("append");
            wal.append_batch(2, &[fix("u", 0.0, 2)]).expect("append");
        }
        let seg = fs::read_dir(&dir)
            .expect("ls")
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
            })
            .expect("a segment");
        let bytes = fs::read(&seg).expect("read");
        // Chop mid-way through the second frame: the kill -9 signature.
        fs::write(&seg, &bytes[..bytes.len() - 5]).expect("truncate");
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(rec.batches.len(), 1, "first frame survives");
        assert_eq!(rec.report.torn_frames, 1);
        assert_eq!(rec.report.corrupt_frames, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_stops_replay_at_the_bad_frame() {
        let dir = scratch("bitflip");
        {
            let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
            for t in 1..=3 {
                wal.append_batch(t, &[fix("user-with-a-long-name", 0.0, t)])
                    .expect("append");
            }
        }
        let seg = fs::read_dir(&dir)
            .expect("ls")
            .flatten()
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
            })
            .expect("a segment");
        let mut bytes = fs::read(&seg).expect("read");
        // Flip a payload byte inside the second frame (magic 8 + frame of
        // equal sizes): land safely inside its payload.
        let frame = (bytes.len() - 8) / 3;
        let target = 8 + frame + 20;
        bytes[target] ^= 0x01;
        fs::write(&seg, &bytes).expect("rewrite");
        let (_, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
        assert_eq!(rec.batches.len(), 1, "replay stops at the flipped frame");
        assert_eq!(rec.report.corrupt_frames, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        let dir = scratch("roll");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_max_bytes = 128;
        let (mut wal, _) = Wal::open(cfg.clone()).expect("open");
        let mut rolls = 0;
        for t in 0..10 {
            let info = wal.append_batch(t, &[fix("u", 0.0, t)]).expect("append");
            if info.rolled {
                rolls += 1;
            }
        }
        assert!(rolls > 1, "small segments must roll");
        drop(wal);
        let (_, rec) = Wal::open(cfg).expect("reopen");
        assert_eq!(rec.batches.len(), 10, "all batches recovered across rolls");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn should_checkpoint_tracks_record_count() {
        let dir = scratch("thresh");
        let mut cfg = WalConfig::new(&dir);
        cfg.checkpoint_every_records = 3;
        let (mut wal, _) = Wal::open(cfg).expect("open");
        wal.append_batch(2, &[fix("u", 0.0, 1), fix("u", 0.0, 2)])
            .expect("append");
        assert!(!wal.should_checkpoint());
        wal.append_batch(3, &[fix("u", 0.0, 3)]).expect("append");
        assert!(wal.should_checkpoint());
        wal.checkpoint(b"s").expect("checkpoint");
        assert!(!wal.should_checkpoint());
        assert_eq!(wal.records_since_checkpoint(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation() {
        let mut cfg = WalConfig::new("/tmp/x");
        cfg.segment_max_bytes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = WalConfig::new("/tmp/x");
        cfg.checkpoint_every_records = 0;
        assert!(cfg.validate().is_err());
    }
}
