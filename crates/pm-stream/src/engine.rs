//! The multi-user ingestion engine: per-user detectors, live recognition,
//! transition aggregation, and deterministic eviction.
//!
//! One [`IngestEngine`] owns a map of per-user [`StayPointDetector`]s plus
//! one shared [`TransitionWindow`]. Callers feed batches of records tagged
//! with a user id; the engine:
//!
//! 1. admits each record through the per-user ordering clock (stale
//!    timestamps are quarantined, mirroring pm-io's quarantine lane);
//! 2. routes GPS fixes through incremental detection, or accepts
//!    pre-detected stays directly (the taxi regime of §5, where pick-up and
//!    drop-off records *are* the stay points);
//! 3. recognizes every emitted stay through the caller-supplied closure —
//!    pm-serve passes the current snapshot's vote, so a hot-swapped
//!    artifact takes effect without touching detector state;
//! 4. records `previous primary → current primary` transitions per user
//!    into the sliding window (untagged stays are counted but neither emit
//!    nor reset a transition);
//! 5. evicts users idle longer than `user_ttl_secs` of *event time*, and
//!    the stalest users when `max_users` would be exceeded — flushing their
//!    detectors first so end-of-stream stays are not lost. Eviction order
//!    is deterministic: `(last_seen, user id)` ascending.
//!
//! The engine never consults a wall clock; replaying the same records gives
//! the same stays, window, and evictions.

use crate::detector::{FixStatus, StayPointDetector, StreamParams};
use crate::error::StreamError;
use crate::window::{TransitionWindow, WindowConfig};
use pm_core::params::MinerParams;
use pm_core::types::{Category, GpsPoint, StayPoint, Timestamp};
use pm_geo::LocalPoint;
use std::collections::HashMap;

/// Shape of one ingestion engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Per-user detection thresholds.
    pub detector: StreamParams,
    /// Transition-window shape.
    pub window: WindowConfig,
    /// Hard cap on concurrently tracked users.
    pub max_users: usize,
    /// Users idle this long (event time) are evicted after a batch.
    pub user_ttl_secs: Timestamp,
}

impl EngineConfig {
    /// An engine matching a mined artifact's thresholds.
    pub fn from_miner(params: &MinerParams) -> EngineConfig {
        EngineConfig {
            detector: StreamParams::from_miner(params),
            window: WindowConfig::default(),
            max_users: 100_000,
            user_ttl_secs: 7 * 24 * 3600,
        }
    }

    /// Rejects shapes that cannot run.
    pub fn validate(&self) -> Result<(), StreamError> {
        self.detector.validate()?;
        self.window.validate()?;
        if self.max_users == 0 {
            return Err(StreamError::config("max_users must be positive"));
        }
        if self.user_ttl_secs <= 0 {
            return Err(StreamError::config(format!(
                "user_ttl_secs {} must be positive",
                self.user_ttl_secs
            )));
        }
        Ok(())
    }
}

/// One ingested record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestRecord {
    /// A raw GPS fix, routed through incremental stay-point detection.
    Fix(GpsPoint),
    /// A pre-detected stay (position + time), bypassing detection — the
    /// journey-log regime where pick-ups/drop-offs are already stays.
    Stay(GpsPoint),
}

impl IngestRecord {
    fn point(&self) -> GpsPoint {
        match self {
            IngestRecord::Fix(p) | IngestRecord::Stay(p) => *p,
        }
    }
}

/// What one batch did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Records admitted (fixes into detection, stays into aggregation).
    pub accepted: u64,
    /// Records quarantined for out-of-order timestamps.
    pub quarantined: u64,
    /// Records dropped for non-finite coordinates.
    pub dropped_non_finite: u64,
    /// Stay points emitted (detected or direct).
    pub stays: u64,
    /// Transitions recorded into the window.
    pub transitions: u64,
    /// Transitions dropped for being older than the window.
    pub late_transitions: u64,
    /// Users evicted (capacity or TTL).
    pub evicted: u64,
}

/// Cumulative engine tallies — the pm-obs counter sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub accepted: u64,
    pub quarantined: u64,
    pub dropped_non_finite: u64,
    pub stays: u64,
    pub transitions: u64,
    pub late_transitions: u64,
    pub evicted: u64,
}

impl EngineStats {
    fn absorb(&mut self, o: &BatchOutcome) {
        self.accepted += o.accepted;
        self.quarantined += o.quarantined;
        self.dropped_non_finite += o.dropped_non_finite;
        self.stays += o.stays;
        self.transitions += o.transitions;
        self.late_transitions += o.late_transitions;
        self.evicted += o.evicted;
    }
}

#[derive(Debug)]
struct UserState {
    detector: StayPointDetector,
    /// Primary category of the user's last recognized stay.
    last_primary: Option<Category>,
    /// Last admitted event time — the eviction key.
    last_seen: Timestamp,
}

/// The multi-user streaming front door.
#[derive(Debug)]
pub struct IngestEngine {
    config: EngineConfig,
    users: HashMap<String, UserState>,
    window: TransitionWindow,
    /// Maximum admitted event time across all users.
    clock: Option<Timestamp>,
    stats: EngineStats,
}

impl IngestEngine {
    /// An empty engine.
    pub fn new(config: EngineConfig) -> Result<IngestEngine, StreamError> {
        config.validate()?;
        Ok(IngestEngine {
            window: TransitionWindow::new(config.window)?,
            config,
            users: HashMap::new(),
            clock: None,
            stats: EngineStats::default(),
        })
    }

    /// Ingests one batch in order. `recognize` maps a stay position onto
    /// its primary category (pm-serve passes the current snapshot's vote);
    /// it is looked up per emitted stay, never cached across batches.
    pub fn ingest_batch<R>(
        &mut self,
        records: &[(String, IngestRecord)],
        recognize: R,
    ) -> BatchOutcome
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let mut outcome = BatchOutcome::default();
        for (user, record) in records {
            self.process(user, record, &recognize, &mut outcome);
        }
        self.evict_stale(&recognize, &mut outcome);
        self.stats.absorb(&outcome);
        outcome
    }

    /// Currently tracked users.
    pub fn users_len(&self) -> usize {
        self.users.len()
    }

    /// Fixes buffered across all per-user detectors.
    pub fn buffered_fixes(&self) -> usize {
        self.users.values().map(|s| s.detector.pending_len()).sum()
    }

    /// The shared transition window.
    pub fn window(&self) -> &TransitionWindow {
        &self.window
    }

    /// Cumulative tallies.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine-wide event clock.
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock
    }

    /// The shape this engine runs with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    fn process<R>(
        &mut self,
        user: &str,
        record: &IngestRecord,
        recognize: &R,
        outcome: &mut BatchOutcome,
    ) where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let point = record.point();
        if !self.users.contains_key(user) {
            while self.users.len() >= self.config.max_users {
                self.evict_one(recognize, outcome);
            }
            self.users.insert(
                user.to_string(),
                UserState {
                    detector: StayPointDetector::new(self.config.detector),
                    last_primary: None,
                    last_seen: point.time,
                },
            );
        }
        let mut emitted = Vec::new();
        let admitted = {
            let state = match self.users.get_mut(user) {
                Some(s) => s,
                None => return, // unreachable: inserted above
            };
            match record {
                IngestRecord::Fix(p) => match state.detector.push(*p, &mut emitted) {
                    FixStatus::Accepted => {
                        outcome.accepted += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    }
                    FixStatus::OutOfOrder => {
                        outcome.quarantined += 1;
                        false
                    }
                    FixStatus::NonFinite => {
                        outcome.dropped_non_finite += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    }
                },
                IngestRecord::Stay(p) => {
                    if !state.detector.admit_time(p.time) {
                        outcome.quarantined += 1;
                        false
                    } else if !(p.pos.x.is_finite() && p.pos.y.is_finite()) {
                        outcome.dropped_non_finite += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    } else {
                        outcome.accepted += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        emitted.push(StayPoint::untagged(p.pos, p.time));
                        true
                    }
                }
            }
        };
        if admitted {
            self.clock = Some(self.clock.map_or(point.time, |c| c.max(point.time)));
        }
        if !emitted.is_empty() {
            let prev = self.users.get(user).and_then(|s| s.last_primary);
            let last = self.settle(prev, &emitted, recognize, outcome);
            if let Some(state) = self.users.get_mut(user) {
                state.last_primary = last;
            }
        }
    }

    /// Recognizes emitted stays and records per-user transitions. Returns
    /// the user's new `last_primary`.
    fn settle<R>(
        &mut self,
        mut prev: Option<Category>,
        stays: &[StayPoint],
        recognize: &R,
        outcome: &mut BatchOutcome,
    ) -> Option<Category>
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        for sp in stays {
            outcome.stays += 1;
            let Some(cur) = recognize(sp.pos) else {
                // Unrecognized ground: counted as a stay, but it neither
                // forms nor resets a transition edge.
                continue;
            };
            if let Some(p) = prev {
                if self.window.record(p, cur, sp.time) {
                    outcome.transitions += 1;
                } else {
                    outcome.late_transitions += 1;
                }
            }
            prev = Some(cur);
        }
        prev
    }

    /// Evicts the stalest user — deterministic tie-break on the user id.
    fn evict_one<R>(&mut self, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let victim = self
            .users
            .iter()
            .min_by(|(ka, a), (kb, b)| (a.last_seen, ka.as_str()).cmp(&(b.last_seen, kb.as_str())))
            .map(|(k, _)| k.clone());
        if let Some(key) = victim {
            self.remove_user(&key, recognize, outcome);
        }
    }

    /// Evicts every user idle past the TTL, in deterministic order.
    fn evict_stale<R>(&mut self, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let Some(clock) = self.clock else {
            return;
        };
        let cutoff = clock.saturating_sub(self.config.user_ttl_secs);
        let mut stale: Vec<String> = self
            .users
            .iter()
            .filter(|(_, s)| s.last_seen < cutoff)
            .map(|(k, _)| k.clone())
            .collect();
        stale.sort_unstable();
        for key in stale {
            self.remove_user(&key, recognize, outcome);
        }
    }

    /// Flushes and drops one user; end-of-stream stays settle normally.
    fn remove_user<R>(&mut self, key: &str, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let Some(mut state) = self.users.remove(key) else {
            return;
        };
        let mut tail = Vec::new();
        state.detector.flush(&mut tail);
        self.settle(state.last_primary, &tail, recognize, outcome);
        outcome.evicted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EngineConfig {
        EngineConfig {
            detector: StreamParams {
                theta_d: 100.0,
                theta_t: 300,
                max_pending: 64,
            },
            window: WindowConfig {
                window_secs: 86_400,
                bucket_secs: 3_600,
            },
            max_users: 4,
            user_ttl_secs: 86_400,
        }
    }

    fn fix(user: &str, x: f64, t: Timestamp) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Fix(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    fn stay(user: &str, x: f64, t: Timestamp) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Stay(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    /// Recognizer: x < 5000 is Residence, otherwise Business.
    fn recog(pos: LocalPoint) -> Option<Category> {
        if pos.x < 5000.0 {
            Some(Category::Residence)
        } else {
            Some(Category::Business)
        }
    }

    #[test]
    fn stays_mode_records_transitions() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let records = vec![
            stay("u1", 0.0, 1_000),
            stay("u1", 9_000.0, 4_000),
            stay("u1", 10.0, 8_000),
        ];
        let o = e.ingest_batch(&records, recog);
        assert_eq!(o.accepted, 3);
        assert_eq!(o.stays, 3);
        assert_eq!(o.transitions, 2); // R→B, B→R
        let counts = e.window().counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(e.stats().transitions, 2);
    }

    #[test]
    fn fixes_mode_detects_then_transitions() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let mut records = Vec::new();
        // Dwell at home, travel, dwell at work, travel again (to close the
        // second window).
        for i in 0..6 {
            records.push(fix("u", 0.0, i * 120));
        }
        for i in 0..6 {
            records.push(fix("u", 9_000.0, 2_000 + i * 120));
        }
        records.push(fix("u", 20_000.0, 5_000));
        let o = e.ingest_batch(&records, recog);
        assert_eq!(o.stays, 2);
        assert_eq!(o.transitions, 1);
        assert_eq!(
            e.window().counts(),
            vec![(Category::Residence, Category::Business, 1)]
        );
    }

    #[test]
    fn per_user_ordering_is_independent() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let o = e.ingest_batch(
            &[
                stay("a", 0.0, 100),
                stay("b", 0.0, 50),  // earlier than a's clock: fine, own user
                stay("a", 0.0, 100), // duplicate for a: quarantined
            ],
            recog,
        );
        assert_eq!(o.accepted, 2);
        assert_eq!(o.quarantined, 1);
    }

    #[test]
    fn capacity_eviction_is_deterministic_and_flushes() {
        let mut e = IngestEngine::new(config()).expect("engine");
        // Four users dwell (detector windows open), then a fifth arrives.
        let mut records = Vec::new();
        for (i, u) in ["u1", "u2", "u3", "u4"].iter().enumerate() {
            for k in 0..5 {
                records.push(fix(u, 0.0, i as i64 * 10 + k * 120));
            }
        }
        let o1 = e.ingest_batch(&records, recog);
        assert_eq!(o1.evicted, 0);
        assert_eq!(e.users_len(), 4);
        // u1 has the smallest last_seen → evicted; its open dwell flushes
        // into a stay.
        let o2 = e.ingest_batch(&[fix("u5", 0.0, 10_000)], recog);
        assert_eq!(o2.evicted, 1);
        assert_eq!(o2.stays, 1);
        assert_eq!(e.users_len(), 4);
        assert!(e.buffered_fixes() > 0);
    }

    #[test]
    fn ttl_eviction_uses_event_time() {
        let mut e = IngestEngine::new(config()).expect("engine");
        e.ingest_batch(&[stay("old", 0.0, 0)], recog);
        assert_eq!(e.users_len(), 1);
        // A record far in the future ages "old" past the TTL.
        let o = e.ingest_batch(&[stay("new", 0.0, 1_000_000)], recog);
        assert_eq!(o.evicted, 1);
        assert_eq!(e.users_len(), 1);
        assert_eq!(e.clock(), Some(1_000_000));
    }

    #[test]
    fn non_finite_stay_is_dropped() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let o = e.ingest_batch(
            &[(
                "u".to_string(),
                IngestRecord::Stay(GpsPoint::new(LocalPoint::new(f64::NAN, 0.0), 5)),
            )],
            recog,
        );
        assert_eq!(o.dropped_non_finite, 1);
        assert_eq!(o.stays, 0);
    }

    #[test]
    fn config_validation_composes() {
        assert!(config().validate().is_ok());
        let mut bad = config();
        bad.max_users = 0;
        assert!(IngestEngine::new(bad).is_err());
        let mut bad = config();
        bad.user_ttl_secs = 0;
        assert!(IngestEngine::new(bad).is_err());
        let mut bad = config();
        bad.detector.theta_t = 0;
        assert!(IngestEngine::new(bad).is_err());
    }
}
