//! The multi-user ingestion engine: per-user detectors, live recognition,
//! transition aggregation, and deterministic eviction.
//!
//! One [`IngestEngine`] owns a map of per-user [`StayPointDetector`]s plus
//! one shared [`TransitionWindow`]. Callers feed batches of records tagged
//! with a user id; the engine:
//!
//! 1. admits each record through the per-user ordering clock (stale
//!    timestamps are quarantined, mirroring pm-io's quarantine lane);
//! 2. routes GPS fixes through incremental detection, or accepts
//!    pre-detected stays directly (the taxi regime of §5, where pick-up and
//!    drop-off records *are* the stay points);
//! 3. recognizes every emitted stay through the caller-supplied closure —
//!    pm-serve passes the current snapshot's vote, so a hot-swapped
//!    artifact takes effect without touching detector state;
//! 4. records `previous primary → current primary` transitions per user
//!    into the sliding window (untagged stays are counted but neither emit
//!    nor reset a transition);
//! 5. evicts users idle longer than `user_ttl_secs` of *event time*, and
//!    the stalest users when `max_users` would be exceeded — flushing their
//!    detectors first so end-of-stream stays are not lost. Eviction order
//!    is deterministic: `(last_seen, user id)` ascending.
//!
//! The engine never consults a wall clock; replaying the same records gives
//! the same stays, window, and evictions.

use crate::detector::{DetectorStats, FixStatus, StayPointDetector, StreamParams};
use crate::error::StreamError;
use crate::motif::{MotifCell, MotifWindow, DAY_SECS, MOTIF_WINDOW_DAYS};
use crate::window::{TransitionWindow, WindowConfig};
use pm_core::params::MinerParams;
use pm_core::types::{Category, GpsPoint, StayPoint, Tags, Timestamp};
use pm_geo::LocalPoint;
use pm_motif::DayGraphBuilder;
use pm_store::bytes::{ByteReader, ByteWriter};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Magic prefix of a serialized engine state blob (see
/// [`IngestEngine::state_bytes`]). `02` added the motif window and the
/// per-user pending day graphs; `01` blobs are refused, not migrated —
/// the WAL replays the stream that built them.
const STATE_MAGIC: &[u8; 8] = b"PMENG02\n";

fn corrupt(e: pm_store::StoreError) -> StreamError {
    StreamError::corrupt(e.to_string())
}

fn write_opt_i64(w: &mut ByteWriter, v: Option<i64>) {
    match v {
        Some(x) => {
            w.u8(1);
            w.i64(x);
        }
        None => w.u8(0),
    }
}

fn read_opt_i64(r: &mut ByteReader<'_>, context: &str) -> Result<Option<i64>, StreamError> {
    match r.u8(context).map_err(corrupt)? {
        0 => Ok(None),
        1 => Ok(Some(r.i64(context).map_err(corrupt)?)),
        flag => Err(StreamError::corrupt(format!(
            "{context}: option flag {flag} is neither 0 nor 1"
        ))),
    }
}

/// `Option<Category>` as one byte: the index, or 0xFF for `None`.
fn category_byte(c: Option<Category>) -> u8 {
    c.map_or(0xFF, |c| c as u8)
}

fn read_category(r: &mut ByteReader<'_>, context: &str) -> Result<Option<Category>, StreamError> {
    match r.u8(context).map_err(corrupt)? {
        0xFF => Ok(None),
        idx if (idx as usize) < Category::COUNT => Ok(Some(Category::from_index(idx as usize))),
        idx => Err(StreamError::corrupt(format!(
            "{context}: category index {idx} out of range"
        ))),
    }
}

fn tags_bits(tags: Tags) -> u16 {
    tags.iter().fold(0u16, |b, c| b | (1 << c as u8))
}

fn tags_from_bits(bits: u16) -> Result<Tags, StreamError> {
    if bits >> Category::COUNT != 0 {
        return Err(StreamError::corrupt(format!(
            "tag bits {bits:#06x} set categories past index {}",
            Category::COUNT - 1
        )));
    }
    Ok(Tags::from_iter(
        Category::ALL
            .iter()
            .copied()
            .filter(|c| bits & (1 << *c as u8) != 0),
    ))
}

/// Shape of one ingestion engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Per-user detection thresholds.
    pub detector: StreamParams,
    /// Transition-window shape.
    pub window: WindowConfig,
    /// Hard cap on concurrently tracked users.
    pub max_users: usize,
    /// Users idle this long (event time) are evicted after a batch.
    pub user_ttl_secs: Timestamp,
    /// Hard cap on stays accumulated for background re-mining; the oldest
    /// stay is shed (and counted) when a new one would exceed it. `0`
    /// disables accumulation entirely.
    pub max_stay_buffer: usize,
}

impl EngineConfig {
    /// An engine matching a mined artifact's thresholds.
    pub fn from_miner(params: &MinerParams) -> EngineConfig {
        EngineConfig {
            detector: StreamParams::from_miner(params),
            window: WindowConfig::default(),
            max_users: 100_000,
            user_ttl_secs: 7 * 24 * 3600,
            max_stay_buffer: 200_000,
        }
    }

    /// Rejects shapes that cannot run.
    pub fn validate(&self) -> Result<(), StreamError> {
        self.detector.validate()?;
        self.window.validate()?;
        if self.max_users == 0 {
            return Err(StreamError::config("max_users must be positive"));
        }
        if self.user_ttl_secs <= 0 {
            return Err(StreamError::config(format!(
                "user_ttl_secs {} must be positive",
                self.user_ttl_secs
            )));
        }
        Ok(())
    }
}

/// One ingested record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestRecord {
    /// A raw GPS fix, routed through incremental stay-point detection.
    Fix(GpsPoint),
    /// A pre-detected stay (position + time), bypassing detection — the
    /// journey-log regime where pick-ups/drop-offs are already stays.
    Stay(GpsPoint),
}

impl IngestRecord {
    fn point(&self) -> GpsPoint {
        match self {
            IngestRecord::Fix(p) | IngestRecord::Stay(p) => *p,
        }
    }
}

/// What one batch did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Records admitted (fixes into detection, stays into aggregation).
    pub accepted: u64,
    /// Records quarantined for out-of-order timestamps.
    pub quarantined: u64,
    /// Records dropped for non-finite coordinates.
    pub dropped_non_finite: u64,
    /// Stay points emitted (detected or direct).
    pub stays: u64,
    /// Transitions recorded into the window.
    pub transitions: u64,
    /// Transitions dropped for being older than the window.
    pub late_transitions: u64,
    /// Users evicted (capacity or TTL).
    pub evicted: u64,
    /// Accumulated stays shed by the `max_stay_buffer` bound.
    pub stays_shed: u64,
    /// Per-user day graphs closed (a later day began, or the user was
    /// evicted) and handed to the motif window.
    pub motif_days_closed: u64,
    /// Closed days that exceeded the motif node cap (bucketed, not
    /// classified).
    pub motif_days_oversize: u64,
}

impl BatchOutcome {
    /// Folds another outcome in (all fields are additive tallies); sharded
    /// engines use this to merge per-shard outcomes of one logical batch.
    pub fn absorb(&mut self, o: &BatchOutcome) {
        self.accepted += o.accepted;
        self.quarantined += o.quarantined;
        self.dropped_non_finite += o.dropped_non_finite;
        self.stays += o.stays;
        self.transitions += o.transitions;
        self.late_transitions += o.late_transitions;
        self.evicted += o.evicted;
        self.stays_shed += o.stays_shed;
        self.motif_days_closed += o.motif_days_closed;
        self.motif_days_oversize += o.motif_days_oversize;
    }
}

/// Cumulative engine tallies — the pm-obs counter sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub accepted: u64,
    pub quarantined: u64,
    pub dropped_non_finite: u64,
    pub stays: u64,
    pub transitions: u64,
    pub late_transitions: u64,
    pub evicted: u64,
    pub stays_shed: u64,
    pub motif_days_closed: u64,
    pub motif_days_oversize: u64,
}

impl EngineStats {
    fn absorb(&mut self, o: &BatchOutcome) {
        self.accepted += o.accepted;
        self.quarantined += o.quarantined;
        self.dropped_non_finite += o.dropped_non_finite;
        self.stays += o.stays;
        self.transitions += o.transitions;
        self.late_transitions += o.late_transitions;
        self.evicted += o.evicted;
        self.stays_shed += o.stays_shed;
        self.motif_days_closed += o.motif_days_closed;
        self.motif_days_oversize += o.motif_days_oversize;
    }
}

#[derive(Debug)]
struct UserState {
    detector: StayPointDetector,
    /// Primary category of the user's last recognized stay.
    last_primary: Option<Category>,
    /// Last admitted event time — the eviction key.
    last_seen: Timestamp,
    /// The in-progress day graph: `(absolute day, builder)`. Nodes are
    /// primary categories (the live recognizer yields nothing finer); the
    /// day closes when a recognized stay lands in a later day, or on
    /// eviction.
    day_graph: Option<(Timestamp, DayGraphBuilder)>,
}

/// The multi-user streaming front door.
#[derive(Debug)]
pub struct IngestEngine {
    config: EngineConfig,
    users: HashMap<String, UserState>,
    window: TransitionWindow,
    /// Sliding per-day motif-class counts over closed user-days.
    motifs: MotifWindow,
    /// Maximum admitted event time across all users.
    clock: Option<Timestamp>,
    stats: EngineStats,
    /// Bounded FIFO of emitted stays (tagged with their user), kept for
    /// background re-mining. Oldest first.
    stay_buffer: VecDeque<(String, StayPoint)>,
    /// Eviction index: every tracked user keyed by `(last_seen, id)`, so
    /// both capacity eviction (pop the minimum) and TTL sweeps (pop while
    /// stale) are `O(log n)` instead of a full-map scan per batch. Derived
    /// state — rebuilt on restore, never serialized.
    by_idle: BTreeSet<(Timestamp, String)>,
    /// Running total of fixes buffered across all per-user detectors —
    /// maintained on every mutation so the gauge read stays `O(1)` (the
    /// serve loop reads it per batch; a map scan would be `O(users)`).
    /// Derived state — recomputed on restore, never serialized.
    buffered: usize,
}

impl IngestEngine {
    /// An empty engine.
    pub fn new(config: EngineConfig) -> Result<IngestEngine, StreamError> {
        config.validate()?;
        Ok(IngestEngine {
            window: TransitionWindow::new(config.window)?,
            motifs: MotifWindow::new(),
            config,
            users: HashMap::new(),
            clock: None,
            stats: EngineStats::default(),
            stay_buffer: VecDeque::new(),
            by_idle: BTreeSet::new(),
            buffered: 0,
        })
    }

    /// Ingests one batch in order. `recognize` maps a stay position onto
    /// its primary category (pm-serve passes the current snapshot's vote);
    /// it is looked up per emitted stay, never cached across batches.
    pub fn ingest_batch<R>(
        &mut self,
        records: &[(String, IngestRecord)],
        recognize: R,
    ) -> BatchOutcome
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let mut outcome = BatchOutcome::default();
        for (user, record) in records {
            self.process(user, record, &recognize, &mut outcome);
        }
        self.evict_stale(&recognize, &mut outcome);
        self.stats.absorb(&outcome);
        outcome
    }

    /// Ingests one batch under a pre-computed **sealed clock**: the engine
    /// and window clocks advance to `seal` *before* any record is
    /// processed, so lateness and TTL verdicts depend only on each user's
    /// own subsequence and the seal — never on which other records happen
    /// to share the engine. This is what makes a user-partitioned
    /// [`ShardedEngine`](crate::ShardedEngine) byte-equivalent to a single
    /// engine: both see every record under the same clock.
    ///
    /// `seal` must be `max(previous global clock, max event time in the
    /// full logical batch)`; a quarantined record's time never exceeds that
    /// maximum (its time is bounded by an already-admitted record), so the
    /// seal can be computed over all records without admission logic.
    pub fn ingest_batch_sealed<R>(
        &mut self,
        records: &[(String, IngestRecord)],
        seal: Timestamp,
        recognize: R,
    ) -> BatchOutcome
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let mut outcome = BatchOutcome::default();
        self.advance_clock(seal);
        for (user, record) in records {
            self.process(user, record, &recognize, &mut outcome);
        }
        self.evict_stale(&recognize, &mut outcome);
        self.stats.absorb(&outcome);
        outcome
    }

    /// Advances the engine to sealed clock `to` without ingesting anything:
    /// bumps the clocks and runs the TTL sweep they imply. Because exact
    /// TTL eviction is memoryless (the evicted set is always `{last_seen <
    /// clock - ttl}`), catching a shard up lazily at read time yields the
    /// same state as advancing it on every batch. No-op when the engine is
    /// already at or past `to`.
    pub fn advance_to<R>(&mut self, to: Timestamp, recognize: R) -> BatchOutcome
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let mut outcome = BatchOutcome::default();
        if self.clock.is_some_and(|c| c >= to) {
            return outcome;
        }
        self.advance_clock(to);
        self.evict_stale(&recognize, &mut outcome);
        self.stats.absorb(&outcome);
        outcome
    }

    /// Moves the engine-wide and window clocks forward to `to` (monotone).
    fn advance_clock(&mut self, to: Timestamp) {
        self.clock = Some(self.clock.map_or(to, |c| c.max(to)));
        self.window.advance(to);
        self.motifs.advance(to);
    }

    /// Currently tracked users.
    pub fn users_len(&self) -> usize {
        self.users.len()
    }

    /// Fixes buffered across all per-user detectors (`O(1)`: a running
    /// total maintained across ingest, eviction, and restore).
    pub fn buffered_fixes(&self) -> usize {
        self.buffered
    }

    /// The shared transition window.
    pub fn window(&self) -> &TransitionWindow {
        &self.window
    }

    /// The sliding motif window over closed user-days.
    pub fn motifs(&self) -> &MotifWindow {
        &self.motifs
    }

    /// Cumulative tallies.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine-wide event clock.
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock
    }

    /// The shape this engine runs with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Stays currently accumulated for re-mining.
    pub fn stays_buffered(&self) -> usize {
        self.stay_buffer.len()
    }

    /// A copy of the accumulated `(user, stay)` pairs, oldest first. The
    /// buffer is *not* drained: re-mining is a read-only consumer, and a
    /// replayed engine must reach the same buffer regardless of how often
    /// a re-miner looked at it.
    pub fn stays_snapshot(&self) -> Vec<(String, StayPoint)> {
        self.stay_buffer.iter().cloned().collect()
    }

    /// Serializes the complete engine state — config, clock, tallies,
    /// window ring, every per-user detector, and the stay buffer — into a
    /// deterministic byte blob: two engines are in the same state if and
    /// only if their `state_bytes` are equal. Floats are stored as IEEE bit
    /// patterns and users are sorted by id, so the blob is byte-identical
    /// across processes and hash-map iteration orders.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(STATE_MAGIC);
        // Config.
        w.f64(self.config.detector.theta_d);
        w.i64(self.config.detector.theta_t);
        w.count(self.config.detector.max_pending);
        w.i64(self.config.window.window_secs);
        w.i64(self.config.window.bucket_secs);
        w.count(self.config.max_users);
        w.i64(self.config.user_ttl_secs);
        w.count(self.config.max_stay_buffer);
        // Engine clock + tallies.
        write_opt_i64(&mut w, self.clock);
        for v in [
            self.stats.accepted,
            self.stats.quarantined,
            self.stats.dropped_non_finite,
            self.stats.stays,
            self.stats.transitions,
            self.stats.late_transitions,
            self.stats.evicted,
            self.stats.stays_shed,
            self.stats.motif_days_closed,
            self.stats.motif_days_oversize,
        ] {
            w.u64(v);
        }
        // Window ring.
        let (buckets, periods, wclock, late_dropped, recorded) = self.window.parts();
        write_opt_i64(&mut w, wclock);
        w.u64(late_dropped);
        w.u64(recorded);
        w.count(periods.len());
        for &p in periods {
            w.i64(p);
        }
        for slot in buckets {
            for &c in slot {
                w.u64(c);
            }
        }
        // Motif window ring. Slots are BTreeMaps, so iteration — and the
        // blob — is deterministic.
        let (mclasses, moversize, mperiods, mclock, mlate, mrecorded) = self.motifs.parts();
        write_opt_i64(&mut w, mclock);
        w.u64(mlate);
        w.u64(mrecorded);
        for slot in 0..MOTIF_WINDOW_DAYS {
            w.i64(mperiods[slot]);
            w.u64(moversize[slot]);
            w.count(mclasses[slot].len());
            for (form, cell) in &mclasses[slot] {
                w.u64(*form);
                w.u64(cell.days);
                for &c in &cell.category_counts {
                    w.u64(c);
                }
                w.u64(cell.untagged_nodes);
            }
        }
        // Users, sorted by id for determinism.
        let mut ids: Vec<&String> = self.users.keys().collect();
        ids.sort_unstable();
        w.count(ids.len());
        for id in ids {
            let state = &self.users[id];
            w.count(id.len());
            w.bytes(id.as_bytes());
            w.u8(category_byte(state.last_primary));
            w.i64(state.last_seen);
            write_opt_i64(&mut w, state.detector.last_time());
            let d = state.detector.stats();
            for v in [
                d.accepted,
                d.quarantined,
                d.dropped_non_finite,
                d.overflowed,
                d.emitted,
            ] {
                w.u64(v);
            }
            let pending = state.detector.pending();
            w.count(pending.len());
            for fix in pending {
                w.f64(fix.pos.x);
                w.f64(fix.pos.y);
                w.i64(fix.time);
            }
            match &state.day_graph {
                None => w.u8(0),
                Some((day, builder)) => {
                    w.u8(1);
                    w.i64(*day);
                    let (keys, categories, adj, last, visits, oversize) = builder.parts();
                    w.count(keys.len());
                    for (k, c) in keys.iter().zip(categories) {
                        w.u64(*k);
                        w.u8(category_byte(*c));
                    }
                    w.u64(adj);
                    w.u8(last.unwrap_or(0xFF));
                    w.u64(visits);
                    w.u8(u8::from(oversize));
                }
            }
        }
        // Stay buffer, oldest first.
        w.count(self.stay_buffer.len());
        for (user, sp) in &self.stay_buffer {
            w.count(user.len());
            w.bytes(user.as_bytes());
            w.f64(sp.pos.x);
            w.f64(sp.pos.y);
            w.i64(sp.time);
            w.u16(tags_bits(sp.tags));
            w.u8(category_byte(sp.primary));
        }
        w.into_bytes()
    }

    /// Rebuilds an engine from [`IngestEngine::state_bytes`] output. Every
    /// structural property is re-validated — bad magic, truncation,
    /// impossible counts, and out-of-range category indices are all typed
    /// [`StreamError::Corrupt`] errors, never panics or huge allocations.
    pub fn from_state_bytes(bytes: &[u8]) -> Result<IngestEngine, StreamError> {
        let mut r = ByteReader::new(bytes);
        let magic = r
            .bytes(STATE_MAGIC.len(), "engine state magic")
            .map_err(corrupt)?;
        if magic != STATE_MAGIC {
            return Err(StreamError::corrupt("engine state magic mismatch"));
        }
        let config = EngineConfig {
            detector: StreamParams {
                theta_d: r.f64("theta_d").map_err(corrupt)?,
                theta_t: r.i64("theta_t").map_err(corrupt)?,
                max_pending: r.u64("max_pending").map_err(corrupt)? as usize,
            },
            window: WindowConfig {
                window_secs: r.i64("window_secs").map_err(corrupt)?,
                bucket_secs: r.i64("bucket_secs").map_err(corrupt)?,
            },
            max_users: r.u64("max_users").map_err(corrupt)? as usize,
            user_ttl_secs: r.i64("user_ttl_secs").map_err(corrupt)?,
            max_stay_buffer: r.u64("max_stay_buffer").map_err(corrupt)? as usize,
        };
        config.validate()?;
        let clock = read_opt_i64(&mut r, "engine clock")?;
        let mut tallies = [0u64; 10];
        for (i, t) in tallies.iter_mut().enumerate() {
            *t = r.u64(&format!("engine tally {i}")).map_err(corrupt)?;
        }
        let stats = EngineStats {
            accepted: tallies[0],
            quarantined: tallies[1],
            dropped_non_finite: tallies[2],
            stays: tallies[3],
            transitions: tallies[4],
            late_transitions: tallies[5],
            evicted: tallies[6],
            stays_shed: tallies[7],
            motif_days_closed: tallies[8],
            motif_days_oversize: tallies[9],
        };
        // Window ring.
        let wclock = read_opt_i64(&mut r, "window clock")?;
        let late_dropped = r.u64("window late_dropped").map_err(corrupt)?;
        let recorded = r.u64("window recorded").map_err(corrupt)?;
        let n_slots = r.count(8, "window slots").map_err(corrupt)?;
        let mut periods = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            periods.push(r.i64("window period").map_err(corrupt)?);
        }
        let cells = Category::COUNT * Category::COUNT;
        let mut buckets = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let mut slot = Vec::with_capacity(cells);
            for _ in 0..cells {
                slot.push(r.u64("window count").map_err(corrupt)?);
            }
            buckets.push(slot);
        }
        let window = TransitionWindow::from_parts(
            config.window,
            buckets,
            periods,
            wclock,
            late_dropped,
            recorded,
        )?;
        // Motif window ring.
        let mclock = read_opt_i64(&mut r, "motif clock")?;
        let mlate = r.u64("motif late_days").map_err(corrupt)?;
        let mrecorded = r.u64("motif recorded_days").map_err(corrupt)?;
        let mut mclasses = Vec::with_capacity(MOTIF_WINDOW_DAYS);
        let mut moversize = Vec::with_capacity(MOTIF_WINDOW_DAYS);
        let mut mperiods = Vec::with_capacity(MOTIF_WINDOW_DAYS);
        for _ in 0..MOTIF_WINDOW_DAYS {
            mperiods.push(r.i64("motif slot day").map_err(corrupt)?);
            moversize.push(r.u64("motif slot oversize").map_err(corrupt)?);
            let n_forms = r
                .count(16 + Category::COUNT * 8 + 8, "motif slot classes")
                .map_err(corrupt)?;
            let mut forms = BTreeMap::new();
            for _ in 0..n_forms {
                let form = r.u64("motif form").map_err(corrupt)?;
                let days = r.u64("motif class days").map_err(corrupt)?;
                let mut category_counts = [0u64; Category::COUNT];
                for c in category_counts.iter_mut() {
                    *c = r.u64("motif category count").map_err(corrupt)?;
                }
                let untagged_nodes = r.u64("motif untagged nodes").map_err(corrupt)?;
                if forms
                    .insert(
                        form,
                        MotifCell {
                            days,
                            category_counts,
                            untagged_nodes,
                        },
                    )
                    .is_some()
                {
                    return Err(StreamError::corrupt(format!(
                        "motif form {form:#x} repeats within a slot"
                    )));
                }
            }
            mclasses.push(forms);
        }
        let motifs =
            MotifWindow::from_parts(mclasses, moversize, mperiods, mclock, mlate, mrecorded)?;
        // Users.
        let n_users = r.count(16, "users").map_err(corrupt)?;
        let mut users = HashMap::with_capacity(n_users);
        for _ in 0..n_users {
            let id_len = r.count(1, "user id length").map_err(corrupt)?;
            let id = String::from_utf8(r.bytes(id_len, "user id").map_err(corrupt)?.to_vec())
                .map_err(|_| StreamError::corrupt("user id is not UTF-8"))?;
            let last_primary = read_category(&mut r, "user last_primary")?;
            let last_seen = r.i64("user last_seen").map_err(corrupt)?;
            let last_time = read_opt_i64(&mut r, "detector last_time")?;
            let mut d = [0u64; 5];
            for (i, t) in d.iter_mut().enumerate() {
                *t = r.u64(&format!("detector tally {i}")).map_err(corrupt)?;
            }
            let dstats = DetectorStats {
                accepted: d[0],
                quarantined: d[1],
                dropped_non_finite: d[2],
                overflowed: d[3],
                emitted: d[4],
            };
            let n_pending = r.count(24, "pending fixes").map_err(corrupt)?;
            let mut pending = VecDeque::with_capacity(n_pending);
            for _ in 0..n_pending {
                let x = r.f64("fix x").map_err(corrupt)?;
                let y = r.f64("fix y").map_err(corrupt)?;
                let t = r.i64("fix time").map_err(corrupt)?;
                pending.push_back(GpsPoint::new(LocalPoint::new(x, y), t));
            }
            let day_graph = match r.u8("day graph flag").map_err(corrupt)? {
                0 => None,
                1 => {
                    let day = r.i64("day graph day").map_err(corrupt)?;
                    let n_nodes = r.count(9, "day graph nodes").map_err(corrupt)?;
                    let mut keys = Vec::with_capacity(n_nodes);
                    let mut categories = Vec::with_capacity(n_nodes);
                    for _ in 0..n_nodes {
                        keys.push(r.u64("day graph key").map_err(corrupt)?);
                        categories.push(read_category(&mut r, "day graph category")?);
                    }
                    let adj = r.u64("day graph adjacency").map_err(corrupt)?;
                    let last = match r.u8("day graph last").map_err(corrupt)? {
                        0xFF => None,
                        l => Some(l),
                    };
                    let visits = r.u64("day graph visits").map_err(corrupt)?;
                    let oversize = match r.u8("day graph oversize").map_err(corrupt)? {
                        0 => false,
                        1 => true,
                        flag => {
                            return Err(StreamError::corrupt(format!(
                                "day graph oversize flag {flag} is neither 0 nor 1"
                            )))
                        }
                    };
                    let builder =
                        DayGraphBuilder::from_parts(keys, categories, adj, last, visits, oversize)
                            .map_err(StreamError::corrupt)?;
                    if builder.is_empty() {
                        return Err(StreamError::corrupt("pending day graph is empty"));
                    }
                    Some((day, builder))
                }
                flag => {
                    return Err(StreamError::corrupt(format!(
                        "day graph flag {flag} is neither 0 nor 1"
                    )))
                }
            };
            users.insert(
                id,
                UserState {
                    detector: StayPointDetector::from_parts(
                        config.detector,
                        pending,
                        last_time,
                        dstats,
                    ),
                    last_primary,
                    last_seen,
                    day_graph,
                },
            );
        }
        // Stay buffer.
        let n_stays = r.count(27, "stay buffer").map_err(corrupt)?;
        let mut stay_buffer = VecDeque::with_capacity(n_stays);
        for _ in 0..n_stays {
            let user_len = r.count(1, "stay user length").map_err(corrupt)?;
            let user = String::from_utf8(r.bytes(user_len, "stay user").map_err(corrupt)?.to_vec())
                .map_err(|_| StreamError::corrupt("stay user is not UTF-8"))?;
            let x = r.f64("stay x").map_err(corrupt)?;
            let y = r.f64("stay y").map_err(corrupt)?;
            let t = r.i64("stay time").map_err(corrupt)?;
            let bits = r.u16("stay tags").map_err(corrupt)?;
            let primary = read_category(&mut r, "stay primary")?;
            stay_buffer.push_back((
                user,
                StayPoint {
                    pos: LocalPoint::new(x, y),
                    time: t,
                    tags: tags_from_bits(bits)?,
                    primary,
                },
            ));
        }
        r.finish("engine state").map_err(corrupt)?;
        // The eviction index and buffered-fix total are derived state:
        // rebuild them rather than trust (or spend bytes on) a serialized
        // copy.
        let by_idle = users
            .iter()
            .map(|(id, s)| (s.last_seen, id.clone()))
            .collect();
        let buffered = users.values().map(|s| s.detector.pending_len()).sum();
        Ok(IngestEngine {
            config,
            users,
            window,
            motifs,
            clock,
            stats,
            stay_buffer,
            by_idle,
            buffered,
        })
    }

    fn process<R>(
        &mut self,
        user: &str,
        record: &IngestRecord,
        recognize: &R,
        outcome: &mut BatchOutcome,
    ) where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let point = record.point();
        if !self.users.contains_key(user) {
            while self.users.len() >= self.config.max_users {
                self.evict_one(recognize, outcome);
            }
            self.users.insert(
                user.to_string(),
                UserState {
                    detector: StayPointDetector::new(self.config.detector),
                    last_primary: None,
                    last_seen: point.time,
                    day_graph: None,
                },
            );
            self.by_idle.insert((point.time, user.to_string()));
        }
        let prior_seen = self.users.get(user).map(|s| s.last_seen);
        let mut emitted = Vec::new();
        let admitted = {
            let state = match self.users.get_mut(user) {
                Some(s) => s,
                None => return, // unreachable: inserted above
            };
            let pending_before = state.detector.pending_len();
            let admitted = match record {
                IngestRecord::Fix(p) => match state.detector.push(*p, &mut emitted) {
                    FixStatus::Accepted => {
                        outcome.accepted += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    }
                    FixStatus::OutOfOrder => {
                        outcome.quarantined += 1;
                        false
                    }
                    FixStatus::NonFinite => {
                        outcome.dropped_non_finite += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    }
                },
                IngestRecord::Stay(p) => {
                    if !state.detector.admit_time(p.time) {
                        outcome.quarantined += 1;
                        false
                    } else if !(p.pos.x.is_finite() && p.pos.y.is_finite()) {
                        outcome.dropped_non_finite += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        true
                    } else {
                        outcome.accepted += 1;
                        state.last_seen = state.last_seen.max(p.time);
                        emitted.push(StayPoint::untagged(p.pos, p.time));
                        true
                    }
                }
            };
            // Fold the pending-buffer delta (push, emit, overflow, rescan —
            // whatever the detector did) into the running gauge total.
            let pending_after = state.detector.pending_len();
            self.buffered = self.buffered + pending_after - pending_before;
            admitted
        };
        if admitted {
            self.clock = Some(self.clock.map_or(point.time, |c| c.max(point.time)));
            self.motifs.advance(point.time);
        }
        // Re-key the eviction index if this record moved the user's clock.
        if let (Some(old), Some(new)) = (prior_seen, self.users.get(user).map(|s| s.last_seen)) {
            if new != old {
                self.by_idle.remove(&(old, user.to_string()));
                self.by_idle.insert((new, user.to_string()));
            }
        }
        if !emitted.is_empty() {
            let (prev, mut day_graph) = match self.users.get_mut(user) {
                Some(s) => (s.last_primary, s.day_graph.take()),
                None => (None, None),
            };
            let last = self.settle(user, prev, &mut day_graph, &emitted, recognize, outcome);
            if let Some(state) = self.users.get_mut(user) {
                state.last_primary = last;
                state.day_graph = day_graph;
            }
        }
    }

    /// Recognizes emitted stays, records per-user transitions, grows the
    /// user's pending day graph (closing it when a later day begins), and
    /// accumulates the stays (bounded) for background re-mining. Returns
    /// the user's new `last_primary`.
    fn settle<R>(
        &mut self,
        user: &str,
        mut prev: Option<Category>,
        day_graph: &mut Option<(Timestamp, DayGraphBuilder)>,
        stays: &[StayPoint],
        recognize: &R,
        outcome: &mut BatchOutcome,
    ) -> Option<Category>
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        for sp in stays {
            outcome.stays += 1;
            if self.config.max_stay_buffer > 0 {
                while self.stay_buffer.len() >= self.config.max_stay_buffer {
                    self.stay_buffer.pop_front();
                    outcome.stays_shed += 1;
                }
                self.stay_buffer.push_back((user.to_string(), *sp));
            }
            let Some(cur) = recognize(sp.pos) else {
                // Unrecognized ground: counted as a stay, but it neither
                // forms nor resets a transition edge, and it does not join
                // the day graph (mirrored on the batch motif path).
                continue;
            };
            if let Some(p) = prev {
                if self.window.record(p, cur, sp.time) {
                    outcome.transitions += 1;
                } else {
                    outcome.late_transitions += 1;
                }
            }
            prev = Some(cur);
            // Per-user stay times are monotone, so `day` never regresses:
            // a day mismatch always means the pending day is over.
            let day = sp.time.div_euclid(DAY_SECS);
            match &mut *day_graph {
                Some((d, builder)) if *d == day => builder.visit(cur as u64, Some(cur)),
                slot => {
                    if let Some((d, builder)) = slot.take() {
                        self.close_day(d, &builder, outcome);
                    }
                    let mut builder = DayGraphBuilder::new();
                    builder.visit(cur as u64, Some(cur));
                    *slot = Some((day, builder));
                }
            }
        }
        prev
    }

    /// Hands one closed user-day to the motif window and tallies it.
    fn close_day(&mut self, day: Timestamp, builder: &DayGraphBuilder, outcome: &mut BatchOutcome) {
        let graph = builder.finish();
        outcome.motif_days_closed += 1;
        if graph.form.is_none() {
            outcome.motif_days_oversize += 1;
        }
        self.motifs.record(day, &graph);
    }

    /// Evicts the stalest user — deterministic tie-break on the user id
    /// (the index is ordered by `(last_seen, id)`).
    fn evict_one<R>(&mut self, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        if let Some((_, key)) = self.by_idle.first().cloned() {
            self.remove_user(&key, recognize, outcome);
        }
    }

    /// Evicts every user idle past the TTL, stalest first (ties broken on
    /// the user id). Pops the ordered index instead of scanning the map, so
    /// a quiet batch costs `O(evictions)` — not `O(users)` — even with
    /// millions of tracked users.
    fn evict_stale<R>(&mut self, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let Some(clock) = self.clock else {
            return;
        };
        let cutoff = clock.saturating_sub(self.config.user_ttl_secs);
        while let Some((seen, key)) = self.by_idle.first().cloned() {
            if seen >= cutoff {
                break;
            }
            self.remove_user(&key, recognize, outcome);
        }
    }

    /// Flushes and drops one user; end-of-stream stays settle normally.
    fn remove_user<R>(&mut self, key: &str, recognize: &R, outcome: &mut BatchOutcome)
    where
        R: Fn(LocalPoint) -> Option<Category>,
    {
        let Some(mut state) = self.users.remove(key) else {
            return;
        };
        self.by_idle.remove(&(state.last_seen, key.to_string()));
        self.buffered -= state.detector.pending_len();
        let mut tail = Vec::new();
        state.detector.flush(&mut tail);
        let mut day_graph = state.day_graph.take();
        self.settle(
            key,
            state.last_primary,
            &mut day_graph,
            &tail,
            recognize,
            outcome,
        );
        // The user is gone; whatever day was still open closes with them.
        if let Some((day, builder)) = day_graph {
            self.close_day(day, &builder, outcome);
        }
        outcome.evicted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EngineConfig {
        EngineConfig {
            detector: StreamParams {
                theta_d: 100.0,
                theta_t: 300,
                max_pending: 64,
            },
            window: WindowConfig {
                window_secs: 86_400,
                bucket_secs: 3_600,
            },
            max_users: 4,
            user_ttl_secs: 86_400,
            max_stay_buffer: 100,
        }
    }

    fn fix(user: &str, x: f64, t: Timestamp) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Fix(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    fn stay(user: &str, x: f64, t: Timestamp) -> (String, IngestRecord) {
        (
            user.to_string(),
            IngestRecord::Stay(GpsPoint::new(LocalPoint::new(x, 0.0), t)),
        )
    }

    /// Recognizer: x < 5000 is Residence, otherwise Business.
    fn recog(pos: LocalPoint) -> Option<Category> {
        if pos.x < 5000.0 {
            Some(Category::Residence)
        } else {
            Some(Category::Business)
        }
    }

    #[test]
    fn stays_mode_records_transitions() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let records = vec![
            stay("u1", 0.0, 1_000),
            stay("u1", 9_000.0, 4_000),
            stay("u1", 10.0, 8_000),
        ];
        let o = e.ingest_batch(&records, recog);
        assert_eq!(o.accepted, 3);
        assert_eq!(o.stays, 3);
        assert_eq!(o.transitions, 2); // R→B, B→R
        let counts = e.window().counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(e.stats().transitions, 2);
    }

    #[test]
    fn fixes_mode_detects_then_transitions() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let mut records = Vec::new();
        // Dwell at home, travel, dwell at work, travel again (to close the
        // second window).
        for i in 0..6 {
            records.push(fix("u", 0.0, i * 120));
        }
        for i in 0..6 {
            records.push(fix("u", 9_000.0, 2_000 + i * 120));
        }
        records.push(fix("u", 20_000.0, 5_000));
        let o = e.ingest_batch(&records, recog);
        assert_eq!(o.stays, 2);
        assert_eq!(o.transitions, 1);
        assert_eq!(
            e.window().counts(),
            vec![(Category::Residence, Category::Business, 1)]
        );
    }

    #[test]
    fn sealed_ingest_is_partition_independent() {
        // One engine takes the whole batch; a pair of engines split it by
        // user under the same seal. Verdicts, tallies, and merged window
        // counts must agree — the property ShardedEngine is built on.
        let records = vec![
            stay("a", 0.0, 1_000),
            stay("b", 9_000.0, 2_000),
            stay("a", 9_000.0, 3_000),
            stay("b", 10.0, 3_500),
            stay("a", 9_000.0, 3_000), // duplicate: quarantined
        ];
        let seal = 3_500;
        let mut whole = IngestEngine::new(config()).expect("engine");
        let ow = whole.ingest_batch_sealed(&records, seal, recog);

        let mut ea = IngestEngine::new(config()).expect("engine");
        let mut eb = IngestEngine::new(config()).expect("engine");
        let part_a: Vec<_> = records.iter().filter(|(u, _)| u == "a").cloned().collect();
        let part_b: Vec<_> = records.iter().filter(|(u, _)| u == "b").cloned().collect();
        let oa = ea.ingest_batch_sealed(&part_a, seal, recog);
        let ob = eb.ingest_batch_sealed(&part_b, seal, recog);

        assert_eq!(ow.accepted, oa.accepted + ob.accepted);
        assert_eq!(ow.quarantined, oa.quarantined + ob.quarantined);
        assert_eq!(ow.transitions, oa.transitions + ob.transitions);
        assert_eq!(ow.stays, oa.stays + ob.stays);
        assert_eq!(ea.clock(), Some(seal));
        assert_eq!(eb.clock(), Some(seal));

        let mut merged: Vec<(Category, Category, u64)> = ea.window().counts();
        for (f, t, c) in eb.window().counts() {
            match merged.iter_mut().find(|(mf, mt, _)| (*mf, *mt) == (f, t)) {
                Some(slot) => slot.2 += c,
                None => merged.push((f, t, c)),
            }
        }
        merged.sort_by_key(|&(f, t, _)| (f as usize, t as usize));
        assert_eq!(whole.window().counts(), merged);
    }

    #[test]
    fn advance_to_runs_the_ttl_sweep_lazily() {
        // Engine A sees the late batch that moves the clock; engine B is an
        // untouched shard caught up via advance_to. Both must evict the
        // stale user and agree on users_len and evicted tallies.
        let cfg = config();
        let ttl = cfg.user_ttl_secs;
        let mut eager = IngestEngine::new(cfg).expect("engine");
        let mut lazy = IngestEngine::new(config()).expect("engine");
        for e in [&mut eager, &mut lazy] {
            e.ingest_batch_sealed(&[stay("old", 0.0, 1_000)], 1_000, recog);
        }
        let seal = 1_000 + ttl + 1_000;
        let o_eager = eager.ingest_batch_sealed(&[stay("new", 0.0, seal)], seal, recog);
        let o_lazy = lazy.advance_to(seal, recog);
        assert_eq!(o_eager.evicted, 1);
        assert_eq!(o_lazy.evicted, 1);
        assert_eq!(eager.users_len(), 1); // "new" survives
        assert_eq!(lazy.users_len(), 0);
        assert_eq!(lazy.clock(), Some(seal));
        // Advancing again is a no-op.
        let again = lazy.advance_to(seal, recog);
        assert_eq!(again.evicted, 0);
    }

    #[test]
    fn per_user_ordering_is_independent() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let o = e.ingest_batch(
            &[
                stay("a", 0.0, 100),
                stay("b", 0.0, 50),  // earlier than a's clock: fine, own user
                stay("a", 0.0, 100), // duplicate for a: quarantined
            ],
            recog,
        );
        assert_eq!(o.accepted, 2);
        assert_eq!(o.quarantined, 1);
    }

    #[test]
    fn capacity_eviction_is_deterministic_and_flushes() {
        let mut e = IngestEngine::new(config()).expect("engine");
        // Four users dwell (detector windows open), then a fifth arrives.
        let mut records = Vec::new();
        for (i, u) in ["u1", "u2", "u3", "u4"].iter().enumerate() {
            for k in 0..5 {
                records.push(fix(u, 0.0, i as i64 * 10 + k * 120));
            }
        }
        let o1 = e.ingest_batch(&records, recog);
        assert_eq!(o1.evicted, 0);
        assert_eq!(e.users_len(), 4);
        // u1 has the smallest last_seen → evicted; its open dwell flushes
        // into a stay.
        let o2 = e.ingest_batch(&[fix("u5", 0.0, 10_000)], recog);
        assert_eq!(o2.evicted, 1);
        assert_eq!(o2.stays, 1);
        assert_eq!(e.users_len(), 4);
        assert!(e.buffered_fixes() > 0);
    }

    #[test]
    fn ttl_eviction_uses_event_time() {
        let mut e = IngestEngine::new(config()).expect("engine");
        e.ingest_batch(&[stay("old", 0.0, 0)], recog);
        assert_eq!(e.users_len(), 1);
        // A record far in the future ages "old" past the TTL.
        let o = e.ingest_batch(&[stay("new", 0.0, 1_000_000)], recog);
        assert_eq!(o.evicted, 1);
        assert_eq!(e.users_len(), 1);
        assert_eq!(e.clock(), Some(1_000_000));
    }

    #[test]
    fn non_finite_stay_is_dropped() {
        let mut e = IngestEngine::new(config()).expect("engine");
        let o = e.ingest_batch(
            &[(
                "u".to_string(),
                IngestRecord::Stay(GpsPoint::new(LocalPoint::new(f64::NAN, 0.0), 5)),
            )],
            recog,
        );
        assert_eq!(o.dropped_non_finite, 1);
        assert_eq!(o.stays, 0);
    }

    #[test]
    fn stay_buffer_accumulates_and_sheds() {
        let mut cfg = config();
        cfg.max_stay_buffer = 2;
        let mut e = IngestEngine::new(cfg).expect("engine");
        let o = e.ingest_batch(
            &[
                stay("u", 0.0, 100),
                stay("u", 1.0, 200),
                stay("u", 2.0, 300),
            ],
            recog,
        );
        assert_eq!(o.stays, 3);
        assert_eq!(o.stays_shed, 1);
        assert_eq!(e.stays_buffered(), 2);
        let snap = e.stays_snapshot();
        assert_eq!(snap[0].1.time, 200, "oldest stay was shed");
        assert_eq!(snap[1].1.time, 300);
        assert_eq!(e.stays_buffered(), 2, "snapshot does not drain");
        assert_eq!(e.stats().stays_shed, 1);
    }

    #[test]
    fn zero_stay_buffer_disables_accumulation() {
        let mut cfg = config();
        cfg.max_stay_buffer = 0;
        let mut e = IngestEngine::new(cfg).expect("engine");
        let o = e.ingest_batch(&[stay("u", 0.0, 100)], recog);
        assert_eq!(o.stays, 1);
        assert_eq!(o.stays_shed, 0);
        assert_eq!(e.stays_buffered(), 0);
    }

    #[test]
    fn day_graphs_close_when_the_next_day_begins() {
        let mut e = IngestEngine::new(config()).expect("engine");
        // Day 0: home -> work -> home. Day 1: one stay, which closes day 0
        // but itself stays pending.
        let o = e.ingest_batch(
            &[
                stay("u", 0.0, 1_000),
                stay("u", 9_000.0, 40_000),
                stay("u", 10.0, 80_000),
                stay("u", 10.0, 86_400 + 1_000),
            ],
            recog,
        );
        assert_eq!(o.motif_days_closed, 1);
        assert_eq!(o.motif_days_oversize, 0);
        let table = e.motifs().table();
        assert_eq!(table.total_days, 1, "day 1 is still pending");
        assert_eq!(table.classes.len(), 1);
        assert_eq!(table.classes[0].nodes, 2, "two categories visited");
        assert_eq!(table.classes[0].edges, 2, "R->B and B->R");
        assert_eq!(
            table.classes[0].category_counts[Category::Residence as usize],
            1
        );
        assert_eq!(
            table.classes[0].category_counts[Category::Business as usize],
            1
        );
    }

    #[test]
    fn eviction_closes_the_pending_day() {
        let mut e = IngestEngine::new(config()).expect("engine");
        e.ingest_batch(&[stay("old", 0.0, 1_000)], recog);
        // Two days later, a new user's record TTL-evicts "old" (ttl is one
        // day); the flushed day is still inside the 7-day motif window.
        let o = e.ingest_batch(&[stay("new", 0.0, 2 * 86_400 + 10)], recog);
        assert_eq!(o.evicted, 1);
        assert_eq!(o.motif_days_closed, 1);
        assert_eq!(e.stats().motif_days_closed, 1);
        let table = e.motifs().table();
        assert_eq!(table.total_days, 1);
        assert_eq!(table.classes[0].nodes, 1, "a single-place day");
    }

    #[test]
    fn motif_state_survives_a_roundtrip() {
        let mut e = IngestEngine::new(config()).expect("engine");
        // Closed days in the window, plus pending day graphs: the blob
        // must carry both.
        let mut records = Vec::new();
        for (i, u) in ["alice", "bob"].iter().enumerate() {
            let base = i as i64 * 100;
            records.push(stay(u, 0.0, base + 1_000));
            records.push(stay(u, 9_000.0, base + 40_000));
            records.push(stay(u, 10.0, 86_400 + base + 1_000));
            records.push(stay(u, 9_000.0, 86_400 + base + 40_000));
        }
        let o = e.ingest_batch(&records, recog);
        assert_eq!(o.motif_days_closed, 2);
        let bytes = e.state_bytes();
        let restored = IngestEngine::from_state_bytes(&bytes).expect("restore");
        assert_eq!(restored.state_bytes(), bytes, "roundtrip is exact");
        assert_eq!(restored.motifs().table(), e.motifs().table());
        // Driving both forward closes the pending days identically.
        let more: Vec<_> = vec![
            stay("alice", 0.0, 2 * 86_400 + 1_000),
            stay("bob", 0.0, 2 * 86_400 + 1_000),
        ];
        let mut a = e;
        let mut b = restored;
        let oa = a.ingest_batch(&more, recog);
        let ob = b.ingest_batch(&more, recog);
        assert_eq!(oa, ob);
        assert_eq!(oa.motif_days_closed, 2);
        assert_eq!(a.state_bytes(), b.state_bytes());
    }

    #[test]
    fn state_roundtrip_is_byte_identical() {
        let mut e = IngestEngine::new(config()).expect("engine");
        // Populate everything: open detector windows, recognized stays,
        // transitions, quarantines, and the stay buffer.
        let mut records = Vec::new();
        for u in ["alice", "bob", "carol"] {
            for k in 0..5 {
                records.push(fix(u, (k % 2) as f64, 1_000 + k * 120));
            }
            records.push(stay(u, 9_000.0, 3_000));
            records.push(stay(u, 10.0, 8_000));
            records.push(stay(u, 10.0, 8_000)); // quarantined duplicate
        }
        e.ingest_batch(&records, recog);
        let bytes = e.state_bytes();
        let restored = IngestEngine::from_state_bytes(&bytes).expect("restore");
        assert_eq!(restored.state_bytes(), bytes, "roundtrip is exact");
        assert_eq!(restored.users_len(), e.users_len());
        assert_eq!(restored.stats(), e.stats());
        assert_eq!(restored.clock(), e.clock());
        assert_eq!(restored.window().counts(), e.window().counts());
        assert_eq!(restored.stays_snapshot(), e.stays_snapshot());
    }

    #[test]
    fn restored_engine_continues_identically() {
        let mut a = IngestEngine::new(config()).expect("engine");
        let warmup: Vec<_> = (0..20).map(|k| fix("u", (k % 3) as f64, k * 90)).collect();
        a.ingest_batch(&warmup, recog);
        let mut b = IngestEngine::from_state_bytes(&a.state_bytes()).expect("restore");
        // Drive both engines forward with the same batch: every observable
        // and the full state must stay in lockstep.
        let more: Vec<_> = (0..10).map(|k| fix("u", 9_000.0, 3_000 + k * 90)).collect();
        let oa = a.ingest_batch(&more, recog);
        let ob = b.ingest_batch(&more, recog);
        assert_eq!(oa, ob);
        assert_eq!(a.state_bytes(), b.state_bytes());
    }

    #[test]
    fn corrupt_state_is_a_typed_error() {
        let mut e = IngestEngine::new(config()).expect("engine");
        e.ingest_batch(&[stay("u", 0.0, 100)], recog);
        let good = e.state_bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            IngestEngine::from_state_bytes(&bad),
            Err(StreamError::Corrupt { .. })
        ));
        // Truncation at every prefix must be an error, never a panic.
        for cut in 0..good.len() {
            assert!(
                IngestEngine::from_state_bytes(&good[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(IngestEngine::from_state_bytes(&long).is_err());
    }

    #[test]
    fn config_validation_composes() {
        assert!(config().validate().is_ok());
        let mut bad = config();
        bad.max_users = 0;
        assert!(IngestEngine::new(bad).is_err());
        let mut bad = config();
        bad.user_ttl_secs = 0;
        assert!(IngestEngine::new(bad).is_err());
        let mut bad = config();
        bad.detector.theta_t = 0;
        assert!(IngestEngine::new(bad).is_err());
    }
}
