//! A deterministic sliding window of semantic-transition counts.
//!
//! The window is a ring of absolute-time-aligned buckets: event time `t`
//! lands in period `t.div_euclid(bucket_secs)`, and period `p` occupies ring
//! slot `p mod n_buckets`. Rotation is *lazy and event-driven*: a slot is
//! zeroed when an event from a newer period claims it, and stale slots (a
//! full rotation old because the clock jumped) are excluded at read time by
//! comparing their stored period against the clock's. There is no wall
//! clock and no background thread — the same event sequence always yields
//! the same window, which is what makes replays and tests reproducible.
//!
//! Events older than the window (relative to the *advancing* clock — the
//! maximum event time seen) are dropped and counted as late, never
//! retroactively inserted: the window only moves forward.

use crate::error::StreamError;
use pm_core::types::{Category, Timestamp};

/// Hard cap on ring slots — a memory guard, not a tuning knob.
const MAX_BUCKETS: usize = 4096;

/// Shape of one transition window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Total window span (seconds).
    pub window_secs: Timestamp,
    /// Bucket granularity (seconds); must divide `window_secs`.
    pub bucket_secs: Timestamp,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            window_secs: 24 * 3600,
            bucket_secs: 900,
        }
    }
}

impl WindowConfig {
    /// Rejects shapes that cannot form a ring.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.bucket_secs <= 0 {
            return Err(StreamError::config(format!(
                "bucket_secs {} must be positive",
                self.bucket_secs
            )));
        }
        if self.window_secs < self.bucket_secs || self.window_secs % self.bucket_secs != 0 {
            return Err(StreamError::config(format!(
                "window_secs {} must be a positive multiple of bucket_secs {}",
                self.window_secs, self.bucket_secs
            )));
        }
        if self.n_buckets() > MAX_BUCKETS {
            return Err(StreamError::config(format!(
                "window would need {} buckets (max {MAX_BUCKETS})",
                self.n_buckets()
            )));
        }
        Ok(())
    }

    fn n_buckets(&self) -> usize {
        (self.window_secs / self.bucket_secs) as usize
    }
}

/// Sliding `from → to` transition counts over the last `window_secs`
/// seconds of event time, bucketed at `bucket_secs` granularity.
#[derive(Debug, Clone)]
pub struct TransitionWindow {
    config: WindowConfig,
    /// Per-slot counts, indexed `from * Category::COUNT + to`.
    buckets: Vec<Vec<u64>>,
    /// The absolute period each slot currently holds.
    periods: Vec<Timestamp>,
    /// Maximum event time observed — the stream clock.
    clock: Option<Timestamp>,
    late_dropped: u64,
    recorded: u64,
}

impl TransitionWindow {
    /// An empty window of the given shape.
    pub fn new(config: WindowConfig) -> Result<TransitionWindow, StreamError> {
        config.validate()?;
        let n = config.n_buckets();
        Ok(TransitionWindow {
            config,
            buckets: vec![vec![0; Category::COUNT * Category::COUNT]; n],
            // i64::MIN doubles as "never written"; slot contents start at
            // zero, so a real period colliding with it is still correct.
            periods: vec![Timestamp::MIN; n],
            clock: None,
            late_dropped: 0,
            recorded: 0,
        })
    }

    /// Records one transition at event time `t`. Returns `false` when the
    /// event is older than the window (counted as late, not recorded).
    pub fn record(&mut self, from: Category, to: Category, t: Timestamp) -> bool {
        let b = self.config.bucket_secs;
        let n = self.periods.len() as i64;
        let period = t.div_euclid(b);
        self.clock = Some(self.clock.map_or(t, |c| c.max(t)));
        let clock_period = self.clock.unwrap_or(t).div_euclid(b);
        if clock_period.saturating_sub(period) >= n {
            self.late_dropped += 1;
            return false;
        }
        let slot = period.rem_euclid(n) as usize;
        if self.periods[slot] != period {
            // The slot last held a period at least one full rotation ago.
            self.buckets[slot].iter_mut().for_each(|c| *c = 0);
            self.periods[slot] = period;
        }
        self.buckets[slot][(from as usize) * Category::COUNT + to as usize] += 1;
        self.recorded += 1;
        true
    }

    /// Advances the stream clock to `to` without recording anything (a
    /// no-op when the clock is already at or past `to`).
    ///
    /// Equivalent to the clock movement a record at time `to` would cause:
    /// [`TransitionWindow::counts`] excludes slots by *age at read time* and
    /// [`TransitionWindow::record`] lazily reclaims stale slots, so bumping
    /// the clock alone is all a pure time advance needs. Sharded engines use
    /// this to bring untouched shards up to a batch's sealed clock.
    pub fn advance(&mut self, to: Timestamp) {
        self.clock = Some(self.clock.map_or(to, |c| c.max(to)));
    }

    /// Non-zero `(from, to, count)` triples currently inside the window,
    /// sorted by `(from, to)` index. Slots stranded by a clock jump are
    /// excluded without being touched.
    pub fn counts(&self) -> Vec<(Category, Category, u64)> {
        let Some(clock) = self.clock else {
            return Vec::new();
        };
        let clock_period = clock.div_euclid(self.config.bucket_secs);
        let n = self.periods.len() as i64;
        let mut totals = vec![0u64; Category::COUNT * Category::COUNT];
        for (slot, counts) in self.buckets.iter().enumerate() {
            let age = clock_period.saturating_sub(self.periods[slot]);
            if !(0..n).contains(&age) {
                continue;
            }
            for (i, &c) in counts.iter().enumerate() {
                totals[i] += c;
            }
        }
        let mut out = Vec::new();
        for from in 0..Category::COUNT {
            for to in 0..Category::COUNT {
                let c = totals[from * Category::COUNT + to];
                if c > 0 {
                    out.push((Category::from_index(from), Category::from_index(to), c));
                }
            }
        }
        out
    }

    /// Sum of all in-window counts.
    pub fn total(&self) -> u64 {
        self.counts().iter().map(|(_, _, c)| c).sum()
    }

    /// The stream clock: the latest event time seen.
    pub fn as_of(&self) -> Option<Timestamp> {
        self.clock
    }

    /// Events dropped for arriving older than the window.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Events recorded since construction (a lifetime tally, not the
    /// current window content — see [`TransitionWindow::total`]).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The window shape.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Persistence view: per-slot counts, per-slot periods, clock, and the
    /// two lifetime tallies, in that order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(&self) -> (&[Vec<u64>], &[Timestamp], Option<Timestamp>, u64, u64) {
        (
            &self.buckets,
            &self.periods,
            self.clock,
            self.late_dropped,
            self.recorded,
        )
    }

    /// Rebuilds a window from persisted parts, re-validating the shape and
    /// the slot-count geometry so corrupt state cannot build a ring that
    /// later indexes out of bounds.
    pub(crate) fn from_parts(
        config: WindowConfig,
        buckets: Vec<Vec<u64>>,
        periods: Vec<Timestamp>,
        clock: Option<Timestamp>,
        late_dropped: u64,
        recorded: u64,
    ) -> Result<TransitionWindow, StreamError> {
        config.validate()?;
        if buckets.len() != config.n_buckets() || periods.len() != config.n_buckets() {
            return Err(StreamError::corrupt(format!(
                "window has {} bucket slots and {} period slots, config needs {}",
                buckets.len(),
                periods.len(),
                config.n_buckets()
            )));
        }
        if let Some(bad) = buckets
            .iter()
            .find(|b| b.len() != Category::COUNT * Category::COUNT)
        {
            return Err(StreamError::corrupt(format!(
                "window slot holds {} counts, expected {}",
                bad.len(),
                Category::COUNT * Category::COUNT
            )));
        }
        Ok(TransitionWindow {
            config,
            buckets,
            periods,
            clock,
            late_dropped,
            recorded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransitionWindow {
        // 4 buckets of 100 s = a 400 s window.
        TransitionWindow::new(WindowConfig {
            window_secs: 400,
            bucket_secs: 100,
        })
        .expect("config")
    }

    const R: Category = Category::Residence;
    const B: Category = Category::Business;

    #[test]
    fn config_validation() {
        assert!(WindowConfig::default().validate().is_ok());
        for (w, b) in [
            (0, 0),
            (100, 0),
            (100, -1),
            (50, 100),
            (150, 100),
            (900_000_000, 100),
        ] {
            let c = WindowConfig {
                window_secs: w,
                bucket_secs: b,
            };
            assert!(c.validate().is_err(), "{c:?}");
            assert!(TransitionWindow::new(c).is_err());
        }
    }

    #[test]
    fn counts_accumulate_and_expire() {
        let mut w = tiny();
        assert!(w.record(R, B, 10));
        assert!(w.record(R, B, 120));
        assert_eq!(w.counts(), vec![(R, B, 2)]);
        // Clock moves to t=450: bucket 0 (period 0) is now 4 periods old
        // and rotates out; bucket holding t=120 remains.
        assert!(w.record(B, R, 450));
        assert_eq!(w.counts(), vec![(R, B, 1), (B, R, 1)]);
        assert_eq!(w.total(), 2);
        assert_eq!(w.as_of(), Some(450));
    }

    #[test]
    fn late_events_are_dropped_not_inserted() {
        let mut w = tiny();
        assert!(w.record(R, B, 1000));
        // 1000 - 500 spans > 4 buckets back: late.
        assert!(!w.record(R, B, 500));
        assert_eq!(w.late_dropped(), 1);
        assert_eq!(w.total(), 1);
        // Just inside the window is fine.
        assert!(w.record(R, B, 700));
        assert_eq!(w.total(), 2);
    }

    #[test]
    fn clock_jump_strands_then_excludes_old_slots() {
        let mut w = tiny();
        assert!(w.record(R, B, 0));
        // A huge jump: the old slot is stale but never rewritten (its ring
        // position isn't reclaimed by these periods). Reads must exclude it.
        assert!(w.record(B, R, 1_000_000));
        assert_eq!(w.counts(), vec![(B, R, 1)]);
    }

    #[test]
    fn same_events_same_window() {
        let events = [(R, B, 10), (B, R, 250), (R, R, 330), (B, B, 401)];
        let mut w1 = tiny();
        let mut w2 = tiny();
        for (f, t, at) in events {
            w1.record(f, t, at);
            w2.record(f, t, at);
        }
        assert_eq!(w1.counts(), w2.counts());
        assert_eq!(w1.recorded(), 4);
    }

    #[test]
    fn non_monotonic_times_rotate_deterministically() {
        // Hostile clock: timestamps arrive shuffled. The window clock only
        // advances (max event time), and every in-window event lands in the
        // bucket of its own period — so any arrival order of the same event
        // set yields the same counts.
        let events = [
            (R, B, 350),
            (B, R, 120),
            (R, R, 10),
            (B, B, 399),
            (R, B, 200),
        ];
        let mut shuffled = tiny();
        for (f, t, at) in events {
            shuffled.record(f, t, at);
        }
        let mut sorted_w = tiny();
        let mut sorted = events;
        sorted.sort_by_key(|(_, _, at)| *at);
        for (f, t, at) in sorted {
            sorted_w.record(f, t, at);
        }
        assert_eq!(shuffled.counts(), sorted_w.counts());
        assert_eq!(shuffled.as_of(), Some(399));
        assert_eq!(shuffled.recorded(), 5);
        assert_eq!(shuffled.late_dropped(), 0);
    }

    #[test]
    fn duplicate_timestamps_all_count() {
        let mut w = tiny();
        for _ in 0..5 {
            assert!(w.record(R, B, 42));
        }
        assert_eq!(w.counts(), vec![(R, B, 5)]);
        assert_eq!(w.recorded(), 5);
    }

    #[test]
    fn far_future_outlier_then_backfill_accounts_every_drop() {
        let mut w = tiny();
        assert!(w.record(R, B, 100));
        // An outlier slams the clock eight millennia forward; everything
        // already held strands, and all backfill is now late.
        assert!(w.record(B, B, 253_000_000_000));
        for t in [150, 200, 250] {
            assert!(!w.record(R, B, t), "t={t} must be late");
        }
        assert_eq!(w.late_dropped(), 3);
        assert_eq!(w.counts(), vec![(B, B, 1)], "only the outlier is in-window");
        // No silent loss: recorded + late_dropped covers every record call.
        assert_eq!(w.recorded() + w.late_dropped(), 5);
    }

    #[test]
    fn timestamp_extremes_do_not_panic() {
        let mut w = tiny();
        assert!(w.record(R, B, Timestamp::MIN));
        assert!(w.record(R, B, Timestamp::MAX));
        // After the jump to MAX, MIN-era events are late, not a crash.
        assert!(!w.record(R, B, Timestamp::MIN + 1));
        assert!(!w.record(R, B, 0));
        assert_eq!(w.late_dropped(), 2);
        assert_eq!(w.total(), 1, "only the MAX event is in-window");
    }

    #[test]
    fn hostile_clock_preserves_count_conservation() {
        // Every record call ends as exactly one of {recorded, late_dropped},
        // under a deliberately nasty schedule of jumps and backfills.
        let mut w = tiny();
        let times = [
            0, 10_000, 5, 10_050, 9_999, 10_050, 500_000, 499_700, 1, 500_399,
        ];
        for (i, t) in times.into_iter().enumerate() {
            let from = if i % 2 == 0 { R } else { B };
            w.record(from, B, t);
        }
        assert_eq!(
            w.recorded() + w.late_dropped(),
            times.len() as u64,
            "no call vanished"
        );
        assert!(w.total() <= w.recorded());
    }

    #[test]
    fn advance_matches_a_recorded_clock_movement() {
        // Two windows, same events; one learns the final clock from a
        // recorded event, the other from advance(). Same visible counts,
        // same as_of.
        let mut by_record = tiny();
        let mut by_advance = tiny();
        for w in [&mut by_record, &mut by_advance] {
            w.record(R, B, 100);
            w.record(R, B, 150);
        }
        by_record.record(B, R, 5_000);
        by_advance.advance(5_000);
        by_advance.record(B, R, 5_000);
        assert_eq!(by_record.counts(), by_advance.counts());
        assert_eq!(by_record.as_of(), by_advance.as_of());
        // Advancing backwards is a no-op.
        by_advance.advance(10);
        assert_eq!(by_advance.as_of(), Some(5_000));
    }

    #[test]
    fn negative_times_work() {
        let mut w = tiny();
        assert!(w.record(R, B, -350));
        assert!(w.record(R, B, -10));
        assert_eq!(w.total(), 2);
        assert!(w.record(R, B, 100)); // pushes -350 out
        assert_eq!(w.total(), 2);
    }
}
