//! Kill-and-restart recovery parity for the ingest WAL.
//!
//! The property under test: after a process death at *any* point in the
//! stream — including with a torn or corrupted segment tail — recovering
//! from the WAL (newest checkpoint + replay of the clean batch prefix)
//! yields an engine whose **entire serialized state is byte-identical** to
//! an engine that ingested exactly that durably-logged prefix without ever
//! crashing. Detector buffers, window ring, per-user clocks, quarantine
//! tallies, and the re-mining stay buffer all participate via
//! [`IngestEngine::state_bytes`].

use pm_core::types::{Category, GpsPoint};
use pm_geo::LocalPoint;
use pm_stream::{
    EngineConfig, IngestEngine, IngestRecord, StreamParams, Wal, WalConfig, WindowConfig,
};
use pm_synth::{corrupt_bytes, ByteCorruption};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-wal-recovery-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> EngineConfig {
    EngineConfig {
        detector: StreamParams {
            theta_d: 100.0,
            theta_t: 300,
            max_pending: 64,
        },
        window: WindowConfig {
            window_secs: 86_400,
            bucket_secs: 3_600,
        },
        max_users: 6,
        user_ttl_secs: 50_000,
        max_stay_buffer: 40,
    }
}

/// Deterministic recognizer shared by every engine in these tests.
fn recog(pos: LocalPoint) -> Option<Category> {
    if !pos.x.is_finite() {
        return None;
    }
    match (pos.x / 3_000.0) as i64 {
        0 => Some(Category::Residence),
        1 => Some(Category::Business),
        2 => Some(Category::Shop),
        _ => None,
    }
}

type Batch = Vec<(String, IngestRecord)>;

/// The sealed clock a batch is logged under: the running maximum event
/// time. These tests replay with the classic record-by-record clock on
/// both sides, so the seal only has to be well-formed, not load-bearing.
fn seal_of(prev: Option<i64>, batch: &Batch) -> i64 {
    let mut seal = prev.unwrap_or(i64::MIN);
    for (_, r) in batch {
        let t = match r {
            IngestRecord::Fix(p) | IngestRecord::Stay(p) => p.time,
        };
        seal = seal.max(t);
    }
    seal
}

/// Expands proptest-generated tuples into batches of ingest records with a
/// mostly-advancing global clock (occasional zero steps produce per-user
/// duplicate timestamps — the quarantine path must replay exactly too).
fn build_batches(raw: &[(u8, u8, u8, u16)], batch_size: usize) -> Vec<Batch> {
    let mut t = 0i64;
    let mut records = Vec::with_capacity(raw.len());
    for &(user, is_stay, cell, dt) in raw {
        t += dt as i64; // dt may be 0: same-user duplicates quarantine
        let user = format!("user-{}", user % 5);
        let point = GpsPoint::new(LocalPoint::new((cell % 4) as f64 * 3_000.0, 0.0), t);
        let record = if is_stay == 1 {
            IngestRecord::Stay(point)
        } else {
            IngestRecord::Fix(point)
        };
        records.push((user, record));
    }
    records
        .chunks(batch_size.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Writes `batches` through a WAL-fronted engine, checkpointing every
/// `ckpt_every` batches, then "dies" (drops everything without shutdown).
/// Returns how many batches the last checkpoint covered.
fn run_and_die(dir: &PathBuf, batches: &[Batch], ckpt_every: usize) -> usize {
    let (mut wal, rec) = Wal::open(WalConfig::new(dir)).expect("open fresh wal");
    assert!(rec.batches.is_empty(), "dir must start empty");
    let mut engine = IngestEngine::new(config()).expect("engine");
    let mut covered = 0;
    let mut seal = None;
    for (i, batch) in batches.iter().enumerate() {
        let s = seal_of(seal, batch);
        seal = Some(s);
        wal.append_batch(s, batch).expect("append");
        engine.ingest_batch(batch, recog);
        if (i + 1) % ckpt_every == 0 {
            wal.checkpoint(&engine.state_bytes()).expect("checkpoint");
            covered = i + 1;
        }
    }
    covered // wal and engine dropped here: the kill
}

/// Recovers an engine from the WAL directory: checkpoint state + replay.
fn recover(dir: &PathBuf) -> (IngestEngine, pm_stream::Recovery) {
    let (_wal, rec) = Wal::open(WalConfig::new(dir)).expect("reopen");
    let mut engine = match &rec.checkpoint {
        Some(state) => IngestEngine::from_state_bytes(state).expect("checkpoint state"),
        None => IngestEngine::new(config()).expect("engine"),
    };
    for batch in &rec.batches {
        engine.ingest_batch(&batch.records, recog);
    }
    (engine, rec)
}

/// An engine that ingested `batches` start-to-finish, never crashing.
fn uninterrupted(batches: &[Batch]) -> IngestEngine {
    let mut engine = IngestEngine::new(config()).expect("engine");
    for batch in batches {
        engine.ingest_batch(batch, recog);
    }
    engine
}

/// The last segment file in the directory, by sequence number.
fn last_segment(dir: &PathBuf) -> Option<PathBuf> {
    fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .max()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean kill: everything appended is in the page cache (survives
    /// process death), so recovery must reproduce the full stream's state
    /// byte for byte.
    #[test]
    fn kill_and_restart_state_is_byte_identical(
        raw in prop::collection::vec((0u8..5, 0u8..2, 0u8..6, 0u16..700), 1..120),
        batch_size in 1usize..9,
        ckpt_every in 1usize..5,
    ) {
        let dir = scratch();
        let batches = build_batches(&raw, batch_size);
        run_and_die(&dir, &batches, ckpt_every);
        let (recovered, rec) = recover(&dir);
        prop_assert_eq!(rec.report.torn_frames, 0);
        prop_assert_eq!(rec.report.corrupt_frames, 0);
        let reference = uninterrupted(&batches);
        prop_assert_eq!(recovered.state_bytes(), reference.state_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Torn/corrupted tail: recovery keeps the longest clean prefix of
    /// batches, and its state is byte-identical to an uninterrupted run
    /// over exactly that prefix.
    #[test]
    fn corrupted_tail_recovers_a_byte_identical_prefix(
        raw in prop::collection::vec((0u8..5, 0u8..2, 0u8..6, 0u16..700), 8..120),
        batch_size in 1usize..7,
        ckpt_every in 2usize..6,
        seed in 0u64..u64::MAX,
        mode_idx in 0usize..4,
    ) {
        let mode = [
            ByteCorruption::BitFlip,
            ByteCorruption::Truncate,
            ByteCorruption::GarbageRun,
            ByteCorruption::TrailingGarbage,
        ][mode_idx];
        let dir = scratch();
        let batches = build_batches(&raw, batch_size);
        let covered = run_and_die(&dir, &batches, ckpt_every);
        // Maul the newest segment (the post-checkpoint tail), if any.
        if let Some(seg) = last_segment(&dir) {
            let bytes = fs::read(&seg).expect("read segment");
            fs::write(&seg, corrupt_bytes(&bytes, mode, seed)).expect("corrupt");
        }
        let (recovered, rec) = recover(&dir);
        // Recovery yields checkpoint-covered batches + some clean prefix of
        // what followed; never more than was written.
        let n = covered + rec.batches.len();
        prop_assert!(n <= batches.len(), "recovered {} of {}", n, batches.len());
        let reference = uninterrupted(&batches[..n]);
        prop_assert_eq!(recovered.state_bytes(), reference.state_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Idempotent re-send: per-user strictly-increasing clocks make the
    /// already-ingested prefix quarantine on a full re-send, so "replay the
    /// whole stream again after recovery" converges to the same live state
    /// (window, users, clock, stay buffer) as a run that never crashed.
    /// This is the invariant the CI crash-recovery smoke leans on.
    #[test]
    fn full_resend_after_recovery_converges(
        raw in prop::collection::vec((0u8..5, 0u8..2, 0u8..6, 1u16..700), 8..80),
        batch_size in 1usize..7,
        ckpt_every in 2usize..5,
    ) {
        let dir = scratch();
        let batches = build_batches(&raw, batch_size);
        run_and_die(&dir, &batches, ckpt_every);
        let (mut recovered, _) = recover(&dir);
        for batch in &batches {
            recovered.ingest_batch(batch, recog);
        }
        let mut reference = uninterrupted(&batches);
        for batch in &batches {
            reference.ingest_batch(batch, recog);
        }
        // Lifetime tallies legitimately differ (the recovered engine saw
        // fewer duplicate sends), so compare the live state, not stats.
        prop_assert_eq!(recovered.window().counts(), reference.window().counts());
        prop_assert_eq!(recovered.users_len(), reference.users_len());
        prop_assert_eq!(recovered.clock(), reference.clock());
        prop_assert_eq!(recovered.stays_snapshot(), reference.stays_snapshot());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_without_checkpoint_replays_everything() {
    let dir = scratch();
    let raw: Vec<(u8, u8, u8, u16)> = (0..40)
        .map(|i| (i % 5, u8::from(i % 3 == 0), i % 6, 90))
        .collect();
    let batches = build_batches(&raw, 4);
    // ckpt_every larger than the batch count: no checkpoint is ever cut.
    let covered = run_and_die(&dir, &batches, batches.len() + 1);
    assert_eq!(covered, 0);
    let (recovered, rec) = recover(&dir);
    assert!(rec.checkpoint.is_none());
    assert_eq!(rec.batches.len(), batches.len());
    assert_eq!(
        recovered.state_bytes(),
        uninterrupted(&batches).state_bytes()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_itself_crash_safe() {
    // Recover, ingest more, die again, recover again: state still matches
    // an uninterrupted run over the concatenated stream.
    let dir = scratch();
    let raw_a: Vec<(u8, u8, u8, u16)> = (0..30)
        .map(|i| (i % 4, u8::from(i % 2 == 0), i % 5, 120))
        .collect();
    let batches_a = build_batches(&raw_a, 3);
    run_and_die(&dir, &batches_a, 2);

    // Second generation: recover, then keep streaming through a new WAL
    // handle (same dir), checkpointing as it goes.
    let (_wal_tmp, rec) = Wal::open(WalConfig::new(&dir)).expect("reopen");
    drop(_wal_tmp);
    let (mut engine, _) = {
        let mut engine = match &rec.checkpoint {
            Some(state) => IngestEngine::from_state_bytes(state).expect("state"),
            None => IngestEngine::new(config()).expect("engine"),
        };
        for batch in &rec.batches {
            engine.ingest_batch(&batch.records, recog);
        }
        (engine, rec)
    };
    let mut t0 = 30 * 120 + 1;
    let mut batches_b = Vec::new();
    for k in 0..6 {
        let mut batch = Vec::new();
        for j in 0..4 {
            t0 += 100;
            batch.push((
                format!("user-{}", (k + j) % 4),
                IngestRecord::Stay(GpsPoint::new(
                    LocalPoint::new(((j % 3) as f64) * 3_000.0, 0.0),
                    t0,
                )),
            ));
        }
        batches_b.push(batch);
    }
    {
        let (mut wal, _) = Wal::open(WalConfig::new(&dir)).expect("gen2 wal");
        let mut seal = engine.clock();
        for (i, batch) in batches_b.iter().enumerate() {
            let s = seal_of(seal, batch);
            seal = Some(s);
            wal.append_batch(s, batch).expect("append");
            engine.ingest_batch(batch, recog);
            if i == 2 {
                wal.checkpoint(&engine.state_bytes()).expect("checkpoint");
            }
        }
    } // die again

    let (recovered, _) = recover(&dir);
    let mut all = batches_a.clone();
    all.extend(batches_b.iter().cloned());
    assert_eq!(recovered.state_bytes(), uninterrupted(&all).state_bytes());
    let _ = fs::remove_dir_all(&dir);
}
