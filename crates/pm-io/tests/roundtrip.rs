//! Round-trip and end-to-end tests: the synthetic corpus serialized to CSV,
//! read back, and mined — proving the ingestion path carries everything the
//! pipeline needs.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::{GeoPoint, Projection};
use pm_io::{
    journeys_to_trajectories, read_journeys, read_pois, write_journeys, write_pois, JourneyRecord,
};
use pm_synth::{CityConfig, CityModel, TaxiCorpus};
use proptest::prelude::*;

fn proj() -> Projection {
    Projection::new(GeoPoint::new(121.4737, 31.2304))
}

#[test]
fn synthetic_corpus_roundtrips_and_mines() {
    let cfg = CityConfig::tiny(99);
    let city = CityModel::generate(&cfg);
    let pois = pm_synth::poi::generate_pois(&city);
    let corpus = TaxiCorpus::generate(&city);

    // Serialize through CSV and back.
    let poi_text = write_pois(&pois, &proj());
    let pois_back = read_pois(&poi_text, &proj()).unwrap();
    assert_eq!(pois.len(), pois_back.len());

    let records: Vec<JourneyRecord> = corpus
        .journeys
        .iter()
        .map(|j| JourneyRecord {
            pickup: j.pickup,
            dropoff: j.dropoff,
            card: j.passenger,
        })
        .collect();
    let journey_text = write_journeys(&records, &proj());
    let records_back = read_journeys(&journey_text, &proj()).unwrap();
    assert_eq!(records.len(), records_back.len());

    // Link and mine from the deserialized data.
    let trajectories = journeys_to_trajectories(&records_back);
    assert_eq!(trajectories.len(), corpus.semantic_trajectories().len());

    let params = MinerParams {
        sigma: 20,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&trajectories);
    let csd = CitySemanticDiagram::build(&pois_back, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, trajectories, &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    assert!(
        !patterns.is_empty(),
        "CSV-ingested corpus must still mine patterns"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// POI positions survive a CSV round trip to sub-decimeter precision.
    #[test]
    fn poi_roundtrip_precision(
        x in -20_000.0..20_000.0f64,
        y in -20_000.0..20_000.0f64,
        cat in 0usize..15,
    ) {
        let p = Poi::new(9, pm_geo::LocalPoint::new(x, y), Category::from_index(cat));
        let text = write_pois(&[p], &proj());
        let back = read_pois(&text, &proj()).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert!(back[0].pos.distance(&p.pos) < 0.1);
        prop_assert_eq!(back[0].category, p.category);
    }

    /// Journey linking never loses or invents stay points.
    #[test]
    fn linking_preserves_stay_count(
        n_anon in 0usize..20,
        n_carded in 0usize..20,
    ) {
        let mut records = Vec::new();
        for i in 0..n_anon {
            records.push(JourneyRecord {
                pickup: GpsPoint::new(pm_geo::LocalPoint::new(i as f64, 0.0), i as i64 * 100),
                dropoff: GpsPoint::new(pm_geo::LocalPoint::new(i as f64, 10.0), i as i64 * 100 + 50),
                card: None,
            });
        }
        for i in 0..n_carded {
            records.push(JourneyRecord {
                pickup: GpsPoint::new(pm_geo::LocalPoint::new(i as f64, 0.0), i as i64 * 1_000),
                dropoff: GpsPoint::new(pm_geo::LocalPoint::new(i as f64, 10.0), i as i64 * 1_000 + 500),
                card: Some(1), // one passenger, one day -> one chain
            });
        }
        let trajs = journeys_to_trajectories(&records);
        let total_stays: usize = trajs.iter().map(|t| t.len()).sum();
        // Every journey contributes its drop-off; each trajectory adds one
        // pick-up.
        prop_assert_eq!(total_stays, records.len() + trajs.len());
        for t in &trajs {
            prop_assert!(t.stays.windows(2).all(|w| w[0].time <= w[1].time));
        }
    }
}
