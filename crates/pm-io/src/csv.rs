//! A minimal CSV layer: comma-separated, no quoting (the pipeline's fields
//! are numeric or controlled identifiers), header-aware, line-exact errors.

use crate::error::IoError;

/// Splits one CSV line into trimmed fields.
pub(crate) fn fields(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

/// Parses a float field with a line-exact error.
pub(crate) fn parse_f64(field: &str, line: usize, name: &str) -> Result<f64, IoError> {
    field
        .parse::<f64>()
        .map_err(|_| IoError::parse(line, format!("bad {name}: '{field}'")))
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(IoError::parse(
                    line,
                    format!("non-finite {name}: '{field}'"),
                ))
            }
        })
}

/// Parses an integer field with a line-exact error.
pub(crate) fn parse_i64(field: &str, line: usize, name: &str) -> Result<i64, IoError> {
    field
        .parse::<i64>()
        .map_err(|_| IoError::parse(line, format!("bad {name}: '{field}'")))
}

/// Parses an unsigned field with a line-exact error.
pub(crate) fn parse_u64(field: &str, line: usize, name: &str) -> Result<u64, IoError> {
    field
        .parse::<u64>()
        .map_err(|_| IoError::parse(line, format!("bad {name}: '{field}'")))
}

/// Iterator over the non-empty data lines of a CSV body (see
/// [`data_lines`]). Named so lazy line streams can hold one in a field.
pub(crate) struct DataLines<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    header_first: &'a str,
}

impl<'a> Iterator for DataLines<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<Self::Item> {
        for (i, line) in self.lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if i == 0 {
                let first = fields(trimmed).first().map(|f| f.to_ascii_lowercase());
                if first.as_deref() == Some(self.header_first) {
                    continue;
                }
            }
            return Some((i + 1, trimmed));
        }
        None
    }
}

/// Iterates non-empty data lines of a CSV body, skipping the header when
/// its first field matches `header_first` case-insensitively. Yields
/// `(line_number, line)` with 1-based numbering including the header.
pub(crate) fn data_lines<'a>(text: &'a str, header_first: &'a str) -> DataLines<'a> {
    DataLines {
        lines: text.lines().enumerate(),
        header_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_splitting_trims() {
        assert_eq!(fields(" a , b,c "), vec!["a", "b", "c"]);
    }

    #[test]
    fn numeric_parsing_errors_carry_line_numbers() {
        assert!(parse_f64("1.5", 1, "lon").is_ok());
        let e = parse_f64("abc", 7, "lon").unwrap_err();
        assert!(e.to_string().contains("line 7"));
        let e = parse_f64("NaN", 2, "lat").unwrap_err();
        assert!(e.to_string().contains("non-finite"));
        assert!(parse_i64("-3", 1, "t").is_ok());
        assert!(parse_u64("-3", 1, "card").is_err());
    }

    #[test]
    fn header_skipping() {
        let text = "id,lon,lat\n1,2,3\n\n2,3,4\n";
        let rows: Vec<_> = data_lines(text, "id").collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (2, "1,2,3"));
        assert_eq!(rows[1], (4, "2,3,4"));
        // No header: first line is data.
        let rows: Vec<_> = data_lines("5,6,7\n", "id").collect();
        assert_eq!(rows, vec![(1, "5,6,7")]);
    }
}
