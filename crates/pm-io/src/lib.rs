//! Data ingestion and serialization for the Pervasive Miner stack.
//!
//! Real deployments feed the pipeline from a POI table and a taxi journey
//! log. This crate reads and writes both as plain CSV (no external parser
//! dependencies), converting between WGS-84 coordinates and the pipeline's
//! local meter frame through a [`Projection`](pm_geo::Projection):
//!
//! - POIs: `id,lon,lat,category[,minor]` — [`read_pois`] / [`write_pois`].
//! - Journeys: `pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,
//!   dropoff_t[,card]` — [`read_journeys`] / [`write_journeys`], with
//!   [`journeys_to_trajectories`] performing the §5 linking (carded
//!   passengers' same-day journeys chain into multi-stay trajectories).
//!
//! Category names accept both the Table 3 display names ("Shop & Market")
//! and compact snake-case aliases ("shop").

pub mod csv;
pub mod error;
pub mod journeys;
pub mod pois;

pub use error::IoError;
pub use journeys::{journeys_to_trajectories, read_journeys, write_journeys, JourneyRecord};
pub use pois::{parse_category, read_pois, write_pois};
