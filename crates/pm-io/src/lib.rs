//! Data ingestion and serialization for the Pervasive Miner stack.
//!
//! Real deployments feed the pipeline from a POI table and a taxi journey
//! log. This crate reads and writes both as plain CSV (no external parser
//! dependencies), converting between WGS-84 coordinates and the pipeline's
//! local meter frame through a [`Projection`](pm_geo::Projection):
//!
//! - POIs: `id,lon,lat,category[,minor]` — [`read_pois`] / [`write_pois`].
//! - Journeys: `pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,
//!   dropoff_t[,card]` — [`read_journeys`] / [`write_journeys`], with
//!   [`journeys_to_trajectories`] performing the §5 linking (carded
//!   passengers' same-day journeys chain into multi-stay trajectories).
//!
//! Category names accept both the Table 3 display names ("Shop & Market")
//! and compact snake-case aliases ("shop").
//!
//! Both readers come in a strict flavour (fail fast on the first malformed
//! record, with a line-exact [`IoError`]) and a `_with` flavour taking an
//! [`IngestMode`]: lenient ingestion skips malformed records and returns a
//! capped [`QuarantineReport`] accounting for every dropped line.

pub mod csv;
pub mod error;
pub mod journeys;
pub mod pois;
pub mod quarantine;

pub use error::IoError;
pub use journeys::{
    journeys_to_trajectories, read_journeys, read_journeys_observed, read_journeys_threads,
    read_journeys_with, write_journeys, JourneyRecord, JourneyStream,
};
pub use pois::{
    parse_category, read_pois, read_pois_observed, read_pois_threads, read_pois_with, write_pois,
};
pub use quarantine::{IngestMode, QuarantineReport};

/// WGS-84 anchor of the paper's deployment frame: central Shanghai, where
/// the evaluation corpus was collected. Every tool that exchanges
/// geographic CSV data (the CLI, the example exporter, the query service)
/// shares this origin so their local meter frames coincide.
pub const DEFAULT_ORIGIN: pm_geo::GeoPoint = pm_geo::GeoPoint::new(121.4737, 31.2304);

/// The projection anchored at [`DEFAULT_ORIGIN`].
pub fn default_projection() -> pm_geo::Projection {
    pm_geo::Projection::new(DEFAULT_ORIGIN)
}
