//! Taxi journey log I/O and the §5 linking step.
//!
//! Columns: `pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,
//! dropoff_t[,card]` — the exact shape of the paper's input data (pick-up
//! and drop-off records with payment-card ids for 20% of passengers).

use crate::csv::{data_lines, fields, parse_f64, parse_i64, parse_u64};
use crate::error::IoError;
use crate::quarantine::{IngestMode, QuarantineReport};
use pm_core::types::{GpsPoint, SemanticTrajectory, StayPoint, Timestamp, DAY_SECS};
use pm_geo::{GeoPoint, Projection};
use std::fmt::Write as _;

/// One journey record in the local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JourneyRecord {
    /// Pick-up fix.
    pub pickup: GpsPoint,
    /// Drop-off fix.
    pub dropoff: GpsPoint,
    /// Payment-card id when present.
    pub card: Option<u64>,
}

/// Parses one data line into a [`JourneyRecord`].
fn parse_journey(
    line_no: usize,
    line: &str,
    projection: &Projection,
) -> Result<JourneyRecord, IoError> {
    let f = fields(line);
    if f.len() < 6 {
        return Err(IoError::parse(
            line_no,
            format!("expected >= 6 fields, got {}", f.len()),
        ));
    }
    let point = |lon: &str, lat: &str, t: &str, what: &str| -> Result<GpsPoint, IoError> {
        let lon = parse_f64(lon, line_no, &format!("{what} lon"))?;
        let lat = parse_f64(lat, line_no, &format!("{what} lat"))?;
        let geo = GeoPoint::new(lon, lat);
        if !geo.is_valid() {
            return Err(IoError::parse(
                line_no,
                format!("invalid {what} coordinate"),
            ));
        }
        Ok(GpsPoint::new(
            projection.to_local(geo),
            parse_i64(t, line_no, &format!("{what} t"))?,
        ))
    };
    let pickup = point(f[0], f[1], f[2], "pickup")?;
    let dropoff = point(f[3], f[4], f[5], "dropoff")?;
    if dropoff.time <= pickup.time {
        return Err(IoError::parse(
            line_no,
            "dropoff time must follow pickup time",
        ));
    }
    let card = if f.len() > 6 && !f[6].is_empty() {
        Some(parse_u64(f[6], line_no, "card")?)
    } else {
        None
    };
    Ok(JourneyRecord {
        pickup,
        dropoff,
        card,
    })
}

/// A lazy line-at-a-time reader over journey CSV text: each item is one
/// parsed [`JourneyRecord`] or the line-exact [`IoError`] for that record.
///
/// Unlike [`read_journeys_with`], nothing is buffered — the CLI `replay`
/// command walks a whole log this way while batching records onto the wire,
/// deciding per line whether to skip or abort. Collecting the `Ok` items
/// (and counting the `Err` ones) reproduces a lenient batch read exactly.
pub struct JourneyStream<'a> {
    lines: crate::csv::DataLines<'a>,
    projection: &'a Projection,
}

impl<'a> JourneyStream<'a> {
    /// Opens a stream over `text`, projecting into `projection`'s frame.
    pub fn new(text: &'a str, projection: &'a Projection) -> JourneyStream<'a> {
        JourneyStream {
            lines: data_lines(text, "pickup_lon"),
            projection,
        }
    }
}

impl Iterator for JourneyStream<'_> {
    type Item = Result<JourneyRecord, IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        let (line_no, line) = self.lines.next()?;
        Some(parse_journey(line_no, line, self.projection))
    }
}

/// Reads a journey log from CSV text, projecting into the local frame.
/// Rejects records whose drop-off does not strictly follow the pick-up.
/// Fails fast on the first malformed record — the strict form of
/// [`read_journeys_with`].
pub fn read_journeys(text: &str, projection: &Projection) -> Result<Vec<JourneyRecord>, IoError> {
    read_journeys_with(text, projection, IngestMode::Strict).map(|(journeys, _)| journeys)
}

/// Reads a journey log under an explicit [`IngestMode`]. In lenient mode
/// malformed records are quarantined instead of failing the read; the
/// report accounts for every dropped line.
pub fn read_journeys_with(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
) -> Result<(Vec<JourneyRecord>, QuarantineReport), IoError> {
    read_journeys_threads(text, projection, mode, 1)
}

/// [`read_journeys_with`] across `threads` workers (`0` = all cores).
///
/// Lines parse independently; results fold back in line order, so the log,
/// quarantine report, and (in strict mode) the reported first error are all
/// identical to the serial read. The only parallel-path difference is wasted
/// work: a strict parse no longer stops at the first malformed line.
pub fn read_journeys_threads(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
    threads: usize,
) -> Result<(Vec<JourneyRecord>, QuarantineReport), IoError> {
    let lines: Vec<(usize, &str)> = data_lines(text, "pickup_lon").collect();
    let parsed = pm_runtime::par_map(&lines, threads, |&(line_no, line)| {
        parse_journey(line_no, line, projection)
    });
    let mut out = Vec::new();
    let mut report = QuarantineReport::default();
    for result in parsed {
        match result {
            Ok(j) => out.push(j),
            Err(e) => match mode {
                IngestMode::Strict => return Err(e),
                IngestMode::Lenient => report.quarantine(e),
            },
        }
    }
    Ok((out, report))
}

/// [`read_journeys_threads`] under observation: the read is timed as an
/// `ingest.journeys` span, parsed lines are counted under
/// `io.journey_lines_read`, and lenient-mode drops land in the
/// `quarantine.journeys_dropped` counter (registered at zero so clean runs
/// still report it). The parsed log is identical to an unobserved read.
pub fn read_journeys_observed(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
    threads: usize,
    obs: &pm_obs::Obs,
) -> Result<(Vec<JourneyRecord>, QuarantineReport), IoError> {
    let span = obs.span("ingest.journeys");
    let result = read_journeys_threads(text, projection, mode, threads);
    span.finish();
    if let Ok((journeys, report)) = &result {
        obs.incr(
            "io.journey_lines_read",
            (journeys.len() + report.dropped()) as u64,
        );
        obs.incr("quarantine.journeys_dropped", report.dropped() as u64);
    }
    result
}

/// Writes a journey log as CSV text (with header).
pub fn write_journeys(journeys: &[JourneyRecord], projection: &Projection) -> String {
    let mut out =
        String::from("pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,dropoff_t,card\n");
    for j in journeys {
        let p = projection.to_geo(j.pickup.pos);
        let d = projection.to_geo(j.dropoff.pos);
        let card = j.card.map(|c| c.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{:.7},{:.7},{},{:.7},{:.7},{},{}",
            p.lon, p.lat, j.pickup.time, d.lon, d.lat, j.dropoff.time, card
        );
    }
    out
}

/// The §5 linking step: carded passengers' journeys within one day chain
/// into a multi-stay trajectory (first pick-up, then every drop-off, in
/// time order); anonymous journeys become two-stay trajectories. Stay
/// points are untagged — semantic recognition fills the tags in.
pub fn journeys_to_trajectories(journeys: &[JourneyRecord]) -> Vec<SemanticTrajectory> {
    let mut out = Vec::new();
    let mut chains: std::collections::HashMap<(u64, Timestamp), Vec<&JourneyRecord>> =
        std::collections::HashMap::new();
    for j in journeys {
        match j.card {
            Some(card) => chains
                .entry((card, j.pickup.time.div_euclid(DAY_SECS)))
                .or_default()
                .push(j),
            None => out.push(SemanticTrajectory::new(vec![
                StayPoint::untagged(j.pickup.pos, j.pickup.time),
                StayPoint::untagged(j.dropoff.pos, j.dropoff.time),
            ])),
        }
    }
    let mut keys: Vec<(u64, Timestamp)> = chains.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let Some(mut legs) = chains.remove(&key) else {
            continue;
        };
        legs.sort_by_key(|j| j.pickup.time);
        let mut stays = vec![StayPoint::untagged(legs[0].pickup.pos, legs[0].pickup.time)];
        for j in &legs {
            stays.push(StayPoint::untagged(j.dropoff.pos, j.dropoff.time));
        }
        out.push(SemanticTrajectory::new(stays).with_passenger(key.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_geo::LocalPoint;

    fn proj() -> Projection {
        Projection::new(GeoPoint::new(121.4737, 31.2304))
    }

    fn rec(px: f64, pt: Timestamp, dx: f64, dt: Timestamp, card: Option<u64>) -> JourneyRecord {
        JourneyRecord {
            pickup: GpsPoint::new(LocalPoint::new(px, 0.0), pt),
            dropoff: GpsPoint::new(LocalPoint::new(dx, 0.0), dt),
            card,
        }
    }

    #[test]
    fn roundtrip_preserves_journeys() {
        let journeys = vec![
            rec(0.0, 100, 2_000.0, 1_900, None),
            rec(-500.0, 30_000, 3_000.0, 31_200, Some(42)),
        ];
        let text = write_journeys(&journeys, &proj());
        let back = read_journeys(&text, &proj()).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in journeys.iter().zip(&back) {
            assert!(a.pickup.pos.distance(&b.pickup.pos) < 0.05);
            assert_eq!(a.pickup.time, b.pickup.time);
            assert_eq!(a.card, b.card);
        }
    }

    #[test]
    fn linking_matches_the_paper() {
        // Card 7 rides twice on day 0: chained. Anonymous journey stays solo.
        let journeys = vec![
            rec(0.0, 8 * 3600, 2_000.0, 8 * 3600 + 1_500, Some(7)),
            rec(2_010.0, 18 * 3600, 10.0, 18 * 3600 + 1_400, Some(7)),
            rec(500.0, 9 * 3600, 700.0, 9 * 3600 + 600, None),
            // Card 7 next day: a separate chain.
            rec(
                0.0,
                DAY_SECS + 8 * 3600,
                2_000.0,
                DAY_SECS + 8 * 3600 + 1_500,
                Some(7),
            ),
        ];
        let trajs = journeys_to_trajectories(&journeys);
        assert_eq!(trajs.len(), 3);
        let chain = trajs.iter().find(|t| t.len() == 3).expect("day-0 chain");
        assert_eq!(chain.passenger, Some(7));
        assert!(chain.stays.windows(2).all(|w| w[0].time < w[1].time));
        let solo = trajs.iter().filter(|t| t.len() == 2).count();
        assert_eq!(solo, 2);
    }

    #[test]
    fn rejects_time_travel_and_short_rows() {
        let text = "121.5,31.2,100,121.6,31.3,50\n";
        assert!(read_journeys(text, &proj())
            .unwrap_err()
            .to_string()
            .contains("follow"));
        let text = "121.5,31.2,100\n";
        assert!(read_journeys(text, &proj())
            .unwrap_err()
            .to_string()
            .contains("fields"));
    }

    #[test]
    fn lenient_mode_quarantines_bad_lines() {
        let text = "pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,dropoff_t,card\n\
                    121.5,31.2,100,121.6,31.3,800,7\n\
                    121.5,31.2,900,121.6,31.3,850,7\n\
                    121.5,oops,1000,121.6,31.3,1100,\n\
                    121.5,31.2,2000,121.6,31.3,2600,\n";
        let (journeys, report) = read_journeys_with(text, &proj(), IngestMode::Lenient).unwrap();
        assert_eq!(journeys.len(), 2);
        assert_eq!(report.dropped(), 2);
        assert!(report.to_string().contains("line 3"));
        // The survivors still link into trajectories.
        let trajs = journeys_to_trajectories(&journeys);
        assert_eq!(trajs.len(), 2);
        // Strict mode dies at the time-travel record first.
        let err = read_journeys_with(text, &proj(), IngestMode::Strict).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn threaded_read_matches_serial() {
        let mut text =
            String::from("pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,dropoff_t,card\n");
        for i in 0i64..100 {
            if i % 13 == 0 {
                let _ = writeln!(text, "121.5,31.2,{},121.6,31.3,{},", 1000 + i, 900 + i);
            } else {
                let _ = writeln!(
                    text,
                    "121.5,31.2,{},121.6,31.3,{},{}",
                    i * 100,
                    i * 100 + 60,
                    i % 5
                );
            }
        }
        let serial = read_journeys_with(&text, &proj(), IngestMode::Lenient).unwrap();
        for threads in [2, 4] {
            let parallel =
                read_journeys_threads(&text, &proj(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(serial.0, parallel.0, "threads = {threads}");
            assert_eq!(serial.1.to_string(), parallel.1.to_string());
            let se = read_journeys_with(&text, &proj(), IngestMode::Strict).unwrap_err();
            let pe =
                read_journeys_threads(&text, &proj(), IngestMode::Strict, threads).unwrap_err();
            assert_eq!(se.to_string(), pe.to_string());
        }
    }

    #[test]
    fn stream_reproduces_batch_read() {
        let text = "pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,dropoff_t,card\n\
                    121.5,31.2,100,121.6,31.3,800,7\n\
                    121.5,31.2,900,121.6,31.3,850,7\n\
                    121.5,oops,1000,121.6,31.3,1100,\n\
                    121.5,31.2,2000,121.6,31.3,2600,\n";
        let p = proj();
        let streamed: Vec<_> = JourneyStream::new(text, &p).collect();
        assert_eq!(streamed.len(), 4);
        let ok: Vec<JourneyRecord> = streamed
            .iter()
            .filter_map(|r| r.as_ref().ok().copied())
            .collect();
        let errs = streamed.iter().filter(|r| r.is_err()).count();
        let (batch, report) = read_journeys_with(text, &p, IngestMode::Lenient).unwrap();
        assert_eq!(ok, batch);
        assert_eq!(errs, report.dropped());
        // Errors keep their line-exact context.
        assert!(streamed[1]
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("line 3"));
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let text = "pickup_lon,pickup_lat,pickup_t,dropoff_lon,dropoff_lat,dropoff_t,card\n\n121.5,31.2,100,121.6,31.3,800,\n";
        let js = read_journeys(text, &proj()).unwrap();
        assert_eq!(js.len(), 1);
        assert_eq!(js[0].card, None);
    }
}
