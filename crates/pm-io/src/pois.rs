//! POI table I/O: `id,lon,lat,category[,minor]`.

use crate::csv::{data_lines, fields, parse_f64, parse_u64};
use crate::error::IoError;
use crate::quarantine::{IngestMode, QuarantineReport};
use pm_core::types::{Category, Poi};
use pm_geo::{GeoPoint, Projection};
use std::fmt::Write as _;

/// Parses a category from a Table 3 display name ("Shop & Market") or a
/// compact snake-case alias ("shop", "traffic_station").
pub fn parse_category(text: &str) -> Option<Category> {
    let needle = text.trim().to_ascii_lowercase();
    // Display names first.
    for c in Category::ALL {
        if c.name().to_ascii_lowercase() == needle {
            return Some(c);
        }
    }
    match needle.as_str() {
        "residence" | "home" => Some(Category::Residence),
        "shop" | "market" | "supermarket" => Some(Category::Shop),
        "business" | "office" => Some(Category::Business),
        "restaurant" | "food" => Some(Category::Restaurant),
        "entertainment" => Some(Category::Entertainment),
        "public_service" | "public" => Some(Category::PublicService),
        "traffic_station" | "traffic" | "station" | "airport" => Some(Category::TrafficStation),
        "education" | "technology" | "school" => Some(Category::Education),
        "sports" | "sport" => Some(Category::Sports),
        "government" => Some(Category::Government),
        "industry" | "industrial" => Some(Category::Industry),
        "financial" | "finance" | "bank" => Some(Category::Financial),
        "medical" | "hospital" => Some(Category::Medical),
        "hotel" | "accommodation" => Some(Category::Hotel),
        "tourism" | "attraction" => Some(Category::Tourism),
        _ => None,
    }
}

/// Compact identifier used when writing.
fn category_slug(c: Category) -> &'static str {
    match c {
        Category::Residence => "residence",
        Category::Shop => "shop",
        Category::Business => "business",
        Category::Restaurant => "restaurant",
        Category::Entertainment => "entertainment",
        Category::PublicService => "public_service",
        Category::TrafficStation => "traffic_station",
        Category::Education => "education",
        Category::Sports => "sports",
        Category::Government => "government",
        Category::Industry => "industry",
        Category::Financial => "financial",
        Category::Medical => "medical",
        Category::Hotel => "hotel",
        Category::Tourism => "tourism",
    }
}

/// Parses one data line into a [`Poi`].
fn parse_poi(line_no: usize, line: &str, projection: &Projection) -> Result<Poi, IoError> {
    let f = fields(line);
    if f.len() < 4 {
        return Err(IoError::parse(
            line_no,
            format!("expected >= 4 fields, got {}", f.len()),
        ));
    }
    let id = parse_u64(f[0], line_no, "id")?;
    let lon = parse_f64(f[1], line_no, "lon")?;
    let lat = parse_f64(f[2], line_no, "lat")?;
    let geo = GeoPoint::new(lon, lat);
    if !geo.is_valid() {
        return Err(IoError::parse(
            line_no,
            format!("invalid coordinate ({lon}, {lat})"),
        ));
    }
    let category = parse_category(f[3])
        .ok_or_else(|| IoError::parse(line_no, format!("unknown category '{}'", f[3])))?;
    let minor = if f.len() > 4 && !f[4].is_empty() {
        let m = parse_u64(f[4], line_no, "minor")? as u8;
        if m >= category.minor_count() {
            return Err(IoError::parse(
                line_no,
                format!(
                    "minor {m} out of range for {category} (< {})",
                    category.minor_count()
                ),
            ));
        }
        m
    } else {
        0
    };
    Ok(Poi {
        id,
        pos: projection.to_local(geo),
        category,
        minor,
    })
}

/// Reads a POI table from CSV text. Columns: `id,lon,lat,category[,minor]`;
/// a header starting with `id` is skipped; positions are projected into the
/// local frame. Fails fast on the first malformed record — the strict form
/// of [`read_pois_with`].
pub fn read_pois(text: &str, projection: &Projection) -> Result<Vec<Poi>, IoError> {
    read_pois_with(text, projection, IngestMode::Strict).map(|(pois, _)| pois)
}

/// Reads a POI table under an explicit [`IngestMode`]. In lenient mode
/// malformed records are quarantined instead of failing the read; the
/// report accounts for every dropped line.
pub fn read_pois_with(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
) -> Result<(Vec<Poi>, QuarantineReport), IoError> {
    read_pois_threads(text, projection, mode, 1)
}

/// [`read_pois_with`] across `threads` workers (`0` = all cores).
///
/// Lines parse independently; results fold back in line order, so the table,
/// quarantine report, and (in strict mode) the reported first error are all
/// identical to the serial read. The only parallel-path difference is wasted
/// work: a strict parse no longer stops at the first malformed line.
pub fn read_pois_threads(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
    threads: usize,
) -> Result<(Vec<Poi>, QuarantineReport), IoError> {
    let lines: Vec<(usize, &str)> = data_lines(text, "id").collect();
    let parsed = pm_runtime::par_map(&lines, threads, |&(line_no, line)| {
        parse_poi(line_no, line, projection)
    });
    let mut out = Vec::new();
    let mut report = QuarantineReport::default();
    for result in parsed {
        match result {
            Ok(poi) => out.push(poi),
            Err(e) => match mode {
                IngestMode::Strict => return Err(e),
                IngestMode::Lenient => report.quarantine(e),
            },
        }
    }
    Ok((out, report))
}

/// [`read_pois_threads`] under observation: the read is timed as an
/// `ingest.pois` span, parsed lines are counted under `io.poi_lines_read`,
/// and lenient-mode drops land in the `quarantine.pois_dropped` counter
/// (registered at zero so clean runs still report it). The parsed table is
/// identical to an unobserved read.
pub fn read_pois_observed(
    text: &str,
    projection: &Projection,
    mode: IngestMode,
    threads: usize,
    obs: &pm_obs::Obs,
) -> Result<(Vec<Poi>, QuarantineReport), IoError> {
    let span = obs.span("ingest.pois");
    let result = read_pois_threads(text, projection, mode, threads);
    span.finish();
    if let Ok((pois, report)) = &result {
        obs.incr("io.poi_lines_read", (pois.len() + report.dropped()) as u64);
        obs.incr("quarantine.pois_dropped", report.dropped() as u64);
    }
    result
}

/// Writes a POI table as CSV text (with header), projecting back to WGS-84.
pub fn write_pois(pois: &[Poi], projection: &Projection) -> String {
    let mut out = String::from("id,lon,lat,category,minor\n");
    for p in pois {
        let geo = projection.to_geo(p.pos);
        let _ = writeln!(
            out,
            "{},{:.7},{:.7},{},{}",
            p.id,
            geo.lon,
            geo.lat,
            category_slug(p.category),
            p.minor
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_geo::LocalPoint;

    fn proj() -> Projection {
        Projection::new(GeoPoint::new(121.4737, 31.2304))
    }

    #[test]
    fn category_parsing_accepts_names_and_slugs() {
        assert_eq!(parse_category("Shop & Market"), Some(Category::Shop));
        assert_eq!(parse_category("shop"), Some(Category::Shop));
        assert_eq!(parse_category("  HOSPITAL "), Some(Category::Medical));
        assert_eq!(
            parse_category("Traffic Stations"),
            Some(Category::TrafficStation)
        );
        assert_eq!(parse_category("nonsense"), None);
    }

    #[test]
    fn roundtrip_preserves_pois() {
        let pois = vec![
            Poi {
                id: 1,
                pos: LocalPoint::new(100.0, -50.0),
                category: Category::Shop,
                minor: 3,
            },
            Poi {
                id: 2,
                pos: LocalPoint::new(-2_000.0, 900.0),
                category: Category::Medical,
                minor: 0,
            },
        ];
        let text = write_pois(&pois, &proj());
        let back = read_pois(&text, &proj()).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in pois.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.category, b.category);
            assert_eq!(a.minor, b.minor);
            assert!(
                a.pos.distance(&b.pos) < 0.05,
                "roundtrip moved {:.3} m",
                a.pos.distance(&b.pos)
            );
        }
    }

    #[test]
    fn parse_errors_are_line_exact() {
        let text = "id,lon,lat,category\n1,121.5,31.2,shop\n2,oops,31.2,shop\n";
        let err = read_pois(text, &proj()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn rejects_bad_categories_and_coordinates() {
        let bad_cat = "1,121.5,31.2,palace\n";
        assert!(read_pois(bad_cat, &proj())
            .unwrap_err()
            .to_string()
            .contains("category"));
        let bad_coord = "1,200.0,31.2,shop\n";
        assert!(read_pois(bad_coord, &proj())
            .unwrap_err()
            .to_string()
            .contains("invalid"));
        let short = "1,121.5,31.2\n";
        assert!(read_pois(short, &proj())
            .unwrap_err()
            .to_string()
            .contains("fields"));
        let bad_minor = "1,121.5,31.2,tourism,99\n";
        assert!(read_pois(bad_minor, &proj())
            .unwrap_err()
            .to_string()
            .contains("minor"));
    }

    #[test]
    fn lenient_mode_quarantines_bad_lines() {
        let text = "id,lon,lat,category\n\
                    1,121.5,31.2,shop\n\
                    2,oops,31.2,shop\n\
                    3,121.6,31.3,palace\n\
                    4,121.7,31.1,medical\n";
        let (pois, report) = read_pois_with(text, &proj(), IngestMode::Lenient).unwrap();
        assert_eq!(pois.len(), 2);
        assert_eq!(pois[0].id, 1);
        assert_eq!(pois[1].id, 4);
        assert_eq!(report.dropped(), 2);
        let s = report.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("line 4"), "{s}");
        // Strict mode on the same input dies at the first bad line.
        let err = read_pois_with(text, &proj(), IngestMode::Strict).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn threaded_read_matches_serial() {
        let mut text = String::from("id,lon,lat,category\n");
        for i in 0..120 {
            if i % 17 == 0 {
                text.push_str(&format!("{i},bogus,31.2,shop\n"));
            } else {
                let _ = writeln!(
                    text,
                    "{i},{:.5},{:.5},{}",
                    121.4 + (i as f64) * 1e-4,
                    31.2 + (i as f64) * 5e-5,
                    if i % 2 == 0 { "shop" } else { "medical" }
                );
            }
        }
        let serial = read_pois_with(&text, &proj(), IngestMode::Lenient).unwrap();
        for threads in [2, 4] {
            let parallel = read_pois_threads(&text, &proj(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(serial.0, parallel.0, "threads = {threads}");
            assert_eq!(serial.1.dropped(), parallel.1.dropped());
            assert_eq!(serial.1.to_string(), parallel.1.to_string());
            // Strict mode reports the same first-in-file error.
            let se = read_pois_with(&text, &proj(), IngestMode::Strict).unwrap_err();
            let pe = read_pois_threads(&text, &proj(), IngestMode::Strict, threads).unwrap_err();
            assert_eq!(se.to_string(), pe.to_string());
        }
    }

    #[test]
    fn empty_input_gives_empty_table() {
        assert!(read_pois("", &proj()).unwrap().is_empty());
        assert!(read_pois("id,lon,lat,category\n", &proj())
            .unwrap()
            .is_empty());
    }
}
