//! Quarantine ingestion: lenient reads that skip malformed records and
//! report what was dropped instead of aborting on the first bad line.
//!
//! Real journey logs are dirty — truncated rows, unparsable coordinates,
//! time-travelling drop-offs. Strict mode (the default) keeps the
//! fail-fast, line-exact behaviour a data-validation workflow wants;
//! lenient mode keeps every well-formed record and quarantines the rest
//! into a [`QuarantineReport`] so a long batch run survives a few bad
//! lines while still accounting for every one of them.

use crate::error::IoError;
use std::fmt;

/// How a reader reacts to a malformed record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// Abort on the first malformed record with a line-exact error.
    #[default]
    Strict,
    /// Skip malformed records, quarantining each into the returned
    /// [`QuarantineReport`], and keep every well-formed line.
    Lenient,
}

/// What a lenient read dropped. The total count is exact; per-line error
/// details are capped at [`QuarantineReport::MAX_DETAILED`] so a
/// pathologically corrupt input cannot balloon the report.
#[derive(Debug, Default)]
pub struct QuarantineReport {
    errors: Vec<IoError>,
    dropped: usize,
}

impl QuarantineReport {
    /// How many per-line errors are kept verbatim; later ones only count.
    pub const MAX_DETAILED: usize = 20;

    /// Records one quarantined record.
    pub(crate) fn quarantine(&mut self, err: IoError) {
        self.dropped += 1;
        if self.errors.len() < Self::MAX_DETAILED {
            self.errors.push(err);
        }
    }

    /// Total records dropped; may exceed `errors().len()` once the detail
    /// cap is hit.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The retained per-line errors, in input order.
    pub fn errors(&self) -> &[IoError] {
        &self.errors
    }

    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no records quarantined");
        }
        write!(f, "quarantined {} record(s):", self.dropped)?;
        for e in &self.errors {
            write!(f, "\n  {e}")?;
        }
        let hidden = self.dropped - self.errors.len();
        if hidden > 0 {
            write!(f, "\n  ... and {hidden} more")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_everything_but_caps_details() {
        let mut r = QuarantineReport::default();
        assert!(r.is_clean());
        assert_eq!(r.to_string(), "no records quarantined");
        for i in 0..QuarantineReport::MAX_DETAILED + 5 {
            r.quarantine(IoError::parse(i + 1, "bad"));
        }
        assert!(!r.is_clean());
        assert_eq!(r.dropped(), QuarantineReport::MAX_DETAILED + 5);
        assert_eq!(r.errors().len(), QuarantineReport::MAX_DETAILED);
        let text = r.to_string();
        assert!(text.contains("quarantined 25 record(s)"));
        assert!(text.contains("... and 5 more"));
    }

    #[test]
    fn default_mode_is_strict() {
        assert_eq!(IngestMode::default(), IngestMode::Strict);
    }
}
