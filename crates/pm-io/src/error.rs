//! Error type for the ingestion layer.

use std::fmt;

/// An error reading or writing pipeline data.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record: line number (1-based, header included) and
    /// explanation.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl IoError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> IoError {
        IoError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Ingestion failures fold into the pipeline-wide error taxonomy as the
/// `Ingest` stage (rendered as text: `pm-core` has no `pm-io` dependency).
impl From<IoError> for pm_core::error::MinerError {
    fn from(e: IoError) -> Self {
        pm_core::error::MinerError::ingest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IoError::parse(3, "bad longitude");
        assert_eq!(e.to_string(), "line 3: bad longitude");
        let io: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn folds_into_miner_error_as_ingest_stage() {
        let e: pm_core::error::MinerError = IoError::parse(9, "bad lat").into();
        assert_eq!(e.stage(), "ingest");
        assert!(e.to_string().contains("line 9"));
    }
}
