//! End-to-end streaming: `POST /v1/ingest` batches over a real socket must
//! feed `GET /v1/live/patterns`, oversized batches must be refused with
//! `429`, and a `POST /v1/reload` landing mid-ingest must hot-swap the
//! snapshot with **zero** 5xx on already-accepted traffic — with the swap
//! visible as the epoch gauge and `serve.swap_epoch` counter in pm-obs.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::{GeoPoint, LocalPoint};
use pm_obs::Obs;
use pm_serve::{client, ServeConfig, ServeState, Server, Snapshot};
use pm_store::Artifact;
use pm_stream::EngineConfig;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Shanghai anchor used across the repo's examples.
const ORIGIN: (f64, f64) = (121.4737, 31.2304);

/// One mined, geo-anchored artifact (same fixture as serve_http.rs).
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(ORIGIN.0, ORIGIN.1));
        Artifact::from_bytes(&artifact.to_bytes()).expect("store round-trip")
    })
}

fn snapshot() -> Arc<Snapshot> {
    Arc::new(Snapshot::new(artifact().clone()).expect("snapshot"))
}

/// Two unit centers the snapshot recognizes as tagged — stays alternating
/// between them must produce semantic transitions.
fn tagged_centers() -> (LocalPoint, LocalPoint) {
    let s = snapshot();
    let centers: Vec<LocalPoint> = s
        .artifact()
        .csd
        .units()
        .iter()
        .map(|u| u.center)
        .filter(|&c| s.primary_category(c).is_some())
        .take(2)
        .collect();
    assert!(centers.len() == 2, "fixture must yield two tagged units");
    (centers[0], centers[1])
}

fn stays_body(records: &[(&str, LocalPoint, i64)]) -> String {
    let mut body = String::from("{\"stays\":[");
    for (i, (user, pos, t)) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"user\":\"{user}\",\"x\":{},\"y\":{},\"t\":{t}}}",
            pos.x, pos.y
        ));
    }
    body.push_str("]}");
    body
}

struct Running {
    addr: SocketAddr,
    handle: pm_serve::ShutdownHandle,
    obs: Obs,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServeConfig) -> Running {
    let obs = Obs::enabled();
    let server = Server::bind("127.0.0.1:0", snapshot(), config, obs.clone()).expect("bind");
    start_bound(server, obs)
}

fn start_bound(server: Server, obs: Obs) -> Running {
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle,
        obs,
        thread,
    }
}

impl Running {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("run");
    }
}

#[test]
fn ingest_feeds_live_patterns_end_to_end() {
    let (a, b) = tagged_centers();
    let server = start(ServeConfig::default());

    // Two users, six stays each, alternating between the two tagged
    // centers: 5 transitions per user. Sent as three keep-alive batches on
    // one connection — the POST path must survive connection reuse.
    let users = ["u1", "u2"];
    let mut records: Vec<(&str, LocalPoint, i64)> = Vec::new();
    for (i, t) in (0..6).map(|i| (i, 1_000 + 100 * i as i64)) {
        let pos = if i % 2 == 0 { a } else { b };
        for user in users {
            records.push((user, pos, t));
        }
    }
    let mut conn = client::Conn::open(server.addr).expect("connect");
    for chunk in records.chunks(4) {
        let (status, body) = conn.post("/v1/ingest", &stays_body(chunk)).expect("ingest");
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("{\"epoch\":0,"), "{body}");
        assert!(
            body.contains(&format!("\"accepted\":{}", chunk.len())),
            "{body}"
        );
    }

    // The live window on the same connection reflects every stay.
    let (status, body) = conn.get("/v1/live/patterns").expect("live");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"epoch\":0,"), "{body}");
    assert!(body.contains("\"users\":2"), "{body}");
    assert!(body.contains("\"total\":10"), "{body}");
    assert!(body.contains("\"late_dropped\":0"), "{body}");
    assert!(
        body.contains("\"from\":"),
        "transitions must be non-empty: {body}"
    );

    // The same tallies flow through pm-obs, and the stats endpoint carries
    // the pre-registered stream schema.
    assert_eq!(server.obs.counter("stream.stays_emitted"), 12);
    assert_eq!(server.obs.counter("stream.transitions_recorded"), 10);
    assert_eq!(server.obs.counter("quarantine.stream_out_of_order"), 0);
    let (status, stats) = client::get(server.addr, "/v1/stats").expect("stats");
    assert_eq!(status, 200);
    for name in ["stream.fixes_accepted", "serve.swap_epoch", "serve.epoch"] {
        assert!(stats.contains(name), "stats must carry {name}: {stats}");
    }
    server.stop();
}

#[test]
fn oversized_ingest_batch_is_429() {
    let (a, _) = tagged_centers();
    let server = start(ServeConfig {
        max_batch_records: 2,
        ..ServeConfig::default()
    });
    let too_big = stays_body(&[("u", a, 1), ("u", a, 2), ("u", a, 3)]);
    let (status, body) = client::post(server.addr, "/v1/ingest", &too_big).expect("post");
    assert_eq!(status, 429, "{body}");
    assert!(body.starts_with("{\"error\":"), "{body}");
    assert_eq!(server.obs.counter("serve.errors.ingest"), 1);
    // An oversized batch is refused atomically: nothing was ingested.
    assert_eq!(server.obs.counter("stream.fixes_accepted"), 0);

    let ok = stays_body(&[("u", a, 1), ("u", a, 2)]);
    let (status, _) = client::post(server.addr, "/v1/ingest", &ok).expect("post");
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn reload_hot_swaps_mid_ingest_with_zero_5xx() {
    let (a, b) = tagged_centers();

    // The reload source: the same artifact, persisted through pm-store.
    let path = std::env::temp_dir().join(format!("pm-serve-reload-{}.pmstore", std::process::id()));
    std::fs::write(&path, artifact().to_bytes()).expect("write artifact");

    let obs = Obs::enabled();
    let state = ServeState::new(snapshot(), EngineConfig::from_miner(&artifact().params))
        .expect("state")
        .with_reload_path(&path);
    let config = ServeConfig {
        threads: 4, // the long-lived ingest connection must not starve /v1/reload
        max_requests_per_conn: 100_000, // the replay conn must outlive the swap
        ..ServeConfig::default()
    };
    let server =
        Server::bind_with_state("127.0.0.1:0", Arc::new(state), config, obs.clone()).expect("bind");
    let server = start_bound(server, obs);
    let addr = server.addr;

    // A replay-style client on one keep-alive connection, one stay per
    // batch, alternating centers so transitions keep forming across the
    // swap. Synchronization makes "mid-replay" deterministic: the reload
    // waits until 5 batches are in, the replay runs 5 batches past it.
    let sent = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let reloaded = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (sent_w, reloaded_r) = (Arc::clone(&sent), Arc::clone(&reloaded));
    let ingester = std::thread::spawn(move || -> std::io::Result<Vec<(u16, String)>> {
        let mut conn = client::Conn::open(addr)?;
        let mut out = Vec::new();
        let mut after_swap = 0usize;
        for i in 0..50_000i64 {
            let pos = if i % 2 == 0 { a } else { b };
            let body = stays_body(&[("load", pos, 1_000 + 50 * i)]);
            out.push(conn.post("/v1/ingest", &body)?);
            sent_w.store(out.len(), Ordering::SeqCst);
            if reloaded_r.load(Ordering::SeqCst) {
                after_swap += 1;
                if after_swap >= 5 {
                    break;
                }
            }
        }
        assert!(after_swap >= 5, "replay drained before the swap landed");
        Ok(out)
    });

    // Land the reload mid-replay. The body is empty: the configured
    // reload path is the default swap source.
    while sent.load(Ordering::SeqCst) < 5 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, body) = client::post(addr, "/v1/reload", "{}").expect("reload");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"epoch\":1,"), "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    reloaded.store(true, Ordering::SeqCst);

    // Every accepted ingest request was answered 200 — no drops, no 5xx —
    // and the responses straddle the swap (epoch 0 before, epoch 1 after).
    let replies = ingester.join().expect("ingester").expect("ingest io");
    assert!(replies.len() >= 10, "got {} replies", replies.len());
    for (status, body) in &replies {
        assert_eq!(*status, 200, "{body}");
    }
    assert!(
        replies[0].1.starts_with("{\"epoch\":0,"),
        "{}",
        replies[0].1
    );
    assert!(
        replies.last().unwrap().1.starts_with("{\"epoch\":1,"),
        "the swap must land mid-replay: {}",
        replies.last().unwrap().1
    );

    // The swap is observable: epoch counter + gauge in the run report, and
    // the engine's window survived it (transitions kept accumulating).
    assert_eq!(server.obs.counter("serve.swap_epoch"), 1);
    let report = server.obs.report();
    assert_eq!(report.gauges.get("serve.epoch"), Some(&1.0));
    let (status, live) = client::get(addr, "/v1/live/patterns").expect("live");
    assert_eq!(status, 200);
    assert!(live.starts_with("{\"epoch\":1,"), "{live}");
    assert!(
        live.contains("\"from\":"),
        "window must survive the swap: {live}"
    );

    server.stop();
    let _ = std::fs::remove_file(&path);
}
