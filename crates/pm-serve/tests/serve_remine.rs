//! Supervised re-mining under fault injection.
//!
//! The contract under test: the background re-miner may panic, error, hang,
//! or produce corrupt artifacts, and the serving path still never answers
//! 5xx, never swaps in a bad snapshot, records every failure kind in the
//! `miner.*` counters, and recovers (backoff + circuit breaker) once the
//! faults stop. Plus the satellite behaviours: `Retry-After` on overload
//! answers and a final WAL checkpoint on graceful shutdown.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::{GeoPoint, LocalPoint};
use pm_obs::Obs;
use pm_serve::{
    client, InjectedFault, RemineConfig, Reminer, ServeConfig, ServeState, Server, Snapshot,
};
use pm_store::{Artifact, GenerationStore};
use pm_stream::{EngineConfig, WalConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const ORIGIN: (f64, f64) = (121.4737, 31.2304);

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-remine-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One mined, geo-anchored artifact (same fixture as the other suites).
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(ORIGIN.0, ORIGIN.1));
        Artifact::from_bytes(&artifact.to_bytes()).expect("store round-trip")
    })
}

fn snapshot() -> Arc<Snapshot> {
    Arc::new(Snapshot::new(artifact().clone()).expect("snapshot"))
}

/// Two unit centers the snapshot recognizes as tagged.
fn tagged_centers() -> (LocalPoint, LocalPoint) {
    let s = snapshot();
    let centers: Vec<LocalPoint> = s
        .artifact()
        .csd
        .units()
        .iter()
        .map(|u| u.center)
        .filter(|&c| s.primary_category(c).is_some())
        .take(2)
        .collect();
    assert!(centers.len() == 2, "fixture must yield two tagged units");
    (centers[0], centers[1])
}

fn stays_body(records: &[(&str, LocalPoint, i64)]) -> String {
    let mut body = String::from("{\"stays\":[");
    for (i, (user, pos, t)) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"user\":\"{user}\",\"x\":{},\"y\":{},\"t\":{t}}}",
            pos.x, pos.y
        ));
    }
    body.push_str("]}");
    body
}

struct Running {
    addr: SocketAddr,
    handle: pm_serve::ShutdownHandle,
    obs: Obs,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_state(state: Arc<ServeState>, config: ServeConfig) -> Running {
    let obs = Obs::enabled();
    let server = Server::bind_with_state("127.0.0.1:0", state, config, obs.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle,
        obs,
        thread,
    }
}

impl Running {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("run");
    }
}

/// Polls `f` until it holds or `timeout` passes; `true` on success.
fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if f() {
            return true;
        }
        if start.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Feeds 12 stay records (two users, alternating tagged centers) so the
/// engine accumulates re-minable stays.
fn seed_stays(addr: SocketAddr) {
    let (a, b) = tagged_centers();
    let mut records: Vec<(&str, LocalPoint, i64)> = Vec::new();
    for i in 0..6i64 {
        let pos = if i % 2 == 0 { a } else { b };
        records.push(("u1", pos, 1_000 + 100 * i));
        records.push(("u2", pos, 1_000 + 100 * i));
    }
    let (status, body) = client::post(addr, "/v1/ingest", &stays_body(&records)).expect("ingest");
    assert_eq!(status, 200, "{body}");
}

#[test]
fn reminer_publishes_a_generation_and_swaps_the_snapshot() {
    let state = Arc::new(
        ServeState::new(snapshot(), EngineConfig::from_miner(&artifact().params)).expect("state"),
    );
    let server = start_state(Arc::clone(&state), ServeConfig::default());
    seed_stays(server.addr);

    let store_dir = scratch("publish");
    let store = GenerationStore::open(&store_dir, 3).expect("store");
    let reminer = Reminer::spawn(
        Arc::clone(&state),
        store.clone(),
        RemineConfig {
            interval: Duration::from_millis(10),
            min_stays: 4,
            ..RemineConfig::default()
        },
        server.obs.clone(),
    );

    assert!(
        wait_until(Duration::from_secs(30), || reminer.status().jobs_succeeded
            >= 1),
        "re-miner never succeeded: {:?}",
        reminer.status()
    );

    // A verified generation landed on disk and is the store's latest-good.
    let (generation, _artifact) = store.latest_good().expect("scan").expect("good generation");
    assert!(generation >= 1);
    // The serving snapshot swapped (epoch moved), visible over HTTP.
    let (status, live) = client::get(server.addr, "/v1/live/patterns").expect("live");
    assert_eq!(status, 200);
    assert!(
        !live.starts_with("{\"epoch\":0,"),
        "no swap happened: {live}"
    );
    // The engine's live window survived the swap.
    assert!(live.contains("\"users\":2"), "{live}");

    // /v1/miner reports the same story in valid JSON.
    let (status, miner) = client::get(server.addr, "/v1/miner").expect("miner");
    assert_eq!(status, 200);
    let parsed = pm_serve::json::parse(&miner).expect("miner JSON");
    assert!(miner.contains("\"enabled\":true"), "{miner}");
    assert!(
        parsed
            .get("jobs_succeeded")
            .and_then(|v| v.as_i64())
            .unwrap_or(0)
            >= 1,
        "{miner}"
    );
    assert!(server.obs.counter("miner.published_generations") >= 1);
    assert_eq!(server.obs.counter("miner.failures_panic"), 0);

    reminer.stop();
    server.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn every_failure_kind_is_survived_counted_and_recovered_from() {
    let state = Arc::new(
        ServeState::new(snapshot(), EngineConfig::from_miner(&artifact().params)).expect("state"),
    );
    let server = start_state(Arc::clone(&state), ServeConfig::default());
    seed_stays(server.addr);

    // While the miner is being tortured, hammer the serving path from a
    // sibling thread: every response must be < 500.
    let done = Arc::new(AtomicBool::new(false));
    let poll_done = Arc::clone(&done);
    let poll_addr = server.addr;
    let poller = std::thread::spawn(move || -> (u64, u16) {
        let mut requests = 0u64;
        let mut worst = 0u16;
        while !poll_done.load(Ordering::SeqCst) {
            for target in ["/healthz", "/v1/live/patterns", "/v1/miner", "/v1/stats"] {
                if let Ok((status, _)) = client::get(poll_addr, target) {
                    requests += 1;
                    worst = worst.max(status);
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        (requests, worst)
    });

    // Job 1 panics, job 2 errors, job 3 mines a corrupt artifact (publish
    // must refuse it), job 4 hangs past the deadline (timeout) — and while
    // it still occupies the worker, follow-up jobs go busy. From job 7 on,
    // mining is healthy again.
    let fault = Arc::new(|seq: u64| match seq {
        1 => Some(InjectedFault::Panic),
        2 => Some(InjectedFault::Error),
        3 => Some(InjectedFault::CorruptArtifact),
        4 => Some(InjectedFault::Hang(Duration::from_millis(2_500))),
        _ => None,
    });
    let store_dir = scratch("faults");
    let store = GenerationStore::open(&store_dir, 3).expect("store");
    let reminer = Reminer::spawn(
        Arc::clone(&state),
        store.clone(),
        RemineConfig {
            interval: Duration::from_millis(5),
            min_stays: 4,
            job_deadline: Duration::from_millis(700),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(10),
            // This test is about failure kinds, not the breaker: the hung
            // job produces busy failures every ~10ms for 2.5s, so keep the
            // threshold out of reach and the cooldown short in case.
            circuit_threshold: 10_000,
            circuit_cooldown: Duration::from_millis(200),
            seed: 7,
            fault: Some(fault),
            ..RemineConfig::default()
        },
        server.obs.clone(),
    );

    assert!(
        wait_until(Duration::from_secs(60), || reminer.status().jobs_succeeded
            >= 1),
        "re-miner never recovered: {:?}",
        reminer.status()
    );
    let status = reminer.status();
    // Every injected failure kind was hit and counted (panic, error,
    // publish, timeout deterministically; busy while the hung job held the
    // worker).
    assert!(status.failures[0] >= 1, "panic uncounted: {status:?}");
    assert!(status.failures[1] >= 1, "error uncounted: {status:?}");
    assert!(status.failures[2] >= 1, "timeout uncounted: {status:?}");
    assert!(status.failures[3] >= 1, "publish uncounted: {status:?}");
    assert!(status.failures[4] >= 1, "busy uncounted: {status:?}");
    for name in [
        "miner.failures_panic",
        "miner.failures_error",
        "miner.failures_timeout",
        "miner.failures_publish",
        "miner.failures_busy",
    ] {
        assert!(server.obs.counter(name) >= 1, "{name} not recorded");
    }

    // The corrupt artifact never reached disk as a generation: everything
    // retained verifies.
    let generations = store.generations();
    assert!(!generations.is_empty());
    for g in &generations {
        Artifact::read_file_verified(store.generation_path(*g))
            .unwrap_or_else(|e| panic!("generation {g} is corrupt: {e}"));
    }

    // The serving path never felt any of it.
    done.store(true, Ordering::SeqCst);
    let (requests, worst) = poller.join().expect("poller");
    assert!(requests > 0, "poller must have exercised the server");
    assert!(worst < 500, "a request was answered {worst}");

    reminer.stop();
    server.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn circuit_opens_after_threshold_and_recovers_after_cooldown() {
    let state = Arc::new(
        ServeState::new(snapshot(), EngineConfig::from_miner(&artifact().params)).expect("state"),
    );
    let server = start_state(Arc::clone(&state), ServeConfig::default());
    seed_stays(server.addr);

    let fault = Arc::new(|seq: u64| (seq <= 2).then_some(InjectedFault::Error));
    let store_dir = scratch("circuit");
    let reminer = Reminer::spawn(
        Arc::clone(&state),
        GenerationStore::open(&store_dir, 3).expect("store"),
        RemineConfig {
            interval: Duration::from_millis(5),
            min_stays: 4,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            circuit_threshold: 2,
            circuit_cooldown: Duration::from_millis(100),
            fault: Some(fault),
            ..RemineConfig::default()
        },
        server.obs.clone(),
    );

    // Two consecutive failures open the circuit ...
    assert!(
        wait_until(Duration::from_secs(10), || {
            reminer.status().circuit_opens >= 1
        }),
        "circuit never opened: {:?}",
        reminer.status()
    );
    // ... and after the cooldown the half-open probe succeeds and closes it.
    assert!(
        wait_until(Duration::from_secs(30), || {
            let s = reminer.status();
            s.jobs_succeeded >= 1 && s.circuit == "closed"
        }),
        "circuit never recovered: {:?}",
        reminer.status()
    );
    let status = reminer.status();
    assert_eq!(status.circuit_opens, 1, "{status:?}");
    assert_eq!(status.consecutive_failures, 0, "{status:?}");
    assert_eq!(server.obs.counter("miner.circuit_opens"), 1);

    reminer.stop();
    server.stop();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn overload_answers_carry_retry_after() {
    let (a, _) = tagged_centers();
    let state = Arc::new(
        ServeState::new(snapshot(), EngineConfig::from_miner(&artifact().params)).expect("state"),
    );
    let server = start_state(
        Arc::clone(&state),
        ServeConfig {
            max_batch_records: 1,
            retry_after_secs: 3,
            ..ServeConfig::default()
        },
    );

    let mut conn = client::Conn::open(server.addr).expect("connect");
    let too_big = stays_body(&[("u", a, 1), ("u", a, 2)]);
    let (status, body) = conn.post("/v1/ingest", &too_big).expect("post");
    assert_eq!(status, 429, "{body}");
    assert_eq!(conn.retry_after(), Some(3), "429 must carry Retry-After");

    // Normal answers do not carry the header.
    let mut conn = client::Conn::open(server.addr).expect("reconnect");
    let (status, _) = conn.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(conn.retry_after(), None);

    server.stop();
}

#[test]
fn graceful_shutdown_cuts_a_final_wal_checkpoint() {
    let wal_dir = scratch("wal");
    let recognize: pm_stream::Recognizer = {
        let snap = snapshot();
        Arc::new(move |pos| snap.primary_category(pos))
    };
    // Two shards so the checkpoint/recovery path exercises the WAL fan-out,
    // not just a single log.
    let shard_config = || {
        pm_stream::ShardConfig::new(2, EngineConfig::from_miner(&artifact().params))
            .with_wal(WalConfig::new(&wal_dir))
    };

    let obs = Obs::enabled();
    let (engine, recovery) =
        pm_stream::ShardedEngine::open(shard_config(), &recognize).expect("open");
    assert_eq!(recovery.report.replayed_batches, 0);
    let state = Arc::new(ServeState::with_engine(snapshot(), engine).with_obs(obs.clone()));
    let server = start_state(Arc::clone(&state), ServeConfig::default());
    seed_stays(server.addr);
    let (_, live_before) = client::get(server.addr, "/v1/live/patterns").expect("live");
    server.stop(); // graceful: drains, then checkpoints every shard

    assert!(obs.counter("wal.appended_batches") >= 1);
    assert_eq!(obs.counter("wal.checkpoints"), 1);

    // Recovery needs no replay — the checkpoints cover everything — and
    // restores the exact live state.
    let (engine, recovery) =
        pm_stream::ShardedEngine::open(shard_config(), &recognize).expect("reopen");
    assert_eq!(
        recovery.report.replayed_batches, 0,
        "checkpoints must cover the logs"
    );
    assert!(recovery.checkpoints_restored >= 1);
    let ((users, _), _) = engine.gauges(&recognize);
    assert_eq!(users, 2);
    let restored = Arc::new(ServeState::with_engine(snapshot(), engine));
    let server = start_state(restored, ServeConfig::default());
    let (status, live_after) = client::get(server.addr, "/v1/live/patterns").expect("live");
    assert_eq!(status, 200);
    assert_eq!(live_after, live_before, "restored live state must match");
    server.stop();
    let _ = std::fs::remove_dir_all(&wal_dir);
}
