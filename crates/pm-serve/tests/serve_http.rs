//! End-to-end: a mined artifact served over a real loopback socket. The
//! bytes coming off the wire must be identical to the in-process snapshot
//! output, bursts must not produce spurious 5xx, overload must shed with
//! 503, and /v1/stats tallies must match what was actually requested.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::GeoPoint;
use pm_obs::Obs;
use pm_serve::{client, ServeConfig, Server, Snapshot};
use pm_store::Artifact;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Shanghai anchor used across the repo's examples.
const ORIGIN: (f64, f64) = (121.4737, 31.2304);

/// One mined, geo-anchored artifact — and proof it survived a store
/// round-trip, so the serving path covers pm-store end to end.
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(ORIGIN.0, ORIGIN.1));
        Artifact::from_bytes(&artifact.to_bytes()).expect("store round-trip")
    })
}

fn snapshot() -> Arc<Snapshot> {
    Arc::new(Snapshot::new(artifact().clone()).expect("snapshot"))
}

struct Running {
    addr: SocketAddr,
    handle: pm_serve::ShutdownHandle,
    obs: Obs,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServeConfig) -> Running {
    let obs = Obs::enabled();
    let server = Server::bind("127.0.0.1:0", snapshot(), config, obs.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle,
        obs,
        thread,
    }
}

impl Running {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("run");
    }
}

#[test]
fn endpoints_match_in_process_byte_for_byte() {
    let s = snapshot();
    let server = start(ServeConfig::default());

    let (status, body) = client::get(server.addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, s.healthz_json());

    // A position square in the city (the first unit's center) and one far
    // outside it.
    let center = s.artifact().csd.units()[0].center;
    for (x, y) in [(center.x, center.y), (9.9e6, 9.9e6)] {
        let (status, body) =
            client::get(server.addr, &format!("/v1/semantic?x={x}&y={y}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, s.semantic_json(pm_geo::LocalPoint::new(x, y)));
    }

    // Geographic lookup against the projection anchor.
    let (status, body) = client::get(
        server.addr,
        &format!("/v1/semantic?lat={}&lon={}", ORIGIN.1, ORIGIN.0),
    )
    .unwrap();
    assert_eq!(status, 200);
    let pos = s
        .resolve_point(
            None,
            None,
            Some(&ORIGIN.1.to_string()),
            Some(&ORIGIN.0.to_string()),
        )
        .unwrap();
    assert_eq!(body, s.semantic_json(pos));

    // Pattern queries, several combinator mixes.
    for target in [
        "/v1/patterns",
        "/v1/patterns?min_support=20&limit=5",
        "/v1/patterns?from=residence&to=business",
        &format!("/v1/patterns?near={},{},500&min_len=2", center.x, center.y),
        "/v1/patterns?bucket=weekday_morning&involving=residence",
    ] {
        let (status, body) = client::get(server.addr, target).unwrap();
        assert_eq!(status, 200, "{target}: {body}");
        let query = target.split_once('?').map(|(_, q)| q).unwrap_or("");
        let params: Vec<(String, String)> = query
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| {
                let (k, v) = p.split_once('=').unwrap_or((p, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        let (q, limit) = s.pattern_query_from_params(&params).unwrap();
        assert_eq!(body, s.patterns_json(&q, limit), "{target}");
    }

    // Annotate: a loop of fixes dwelling at the unit center long enough to
    // be a stay, using the artifact's own thresholds.
    let mut points = String::from("{\"points\":[");
    for i in 0..20 {
        if i > 0 {
            points.push(',');
        }
        points.push_str(&format!(
            "{{\"x\":{},\"y\":{},\"t\":{}}}",
            center.x + (i % 3) as f64,
            center.y,
            i * 120
        ));
    }
    points.push_str("]}");
    let (status, body) = client::post(server.addr, "/v1/annotate", &points).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = pm_serve::json::parse(&points).unwrap();
    assert_eq!(body, s.annotate_json(&parsed).unwrap());
    assert!(
        body.contains("\"stays\":[{"),
        "dwell must become a stay: {body}"
    );

    server.stop();
}

/// The mined artifact with a cohort section stitched on: one synthetic
/// user per behavior group — five residence-dwellers, three shoppers —
/// mined at `k_min: 4` so the shopper cohort sits below the anonymity
/// floor. Round-tripped through pm-store like the base artifact.
fn cohort_snapshot() -> Arc<Snapshot> {
    static SNAP: OnceLock<Arc<Snapshot>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut embeddings = Vec::new();
        for u in 0..8 {
            let cat = if u < 5 {
                Category::Residence
            } else {
                Category::Shop
            };
            let unit0 = if u < 5 { 0 } else { 40 };
            let stays: Vec<pm_cohort::UserStay> = (0..6)
                .map(|i| pm_cohort::UserStay {
                    unit: unit0 + (i % 2) as u64,
                    category: Some(cat),
                    time: (i * 30_000) as i64,
                })
                .collect();
            embeddings.push(pm_cohort::embed_user(format!("user-{u:02}"), &stays));
        }
        let table = pm_cohort::CohortTable::mine(
            embeddings,
            &pm_cohort::CohortParams {
                k_min: 4,
                ..pm_cohort::CohortParams::default()
            },
        );
        let bytes = artifact().clone().with_cohorts(table).to_bytes();
        let artifact = Artifact::from_bytes(&bytes).expect("store round-trip");
        Arc::new(Snapshot::new(artifact).expect("snapshot"))
    })
    .clone()
}

#[test]
fn cohort_endpoints_match_in_process_and_suppress() {
    let s = cohort_snapshot();
    let obs = Obs::enabled();
    let server = Server::bind(
        "127.0.0.1:0",
        s.clone(),
        ServeConfig::default(),
        obs.clone(),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());

    // Wire bytes equal the in-process snapshot output, twice (the body is
    // deterministic for a given artifact).
    let expected = s
        .cohorts_json(&pm_serve::CohortQuery::default())
        .expect("table")
        .0;
    for _ in 0..2 {
        let (status, body) = client::get(addr, "/v1/cohorts").unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected);
    }
    assert!(
        expected.contains("{\"id\":1,\"suppressed\":true}"),
        "{expected}"
    );

    let (status, body) = client::get(addr, "/v1/users/user-03/patterns").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, s.user_patterns_json("user-03").expect("known").0);

    let (status, body) = client::get(addr, "/v1/users/user-03/similar?k=4&scope=all").unwrap();
    assert_eq!(status, 200, "{body}");
    let q = pm_serve::SimilarQuery::from_params(&[
        ("k".to_string(), "4".to_string()),
        ("scope".to_string(), "all".to_string()),
    ])
    .expect("query");
    assert_eq!(body, s.user_similar_json("user-03", &q).expect("known").0);

    // A shopper's cohort-scoped neighborhood is below k_min: the neighbor
    // list renders, the aggregate is an explicit suppression marker.
    let (status, body) = client::get(addr, "/v1/users/user-07/similar").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"aggregate\":{\"suppressed\":true}"),
        "{body}"
    );

    // Typed error paths: unknown user, bad action, unknown parameter.
    for (target, expect) in [
        ("/v1/users/nobody/patterns", 404),
        ("/v1/users/user-03/nope", 404),
        ("/v1/users/user-03/patterns?x=1", 400),
        ("/v1/users/user-03/similar?k=0", 400),
        ("/v1/cohorts?category=castle", 400),
    ] {
        let (status, body) = client::get(addr, target).unwrap();
        assert_eq!(status, expect, "{target}: {body}");
        assert!(body.starts_with("{\"error\":"), "{target}: {body}");
    }

    // Counters tally the traffic, including every suppressed aggregate:
    // one marker in each of the two /v1/cohorts bodies plus the shopper's
    // suppressed similar-neighborhood aggregate.
    let report = obs.report();
    let count = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(count("cohort.cohorts_served"), 2);
    assert_eq!(count("cohort.patterns_served"), 1);
    assert_eq!(count("cohort.similar_served"), 2);
    assert_eq!(count("cohort.suppressed_aggregates"), 3);
    assert_eq!(count("cohort.unknown_user"), 1);
    assert_eq!(count("cohort.missing_section"), 0);

    handle.shutdown();
    thread.join().expect("server thread").expect("run");
}

#[test]
fn cohort_endpoints_404_with_hint_on_pre_cohort_artifacts() {
    // The default artifact has no cohort section: every cohort endpoint
    // answers 404 with a hint naming the mining command, and the counters
    // are pre-registered at zero before any traffic.
    let server = start(ServeConfig::default());
    let (status, body) = client::get(server.addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let parsed = pm_serve::json::parse(&body).expect("stats JSON parses");
    let counters = parsed.get("counters").expect("counters object");
    for name in [
        "cohort.cohorts_served",
        "cohort.patterns_served",
        "cohort.similar_served",
        "cohort.suppressed_aggregates",
        "cohort.unknown_user",
        "cohort.missing_section",
    ] {
        assert_eq!(
            counters.get(name).and_then(|v| v.as_i64()),
            Some(0),
            "{name} must be pre-registered"
        );
    }

    for target in [
        "/v1/cohorts",
        "/v1/users/user-00/patterns",
        "/v1/users/user-00/similar",
    ] {
        let (status, body) = client::get(server.addr, target).unwrap();
        assert_eq!(status, 404, "{target}: {body}");
        assert!(body.contains("cohorts command"), "{target}: {body}");
    }
    assert_eq!(
        server
            .obs
            .report()
            .counters
            .get("cohort.missing_section")
            .copied(),
        Some(3)
    );
    server.stop();
}

#[test]
fn error_paths_are_typed_not_5xx() {
    let server = start(ServeConfig::default());
    for (target, expect) in [
        ("/v1/semantic", 400),
        ("/v1/semantic?x=1", 400),
        ("/v1/semantic?x=a&y=b", 400),
        ("/v1/patterns?from=castle", 400),
        ("/v1/patterns?nope=1", 400),
        ("/nowhere", 404),
    ] {
        let (status, body) = client::get(server.addr, target).unwrap();
        assert_eq!(status, expect, "{target}: {body}");
        assert!(body.starts_with("{\"error\":"), "{target}: {body}");
    }
    let (status, _) = client::post(server.addr, "/v1/annotate", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::request(server.addr, "DELETE", "/healthz", None).unwrap();
    assert_eq!(status, 405);
    server.stop();
}

#[test]
fn burst_of_64_connections_sees_zero_5xx() {
    let server = start(ServeConfig {
        queue_capacity: 256,
        ..ServeConfig::default()
    });
    let addr = server.addr;
    let workers: Vec<_> = (0..64)
        .map(|i| {
            std::thread::spawn(move || {
                let target = match i % 3 {
                    0 => "/healthz".to_string(),
                    1 => "/v1/semantic?x=0&y=0".to_string(),
                    _ => "/v1/patterns?limit=3".to_string(),
                };
                client::get(addr, &target).map(|(status, _)| status)
            })
        })
        .collect();
    let mut ok = 0;
    for w in workers {
        let status = w.join().expect("client thread").expect("request");
        assert!(status < 500, "burst saw {status}");
        assert_eq!(status, 200);
        ok += 1;
    }
    assert_eq!(ok, 64);

    // The stats endpoint tallies exactly what the burst sent.
    let report = server.obs.report();
    let count = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(count("serve.requests.healthz"), 22);
    assert_eq!(count("serve.requests.semantic"), 21);
    assert_eq!(count("serve.requests.patterns"), 21);
    assert_eq!(count("serve.shed"), 0);
    assert_eq!(count("serve.errors.healthz"), 0);

    // And the HTTP view of the same counters agrees.
    let (status, body) = client::get(addr, "/v1/stats").unwrap();
    assert_eq!(status, 200);
    let parsed = pm_serve::json::parse(&body).expect("stats JSON parses");
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("serve.requests.healthz")
            .and_then(|v| v.as_i64()),
        Some(22)
    );
    server.stop();
}

#[test]
fn overload_sheds_with_503() {
    let server = start(ServeConfig {
        threads: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    // Two idle connections: one parks on the single worker (blocked in
    // read until the timeout), one fills the queue slot. Staged with a
    // pause between them — opened back-to-back, the second can reach the
    // queue before the worker dequeues the first, shedding the *idle*
    // connection and leaving the slot free for the probe below.
    let idle1 = TcpStream::connect(server.addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let idle2 = TcpStream::connect(server.addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // The shed path answers 503 inline and closes; depending on who wins
    // the close/write race the client sees the 503 body or a reset — both
    // are the server refusing the connection, and the counter is the
    // ground truth either way.
    match client::get(server.addr, "/healthz") {
        Ok((status, body)) => assert_eq!(status, 503, "{body}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected probe error: {e}"
        ),
    }
    assert!(server.obs.counter("serve.shed") >= 1);

    drop(idle1);
    drop(idle2);
    // After the idle connections drain, service resumes.
    std::thread::sleep(Duration::from_millis(500));
    let (status, _) = client::get(server.addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let s = snapshot();
    let server = start(ServeConfig::default());
    let mut conn = client::Conn::open(server.addr).unwrap();
    for _ in 0..5 {
        let (status, body) = conn.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, s.healthz_json());
    }
    let (status, body) = conn.get("/v1/semantic?x=0&y=0").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, s.semantic_json(pm_geo::LocalPoint::new(0.0, 0.0)));
    // All six requests rode one connection.
    assert_eq!(server.obs.counter("serve.requests.healthz"), 5);
    assert_eq!(server.obs.counter("serve.requests.semantic"), 1);
    server.stop();
}

#[test]
fn connection_close_header_is_honored() {
    let server = start(ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::io::Write::write_all(
        &mut stream,
        b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    // read_to_string only returns if the server actually closes.
    let mut text = String::new();
    std::io::Read::read_to_string(&mut stream, &mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
    server.stop();
}

#[test]
fn request_cap_closes_the_connection() {
    let server = start(ServeConfig {
        max_requests_per_conn: 2,
        ..ServeConfig::default()
    });
    let mut conn = client::Conn::open(server.addr).unwrap();
    assert_eq!(conn.get("/healthz").unwrap().0, 200);
    assert_eq!(conn.get("/healthz").unwrap().0, 200);
    // The cap was reached: the server hung up after the second response.
    assert!(conn.get("/healthz").is_err());
    server.stop();
}

#[test]
fn error_status_closes_the_connection() {
    let server = start(ServeConfig::default());
    let mut conn = client::Conn::open(server.addr).unwrap();
    let (status, _) = conn.get("/nowhere").unwrap();
    assert_eq!(status, 404);
    // An error response ends the session (the body framing cannot be
    // trusted past it), so the next request on this connection fails.
    assert!(conn.get("/healthz").is_err());
    server.stop();
}

#[test]
fn shutdown_is_graceful() {
    let server = start(ServeConfig::default());
    let addr = server.addr;
    let (status, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    server.stop(); // join() inside asserts run() returned Ok
                   // The listener is gone: a fresh request now fails to connect or is
                   // reset rather than served.
    assert!(client::get(addr, "/healthz").is_err());
}
