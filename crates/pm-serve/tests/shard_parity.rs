//! Shard-count independence of the online path, end to end over real
//! sockets.
//!
//! The property: a logical record stream POSTed to `/v1/ingest` produces
//! **byte-identical** `GET /v1/live/patterns` bodies — and byte-identical
//! counter/gauge sections of `GET /v1/stats` — whether the server runs one
//! inline engine (`shards=1`) or fans the stream across N user-keyed
//! shards. The sealed-batch clock, exact TTL eviction, and deterministic
//! shard-merge are exactly the machinery this pins down. A second property
//! covers the crash path: killing a WAL-backed sharded engine without a
//! checkpoint, tearing one shard's newest segment, recovering, and
//! re-sending the whole stream must converge on the single-shard answer.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_core::types::GpsPoint;
use pm_geo::{GeoPoint, LocalPoint};
use pm_obs::Obs;
use pm_serve::{client, ServeConfig, ServeState, Server, Snapshot};
use pm_store::Artifact;
use pm_stream::{
    EngineConfig, IngestRecord, Recognizer, ShardConfig, ShardedEngine, StreamParams, WalConfig,
    WindowConfig,
};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shanghai anchor used across the repo's examples.
const ORIGIN: (f64, f64) = (121.4737, 31.2304);

/// One mined, geo-anchored artifact (same fixture as serve_stream.rs).
fn artifact() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        let artifact =
            Artifact::new(csd, patterns, params).with_projection(GeoPoint::new(ORIGIN.0, ORIGIN.1));
        Artifact::from_bytes(&artifact.to_bytes()).expect("store round-trip")
    })
}

fn snapshot() -> Arc<Snapshot> {
    Arc::new(Snapshot::new(artifact().clone()).expect("snapshot"))
}

/// Two unit centers the snapshot recognizes as tagged, plus one far-away
/// point it does not — the three places a generated record can land.
fn positions() -> [LocalPoint; 3] {
    let s = snapshot();
    let centers: Vec<LocalPoint> = s
        .artifact()
        .csd
        .units()
        .iter()
        .map(|u| u.center)
        .filter(|&c| s.primary_category(c).is_some())
        .take(2)
        .collect();
    assert!(centers.len() == 2, "fixture must yield two tagged units");
    [centers[0], centers[1], LocalPoint::new(5.0e6, 5.0e6)]
}

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pm-shard-parity-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// TTL covering the window (required at shards > 1), limits far above
/// anything a generated case reaches — capacity eviction and stay-buffer
/// shedding are governed by *per-shard* budgets and excluded here.
fn engine_config() -> EngineConfig {
    EngineConfig {
        detector: StreamParams {
            theta_d: 100.0,
            theta_t: 300,
            max_pending: 64,
        },
        window: WindowConfig {
            window_secs: 86_400,
            bucket_secs: 3_600,
        },
        max_users: 1_000,
        user_ttl_secs: 86_400,
        max_stay_buffer: 10_000,
    }
}

fn recognizer() -> Recognizer {
    let snap = snapshot();
    Arc::new(move |pos| snap.primary_category(pos))
}

struct Running {
    addr: SocketAddr,
    handle: pm_serve::ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

/// Boots a server around an explicitly sharded engine on an ephemeral port.
fn boot(engine: ShardedEngine) -> Running {
    let obs = Obs::enabled();
    let state = ServeState::with_engine(snapshot(), engine).with_obs(obs.clone());
    let server = Server::bind_with_state(
        "127.0.0.1:0",
        Arc::new(state),
        ServeConfig {
            max_requests_per_conn: usize::MAX,
            ..ServeConfig::default()
        },
        obs,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle,
        thread,
    }
}

fn open_shards(shards: usize) -> ShardedEngine {
    let (engine, _) = ShardedEngine::open(ShardConfig::new(shards, engine_config()), &recognizer())
        .expect("open sharded engine");
    engine
}

impl Running {
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("run");
    }
}

/// One generated record: user id, fix-vs-stay, landing spot, event time.
type Rec = (String, bool, LocalPoint, i64);

/// Expands proptest tuples into batches. The global clock strictly
/// advances, so every user's own stream is strictly time-ordered (and a
/// full re-send quarantines record for record).
fn build_batches(raw: &[(u8, u8, u8, u16)], batch_size: usize) -> Vec<Vec<Rec>> {
    let spots = positions();
    let mut t = 1_000i64;
    let mut records = Vec::with_capacity(raw.len());
    for &(user, is_stay, cell, dt) in raw {
        t += 1 + dt as i64;
        records.push((
            format!("user-{}", user % 7),
            is_stay == 1,
            spots[(cell % 3) as usize],
            t,
        ));
    }
    records
        .chunks(batch_size.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Renders a batch as the ingest body: fixes and stays keep their relative
/// order inside each array (the server processes fixes then stays — the
/// same order on every shard layout).
fn body_of(batch: &[Rec]) -> String {
    let mut body = String::from("{");
    for (key, want_stay) in [("fixes", false), ("stays", true)] {
        if body.len() > 1 {
            body.push(',');
        }
        let _ = write!(body, "\"{key}\":[");
        let mut first = true;
        for (user, is_stay, pos, t) in batch {
            if *is_stay != want_stay {
                continue;
            }
            if !first {
                body.push(',');
            }
            first = false;
            let _ = write!(
                body,
                "{{\"user\":\"{user}\",\"x\":{},\"y\":{},\"t\":{t}}}",
                pos.x, pos.y
            );
        }
        body.push(']');
    }
    body.push('}');
    body
}

/// Sends every batch on one keep-alive connection; all must be accepted.
fn send_all(addr: SocketAddr, batches: &[Vec<Rec>]) {
    let mut conn = client::Conn::open(addr).expect("connect");
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let (status, reply) = conn.post("/v1/ingest", &body_of(batch)).expect("ingest");
        assert_eq!(status, 200, "{reply}");
    }
}

fn live_body(addr: SocketAddr) -> String {
    let (status, body) = client::get(addr, "/v1/live/patterns").expect("live");
    assert_eq!(status, 200, "{body}");
    body
}

/// The deterministic tail of `/v1/stats`: counters, degradations,
/// quarantine, and gauges. The span section above it carries wall-clock
/// timings and is legitimately different run to run.
fn stats_tail(addr: SocketAddr) -> String {
    let (status, body) = client::get(addr, "/v1/stats").expect("stats");
    assert_eq!(status, 200, "{body}");
    let at = body.find("\"counters\"").expect("stats carries counters");
    body[at..].to_string()
}

/// Direct (no-HTTP) ingest of batches into a sharded engine — the crash
/// half of the recovery property, where the engine dies before any server
/// would answer queries.
fn ingest_direct(engine: &ShardedEngine, batches: &[Vec<Rec>], recognize: &Recognizer) {
    for batch in batches {
        // Mirror the HTTP ingest body's record order: `ingest_json` walks
        // the `fixes` array before `stays`, so a direct feed must apply the
        // same fixes-first reorder per batch for crash/re-send runs to
        // converge on the all-HTTP reference.
        let mut batch: Vec<Rec> = batch.clone();
        batch.sort_by_key(|(_, is_stay, _, _)| *is_stay);
        let records: Vec<(String, IngestRecord)> = batch
            .iter()
            .map(|(user, is_stay, pos, t)| {
                let point = GpsPoint::new(*pos, *t);
                let record = if *is_stay {
                    IngestRecord::Stay(point)
                } else {
                    IngestRecord::Fix(point)
                };
                (user.clone(), record)
            })
            .collect();
        engine.ingest_batch(records, recognize);
    }
}

/// Tears the newest WAL segment of one shard: drops a tail chunk so replay
/// hits a torn frame (or a clean frame boundary) partway in.
fn tear_one_shard(wal_dir: &std::path::Path, shard: usize, cut: usize) {
    let shard_dir = wal_dir.join(format!("shard-{shard:03}"));
    let newest = std::fs::read_dir(&shard_dir)
        .ok()
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .max();
    let Some(seg) = newest else {
        return; // the shard never saw a record: nothing to tear
    };
    let bytes = std::fs::read(&seg).expect("read segment");
    if bytes.len() < 16 {
        return;
    }
    let keep = bytes.len() - 1 - cut % (bytes.len() / 2);
    std::fs::write(&seg, &bytes[..keep]).expect("tear segment");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// An interleaved multi-user stream answers byte-for-byte the same
    /// through 1 shard and through N, on both read endpoints.
    #[test]
    fn live_bodies_are_shard_count_independent(
        raw in prop::collection::vec((0u8..7, 0u8..2, 0u8..3, 0u16..400), 1..80),
        batch_size in 1usize..9,
        shard_pick in 0usize..3,
    ) {
        let shards = [2, 4, 8][shard_pick];
        let batches = build_batches(&raw, batch_size);
        let one = boot(open_shards(1));
        let many = boot(open_shards(shards));
        send_all(one.addr, &batches);
        send_all(many.addr, &batches);
        prop_assert_eq!(live_body(one.addr), live_body(many.addr));
        prop_assert_eq!(stats_tail(one.addr), stats_tail(many.addr));
        one.stop();
        many.stop();
    }

    /// Crash recovery with one torn shard: kill a WAL-backed shards=4
    /// engine without a checkpoint, tear one shard's newest segment,
    /// recover, and re-send the whole stream. Per-user ordering clocks
    /// quarantine everything already recovered and re-admit exactly the
    /// torn-off suffix — the live window must land byte-for-byte on a
    /// single-shard server fed the stream (plus the same full re-send).
    #[test]
    fn torn_shard_recovery_converges_on_the_single_shard_answer(
        raw in prop::collection::vec((0u8..7, 0u8..2, 0u8..3, 0u16..400), 8..80),
        batch_size in 1usize..7,
        torn_shard in 0usize..4,
        cut in 0usize..4_096,
    ) {
        let batches = build_batches(&raw, batch_size);
        let recognize = recognizer();
        let wal_dir = scratch();
        let config = ShardConfig::new(4, engine_config())
            .with_wal(WalConfig::new(&wal_dir));

        // Crash run: stream in, die without a checkpoint.
        {
            let (engine, _) = ShardedEngine::open(config.clone(), &recognize).expect("open");
            ingest_direct(&engine, &batches, &recognize);
        } // dropped: the kill -9
        tear_one_shard(&wal_dir, torn_shard, cut);

        let (recovered, _) = ShardedEngine::open(config, &recognize).expect("recover");
        let many = boot(recovered);
        let one = boot(open_shards(1));
        // Reference: the stream twice (the second pass fully quarantines).
        send_all(one.addr, &batches);
        send_all(one.addr, &batches);
        // Recovered: one full re-send tops up whatever the tear dropped.
        send_all(many.addr, &batches);
        prop_assert_eq!(live_body(one.addr), live_body(many.addr));
        one.stop();
        many.stop();
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
}

/// TTL eviction parity, deterministically: two users transition early and
/// go quiet; a third keeps the clock moving until the first two age out.
/// Eviction tallies and the final live window must match across layouts —
/// the evictions land on *different shards at different batches*, yet the
/// settled answer is identical.
#[test]
fn ttl_eviction_parity_across_layouts() {
    let [a, b, _] = positions();
    let mut batches: Vec<Vec<Rec>> = Vec::new();
    // u1/u2: a->b->a early (2 transitions each), then silence.
    for (i, t) in [(0usize, 1_000i64), (1, 2_000), (2, 3_000)] {
        let pos = if i % 2 == 0 { a } else { b };
        batches.push(vec![
            ("u1".into(), true, pos, t),
            ("u2".into(), true, pos, t + 1),
        ]);
    }
    // u3 walks the clock far past u1/u2's TTL horizon (86_400), then
    // transitions inside the final window.
    for t in [50_000i64, 95_000, 100_000] {
        batches.push(vec![("u3".into(), true, a, t)]);
    }
    batches.push(vec![("u3".into(), true, b, 101_000)]);
    batches.push(vec![("u3".into(), true, a, 102_000)]);

    let one = boot(open_shards(1));
    let many = boot(open_shards(3));
    send_all(one.addr, &batches);
    send_all(many.addr, &batches);

    let (live_one, live_many) = (live_body(one.addr), live_body(many.addr));
    assert_eq!(live_one, live_many);
    assert!(live_one.contains("\"users\":1"), "{live_one}");
    let (stats_one, stats_many) = (stats_tail(one.addr), stats_tail(many.addr));
    assert_eq!(stats_one, stats_many);
    assert!(
        stats_one.contains("\"stream.users_evicted\": 2"),
        "u1 and u2 must age out: {stats_one}"
    );
    one.stop();
    many.stop();
}
