//! The k-anonymity floor as a property over *rendered responses*: for
//! random populations and floors, no JSON body the cohort endpoints
//! produce may surface a group aggregate backed by fewer than `k_min`
//! users — suppression is an explicit marker, never a silent drop.

use pm_cohort::{embed_users, CohortParams, CohortTable, SimilarScope, UserStay};
use pm_core::prelude::*;
use pm_serve::{json, CohortQuery, SimilarQuery, Snapshot};
use pm_store::Artifact;
use proptest::prelude::*;

fn population() -> impl Strategy<Value = Vec<Vec<UserStay>>> {
    let stay =
        (0u64..8, 0usize..Category::COUNT, 0i64..259_200).prop_map(|(unit, cat, time)| UserStay {
            unit,
            category: Some(Category::from_index(cat)),
            time,
        });
    prop::collection::vec(prop::collection::vec(stay, 1..10), 2..24)
}

fn snapshot_of(stays: Vec<Vec<UserStay>>, k_min: u32) -> Snapshot {
    let groups: Vec<(String, Vec<UserStay>)> = stays
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("u{i:03}"), s))
        .collect();
    let table = CohortTable::mine(
        embed_users(&groups, 1),
        &CohortParams {
            k_min,
            ..CohortParams::default()
        },
    );
    let params = MinerParams::default();
    let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
    Snapshot::new(Artifact::new(csd, Vec::new(), params).with_cohorts(table)).expect("snapshot")
}

/// Every `"size"` field reachable in a parsed body must be >= `k_min` —
/// any smaller group has to have been replaced by a suppression marker.
fn assert_no_small_groups(body: &str, k_min: u32) -> Result<(), TestCaseError> {
    let parsed = json::parse(body).expect("body parses");
    let mut stack = vec![&parsed];
    while let Some(value) = stack.pop() {
        match value {
            json::Json::Array(items) => stack.extend(items.iter()),
            json::Json::Object(entries) => {
                for (key, child) in entries {
                    if key == "size" {
                        let size = child.as_i64().expect("size is a number");
                        prop_assert!(
                            size >= i64::from(k_min),
                            "group of {size} < k_min {k_min} surfaced in {body}"
                        );
                    }
                    stack.push(child);
                }
            }
            _ => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_rendered_body_surfaces_a_group_below_k_min(
        stays in population(),
        k_min in 1u32..8,
    ) {
        let snapshot = snapshot_of(stays, k_min);
        let table = snapshot.cohort_table().expect("table");

        let (body, _) = snapshot.cohorts_json(&CohortQuery::default()).expect("table");
        assert_no_small_groups(&body, k_min)?;
        // Suppressed cohorts are explicit markers, never silent drops.
        let markers = body.matches("\"suppressed\":true").count();
        let hidden = table.cohorts.iter().filter(|c| table.suppressed(c.size)).count();
        prop_assert_eq!(markers, hidden, "{}", body);

        let users: Vec<String> = table.users.iter().map(|u| u.user.clone()).collect();
        for user in &users {
            let (body, _) = snapshot.user_patterns_json(user).expect("known user");
            assert_no_small_groups(&body, k_min)?;
            for scope in [SimilarScope::Cohort, SimilarScope::All] {
                let query = SimilarQuery { k: 5, scope };
                let (body, _) = snapshot.user_similar_json(user, &query).expect("known user");
                assert_no_small_groups(&body, k_min)?;
            }
        }
    }
}
