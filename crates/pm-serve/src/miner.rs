//! The supervised background re-miner.
//!
//! A [`Reminer`] owns one supervisor thread that periodically re-mines the
//! full pipeline (CSD construction → recognition → extraction) over the
//! stays the live engine has accumulated, publishes the result through a
//! crash-safe [`GenerationStore`], and hot-swaps the serving snapshot — the
//! online analogue of re-running `mine --artifact` + `POST /v1/reload`.
//!
//! ## Failure model
//!
//! Mining runs inside a private single-slot [`WorkerPool`] job wrapped in
//! [`catch_unwind`], with the supervisor waiting on a channel under a
//! deadline. Every way a job can go wrong maps to a [`FailureKind`]:
//!
//! - **panic** — the job panicked; caught, the pool worker survives;
//! - **error** — the pipeline returned a typed error;
//! - **timeout** — the deadline passed; the result, if it ever arrives, is
//!   dropped (a stale job can never publish);
//! - **publish** — the artifact failed the store's read-back verification
//!   (the previous generation keeps serving);
//! - **busy** — the previous (hung) job still occupies the worker.
//!
//! Failures drive a capped-exponential [`Backoff`] with deterministic
//! jitter and a [`CircuitBreaker`]: after `circuit_threshold` consecutive
//! failures the miner stops attempting until `circuit_cooldown` passes,
//! then probes half-open. The serving path is never involved — a broken
//! miner degrades to "the last good snapshot keeps serving", never to 5xx.
//!
//! Everything is observable: `miner.*` counters (pre-registered at zero by
//! the server) and the [`MinerStatus`] JSON behind `GET /v1/miner`.
//!
//! Fault injection: [`RemineConfig::fault`] lets tests inject a
//! [`InjectedFault`] per job sequence number, exercising each failure path
//! deterministically.

use crate::snapshot::Snapshot;
use crate::state::ServeState;
use pm_core::extract::extract_patterns;
use pm_core::recognize::{recognize_all, stay_points_of};
use pm_core::types::{SemanticTrajectory, StayPoint};
use pm_obs::Obs;
use pm_runtime::{Backoff, CircuitBreaker, CircuitState, WorkerPool};
use pm_store::{Artifact, GenerationStore};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a re-mining attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The mining job panicked (caught; the worker survives).
    Panic,
    /// The pipeline returned an error.
    Error,
    /// The job missed its deadline.
    Timeout,
    /// The mined artifact failed publish-time read-back verification.
    Publish,
    /// The previous job still occupies the worker slot.
    Busy,
}

impl FailureKind {
    /// The `miner.failures_*` counter suffix / status label.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Error => "error",
            FailureKind::Timeout => "timeout",
            FailureKind::Publish => "publish",
            FailureKind::Busy => "busy",
        }
    }
}

/// A deterministic fault injected into one mining job (tests only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic inside the job.
    Panic,
    /// Return a pipeline error.
    Error,
    /// Sleep this long before mining (drive timeouts / busy).
    Hang(Duration),
    /// Mine normally, then flip a byte of the artifact — the publish
    /// read-back must catch it.
    CorruptArtifact,
}

/// Decides, per job sequence number (1-based), whether to inject a fault.
pub type FaultHook = Arc<dyn Fn(u64) -> Option<InjectedFault> + Send + Sync>;

/// Tunables of the background re-miner.
#[derive(Clone)]
pub struct RemineConfig {
    /// Time between re-mining attempts after a success (or skip).
    pub interval: Duration,
    /// Skip the attempt (counted as `skipped_no_data`) below this many
    /// accumulated stays.
    pub min_stays: usize,
    /// Per-job deadline; a job past it is a `timeout` failure.
    pub job_deadline: Duration,
    /// First retry delay after a failure.
    pub backoff_base: Duration,
    /// Retry delay cap.
    pub backoff_max: Duration,
    /// Consecutive failures that open the circuit.
    pub circuit_threshold: u32,
    /// How long an open circuit rests before probing half-open.
    pub circuit_cooldown: Duration,
    /// Generations the store retains (the current one is never collected).
    pub keep_generations: usize,
    /// Seed of the backoff jitter (deterministic per process).
    pub seed: u64,
    /// Test-only fault injection; `None` in production.
    pub fault: Option<FaultHook>,
}

impl Default for RemineConfig {
    fn default() -> RemineConfig {
        RemineConfig {
            interval: Duration::from_secs(60),
            min_stays: 8,
            job_deadline: Duration::from_secs(120),
            backoff_base: Duration::from_millis(500),
            backoff_max: Duration::from_secs(60),
            circuit_threshold: 5,
            circuit_cooldown: Duration::from_secs(120),
            keep_generations: 4,
            seed: 0,
            fault: None,
        }
    }
}

impl std::fmt::Debug for RemineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemineConfig")
            .field("interval", &self.interval)
            .field("min_stays", &self.min_stays)
            .field("job_deadline", &self.job_deadline)
            .field("backoff_base", &self.backoff_base)
            .field("backoff_max", &self.backoff_max)
            .field("circuit_threshold", &self.circuit_threshold)
            .field("circuit_cooldown", &self.circuit_cooldown)
            .field("keep_generations", &self.keep_generations)
            .field("seed", &self.seed)
            .field("fault", &self.fault.is_some())
            .finish()
    }
}

/// The observable state of the re-miner, rendered at `GET /v1/miner`.
#[derive(Debug, Clone, Default)]
pub struct MinerStatus {
    /// `closed`, `open`, or `half_open`.
    pub circuit: String,
    /// Jobs attempted (including ones that failed).
    pub jobs_started: u64,
    /// Jobs that mined, published, and swapped successfully.
    pub jobs_succeeded: u64,
    /// Attempts skipped for lack of accumulated stays.
    pub skipped_no_data: u64,
    /// Failure tallies by kind, in [`FailureKind`] order
    /// (panic, error, timeout, publish, busy).
    pub failures: [u64; 5],
    /// Consecutive failures right now (resets on success).
    pub consecutive_failures: u32,
    /// Times the circuit opened.
    pub circuit_opens: u64,
    /// Generations published by this process.
    pub published: u64,
    /// The store generation currently served, if any was published.
    pub generation: Option<u64>,
    /// Stays snapshotted into the most recent attempt.
    pub last_stays: u64,
    /// Human-readable cause of the most recent failure.
    pub last_error: Option<String>,
    /// Delay until the next attempt, as last scheduled.
    pub next_delay_ms: u64,
}

impl MinerStatus {
    /// Total failures across kinds.
    pub fn failures_total(&self) -> u64 {
        self.failures.iter().sum()
    }

    /// The `GET /v1/miner` body.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"enabled\":true,\"circuit\":\"{}\",\"jobs_started\":{},\"jobs_succeeded\":{},\
             \"skipped_no_data\":{},\"failures\":{{\"panic\":{},\"error\":{},\"timeout\":{},\
             \"publish\":{},\"busy\":{},\"total\":{}}},\"consecutive_failures\":{},\
             \"circuit_opens\":{},\"published\":{},\"generation\":",
            self.circuit,
            self.jobs_started,
            self.jobs_succeeded,
            self.skipped_no_data,
            self.failures[0],
            self.failures[1],
            self.failures[2],
            self.failures[3],
            self.failures[4],
            self.failures_total(),
            self.consecutive_failures,
            self.circuit_opens,
            self.published,
        );
        match self.generation {
            Some(g) => out.push_str(&g.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"last_stays\":{}", self.last_stays));
        out.push_str(",\"last_error\":");
        match &self.last_error {
            Some(e) => crate::json::push_str_lit(&mut out, e),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"next_delay_ms\":{}}}", self.next_delay_ms));
        out
    }
}

/// Handle to the supervisor thread. Dropping (or [`Reminer::stop`]) signals
/// the thread and joins it — a hung job delays the join by at most its
/// remaining sleep, never forever, because jobs are deadline-bounded on the
/// supervisor side and the injected hang is finite.
#[derive(Debug)]
pub struct Reminer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    status: Arc<Mutex<MinerStatus>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reminer {
    /// Starts the supervisor. Its status is also attached to `state`, which
    /// makes `GET /v1/miner` live immediately.
    pub fn spawn(
        state: Arc<ServeState>,
        store: GenerationStore,
        config: RemineConfig,
        obs: Obs,
    ) -> Reminer {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let status = Arc::new(Mutex::new(MinerStatus {
            circuit: "closed".into(),
            next_delay_ms: config.interval.as_millis() as u64,
            ..MinerStatus::default()
        }));
        state.attach_miner(Arc::clone(&status));
        let thread_stop = Arc::clone(&stop);
        let thread_status = Arc::clone(&status);
        let handle = std::thread::Builder::new()
            .name("pm-reminer".into())
            .spawn(move || supervise(state, store, config, obs, thread_stop, thread_status))
            .expect("spawn reminer thread");
        Reminer {
            stop,
            status,
            handle: Some(handle),
        }
    }

    /// A copy of the current status.
    pub fn status(&self) -> MinerStatus {
        self.status
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Signals the supervisor and joins it.
    pub fn stop(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reminer {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

/// The supervisor loop: sleep (interruptibly), attempt, record, schedule.
fn supervise(
    state: Arc<ServeState>,
    store: GenerationStore,
    config: RemineConfig,
    obs: Obs,
    stop: Arc<(Mutex<bool>, Condvar)>,
    status: Arc<Mutex<MinerStatus>>,
) {
    // One worker, zero queue slots beyond it: a second submission while a
    // hung job runs is refused — that *is* the busy failure.
    let pool = WorkerPool::new(1, 1);
    let mut backoff = Backoff::new(config.backoff_base, config.backoff_max, config.seed);
    let mut breaker = CircuitBreaker::new(config.circuit_threshold);
    let mut opened_at: Option<Instant> = None;
    let mut delay = config.interval;
    let mut job_seq = 0u64;

    loop {
        if wait_or_stop(&stop, delay) {
            break;
        }

        // Circuit discipline: while open, only the cooldown clock matters.
        if breaker.state() == CircuitState::Open {
            let waited = opened_at.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
            if waited < config.circuit_cooldown {
                delay = config.circuit_cooldown - waited;
                continue;
            }
            breaker.cooldown_elapsed();
            set_status(&status, |s| {
                s.circuit = circuit_label(breaker.state()).into()
            });
        }

        let stays = state.stays_snapshot();
        if stays.len() < config.min_stays {
            obs.incr("miner.skipped_no_data", 1);
            delay = config.interval;
            set_status(&status, |s| {
                s.skipped_no_data += 1;
                s.last_stays = stays.len() as u64;
                s.next_delay_ms = delay.as_millis() as u64;
            });
            continue;
        }

        job_seq += 1;
        obs.incr("miner.jobs_started", 1);
        set_status(&status, |s| {
            s.jobs_started += 1;
            s.last_stays = stays.len() as u64;
        });
        let base = state.snapshot().0;
        let outcome = run_job(
            &pool,
            stays,
            base,
            config.fault.clone(),
            job_seq,
            config.job_deadline,
        )
        .and_then(|bytes| {
            let receipt = store
                .publish(&bytes)
                .map_err(|e| (FailureKind::Publish, e.to_string()))?;
            // The bytes just survived the store's read-back verification;
            // decoding them again for the swap cannot fail in a way the
            // verification did not already catch, but stay typed anyway.
            let artifact = Artifact::from_bytes_verified(&bytes)
                .map_err(|e| (FailureKind::Publish, e.to_string()))?;
            let snapshot = Snapshot::new(artifact).map_err(|m| (FailureKind::Publish, m))?;
            let epoch = state.swap(Arc::new(snapshot));
            obs.incr("serve.swap_epoch", 1);
            obs.gauge("serve.epoch", epoch as f64);
            Ok(receipt)
        });

        match outcome {
            Ok(receipt) => {
                backoff.reset();
                breaker.record_success();
                opened_at = None;
                delay = config.interval;
                obs.incr("miner.jobs_succeeded", 1);
                obs.incr("miner.published_generations", 1);
                obs.gauge("miner.generation", receipt.generation as f64);
                set_status(&status, |s| {
                    s.jobs_succeeded += 1;
                    s.published += 1;
                    s.generation = Some(receipt.generation);
                    s.consecutive_failures = 0;
                    s.circuit = circuit_label(breaker.state()).into();
                    s.last_error = None;
                    s.next_delay_ms = delay.as_millis() as u64;
                });
            }
            Err((kind, message)) => {
                obs.incr(&format!("miner.failures_{}", kind.label()), 1);
                let before = breaker.opens();
                breaker.record_failure();
                if breaker.opens() > before {
                    obs.incr("miner.circuit_opens", 1);
                    opened_at = Some(Instant::now());
                }
                delay = if breaker.state() == CircuitState::Open {
                    config.circuit_cooldown
                } else {
                    backoff.next_delay()
                };
                set_status(&status, |s| {
                    s.failures[failure_index(kind)] += 1;
                    s.consecutive_failures = breaker.consecutive_failures();
                    s.circuit_opens = breaker.opens();
                    s.circuit = circuit_label(breaker.state()).into();
                    s.last_error = Some(format!("{}: {message}", kind.label()));
                    s.next_delay_ms = delay.as_millis() as u64;
                });
            }
        }
    }
    pool.shutdown();
}

/// Waits up to `delay` on the stop condvar; `true` means "stop now".
fn wait_or_stop(stop: &Arc<(Mutex<bool>, Condvar)>, delay: Duration) -> bool {
    let (lock, cvar) = &**stop;
    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
    let deadline = Instant::now() + delay;
    while !*stopped {
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let (guard, _) = cvar
            .wait_timeout(stopped, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        stopped = guard;
    }
    true
}

fn circuit_label(state: CircuitState) -> &'static str {
    match state {
        CircuitState::Closed => "closed",
        CircuitState::Open => "open",
        CircuitState::HalfOpen => "half_open",
    }
}

fn failure_index(kind: FailureKind) -> usize {
    match kind {
        FailureKind::Panic => 0,
        FailureKind::Error => 1,
        FailureKind::Timeout => 2,
        FailureKind::Publish => 3,
        FailureKind::Busy => 4,
    }
}

fn set_status(status: &Mutex<MinerStatus>, f: impl FnOnce(&mut MinerStatus)) {
    f(&mut status.lock().unwrap_or_else(|e| e.into_inner()));
}

/// Submits one mining job and awaits it under the deadline. The job is
/// panic-isolated; a timed-out job's eventual result is dropped with its
/// channel, so stale work can never publish.
fn run_job(
    pool: &WorkerPool,
    stays: Vec<(String, StayPoint)>,
    base: Arc<Snapshot>,
    fault: Option<FaultHook>,
    job_seq: u64,
    deadline: Duration,
) -> Result<Vec<u8>, (FailureKind, String)> {
    let (tx, rx) = mpsc::channel();
    let submitted = pool.try_execute(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            mine_bytes(&stays, &base, fault.as_deref(), job_seq)
        }));
        let _ = tx.send(match result {
            Ok(Ok(bytes)) => Ok(bytes),
            Ok(Err(message)) => Err((FailureKind::Error, message)),
            Err(panic) => Err((FailureKind::Panic, panic_message(&panic))),
        });
    });
    if submitted.is_err() {
        return Err((
            FailureKind::Busy,
            "previous mining job still holds the worker".into(),
        ));
    }
    match rx.recv_timeout(deadline) {
        Ok(result) => result,
        Err(_) => Err((
            FailureKind::Timeout,
            format!("mining exceeded its {deadline:?} deadline"),
        )),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// The actual re-mining pipeline: accumulated stays → per-user semantic
/// trajectories → CSD → recognition → extraction → artifact bytes.
///
/// The base snapshot provides the POI database, parameters, and projection;
/// only the stay corpus (and therefore popularity, units, and patterns) is
/// refreshed. Deterministic: the same stays against the same base always
/// produce the same bytes.
fn mine_bytes(
    stays: &[(String, StayPoint)],
    base: &Snapshot,
    fault: Option<&(dyn Fn(u64) -> Option<InjectedFault> + Send + Sync)>,
    job_seq: u64,
) -> Result<Vec<u8>, String> {
    let mut corrupt = false;
    if let Some(injected) = fault.and_then(|hook| hook(job_seq)) {
        match injected {
            InjectedFault::Panic => panic!("injected panic (job {job_seq})"),
            InjectedFault::Error => return Err(format!("injected error (job {job_seq})")),
            InjectedFault::Hang(duration) => std::thread::sleep(duration),
            InjectedFault::CorruptArtifact => corrupt = true,
        }
    }

    // Group per user, deterministically; each user's stays are already in
    // emission order, but a stable time sort makes no assumptions.
    let mut by_user: BTreeMap<&str, Vec<StayPoint>> = BTreeMap::new();
    for (user, stay) in stays {
        by_user.entry(user).or_default().push(*stay);
    }
    let trajectories: Vec<SemanticTrajectory> = by_user
        .into_values()
        .map(|mut stays| {
            stays.sort_by_key(|s| s.time);
            SemanticTrajectory::new(stays)
        })
        .collect();

    let mut params = base.artifact().params;
    // The background job shares the box with the serving path; keep it on
    // one core. Results are bit-identical at every thread count.
    params.threads = 1;
    let pois = base.artifact().csd.pois().to_vec();
    let positions = stay_points_of(&trajectories);
    let csd = pm_core::construct::CitySemanticDiagram::build(&pois, &positions, &params)
        .map_err(|e| e.to_string())?;
    let recognized = recognize_all(&csd, trajectories, &params).map_err(|e| e.to_string())?;
    let patterns = extract_patterns(&recognized, &params).map_err(|e| e.to_string())?;
    let mut artifact = Artifact::new(csd, patterns, params);
    if let Some(origin) = base.artifact().projection {
        artifact = artifact.with_projection(origin);
    }
    let mut bytes = artifact.to_bytes();
    if corrupt {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_json_renders_both_shapes() {
        let empty = MinerStatus {
            circuit: "closed".into(),
            ..MinerStatus::default()
        };
        let body = empty.to_json();
        assert!(body.contains("\"generation\":null"), "{body}");
        assert!(body.contains("\"last_error\":null"), "{body}");
        assert!(body.contains("\"circuit\":\"closed\""), "{body}");

        let busy = MinerStatus {
            circuit: "open".into(),
            jobs_started: 7,
            jobs_succeeded: 2,
            failures: [1, 0, 2, 1, 0],
            consecutive_failures: 4,
            circuit_opens: 1,
            published: 2,
            generation: Some(9),
            last_error: Some("timeout: slow \"quoted\"".into()),
            next_delay_ms: 1500,
            ..MinerStatus::default()
        };
        let body = busy.to_json();
        assert!(body.contains("\"total\":4"), "{body}");
        assert!(body.contains("\"generation\":9"), "{body}");
        assert!(body.contains("\\\"quoted\\\""), "{body}");
        crate::json::parse(&body).expect("valid JSON");
    }

    #[test]
    fn failure_kinds_map_to_distinct_labels_and_slots() {
        let kinds = [
            FailureKind::Panic,
            FailureKind::Error,
            FailureKind::Timeout,
            FailureKind::Publish,
            FailureKind::Busy,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            assert_eq!(failure_index(kind), i);
            assert!(seen.insert(kind.label()));
        }
    }
}
