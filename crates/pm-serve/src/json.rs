//! Minimal JSON support for the service: a strict recursive-descent parser
//! for request bodies and a few composition helpers for responses.
//!
//! std-only by design (workspace rule); the response side reuses the
//! number/string formatting of [`pm_obs::json`] so every JSON emitter in the
//! workspace renders identically.

use std::collections::BTreeMap;

/// Maximum nesting depth the parser accepts — deep enough for any real
/// request body, shallow enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Objects keep `BTreeMap` order (sorted keys), which
/// is irrelevant for reading and keeps lookups simple.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as an integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF8 number")?;
    let v: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Number(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-UTF8 \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates are not combined — the service never
                        // needs astral-plane input; reject instead of
                        // mis-decoding.
                        let c = char::from_u32(code).ok_or("\\u escape is a surrogate half")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run of plain characters up to the next
                // quote or escape in one slice. Scanning bytes is sound:
                // every byte of a multi-byte UTF-8 scalar is >= 0x80, so it
                // can never collide with '"' (0x22) or '\\' (0x5C) — and
                // validating only the run keeps the parser O(n) overall
                // (validating the *remainder* per character made large
                // ingest bodies quadratic).
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run =
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF8 string")?;
                out.push_str(run);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Response composition helpers
// ---------------------------------------------------------------------------

/// Renders a JSON string literal (quotes included) into `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    pm_obs::json::write_str(out, s);
}

/// Renders an `f64` exactly as every other workspace JSON emitter does.
pub fn num(v: f64) -> String {
    pm_obs::json::number(v)
}

/// A `{"error": ...}` body.
pub fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    push_str_lit(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"points":[{"x":1.5,"y":-2,"t":3600}],"name":"a\nb","ok":true,"none":null}"#;
        let v = parse(doc).unwrap();
        let points = v.get("points").unwrap().as_array().unwrap();
        assert_eq!(points[0].get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(points[0].get("t").unwrap().as_i64(), Some(3600));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\nb"));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""é\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\tA"));
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(
            error_body("bad \"x\""),
            r#"{"error":"bad \"x\""}"#.to_string()
        );
    }
}
