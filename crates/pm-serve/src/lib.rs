//! # pm-serve — the online semantic query service
//!
//! Serves a mined run (a [`pm_store::Artifact`]) over HTTP: the paper's
//! offline pipeline becomes an online service answering "what happens
//! here?" (`GET /v1/semantic`), "annotate this trajectory" (Algorithm 3 on
//! demand, `POST /v1/annotate`), and "which patterns match?"
//! ([`pm_core::query::PatternQuery`] over the stored pattern set,
//! `GET /v1/patterns`).
//!
//! std-only, like the rest of the workspace: the HTTP/1.1 implementation
//! sits directly on [`std::net::TcpListener`], the worker pool is
//! [`pm_runtime::WorkerPool`], and observability is [`pm_obs::Obs`]
//! counters surfaced at `GET /v1/stats`.
//!
//! ## Endpoints
//!
//! | method & path       | query / body                                    |
//! |---------------------|-------------------------------------------------|
//! | `GET /healthz`      | —                                               |
//! | `GET /v1/semantic`  | `x`,`y` (meters) or `lat`,`lon` (geo artifacts) |
//! | `POST /v1/annotate` | `{"points":[{"x":..,"y":..,"t":..}, ...]}`      |
//! | `GET /v1/patterns`  | `from`, `to`, `involving`, `min_support`, `min_len`, `max_len`, `bucket`, `near=x,y,r`, `near_ll=lon,lat,r`, `limit` |
//! | `GET /v1/stats`     | — (pm-obs run report)                           |
//!
//! Every response is JSON with `Connection: close`. The accept queue is
//! bounded; overload is shed with `503` instead of queueing without limit.
//!
//! ## Serving model
//!
//! The artifact is loaded **once** into an immutable [`Snapshot`] behind an
//! `Arc`; worker threads share it read-only, so there is no locking on the
//! request path and responses are bit-deterministic for a given artifact —
//! the integration tests compare bytes served over the socket against the
//! snapshot's in-process output.

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod snapshot;

pub use server::{ServeConfig, Server, ShutdownHandle};
pub use snapshot::Snapshot;
