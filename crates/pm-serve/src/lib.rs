//! # pm-serve — the online semantic query service
//!
//! Serves a mined run (a [`pm_store::Artifact`]) over HTTP: the paper's
//! offline pipeline becomes an online service answering "what happens
//! here?" (`GET /v1/semantic`), "annotate this trajectory" (Algorithm 3 on
//! demand, `POST /v1/annotate`), and "which patterns match?"
//! ([`pm_core::query::PatternQuery`] over the stored pattern set,
//! `GET /v1/patterns`).
//!
//! std-only, like the rest of the workspace: the HTTP/1.1 implementation
//! sits directly on [`std::net::TcpListener`], the worker pool is
//! [`pm_runtime::WorkerPool`], and observability is [`pm_obs::Obs`]
//! counters surfaced at `GET /v1/stats`.
//!
//! ## Endpoints
//!
//! | method & path       | query / body                                    |
//! |---------------------|-------------------------------------------------|
//! | `GET /healthz`      | —                                               |
//! | `GET /v1/semantic`  | `x`,`y` (meters) or `lat`,`lon` (geo artifacts) |
//! | `POST /v1/annotate` | `{"points":[{"x":..,"y":..,"t":..}, ...]}`      |
//! | `GET /v1/patterns`  | `from`, `to`, `involving`, `min_support`, `min_len`, `max_len`, `bucket`, `near=x,y,r`, `near_ll=lon,lat,r`, `limit` |
//! | `GET /v1/motifs`    | `min_nodes`, `max_nodes`, `category`, `top` — ranked motif classes from the artifact (`404` when it has none) |
//! | `GET /v1/cohorts`   | `category`, `min_size`, `top` — life-pattern cohort aggregates; sub-`k_min` cohorts render `suppressed` (`404` when the artifact has no cohort index) |
//! | `GET /v1/users/:id/patterns` | — one user's pattern record from the cohort index (`404` without the section or user) |
//! | `GET /v1/users/:id/similar` | `k`, `scope=cohort\|all` — ranked similar users; the neighborhood aggregate is suppressed below `k_min` |
//! | `GET /v1/stats`     | — (pm-obs run report)                           |
//! | `POST /v1/ingest`   | `{"fixes":[{"user":..,"x":..,"y":..,"t":..},..],"stays":[..]}` — live trajectory stream |
//! | `GET /v1/live/patterns` | — (sliding-window semantic transition counts) |
//! | `GET /v1/live/motifs` | — (sliding 7-day mobility-motif classes, shard-merge deterministic) |
//! | `POST /v1/reload`   | `{"path":..}` (optional) — validate + hot-swap the artifact |
//! | `GET /v1/miner`     | — (background re-miner status: circuit state, failure tallies, generations) |
//!
//! Every response is JSON. Connections are HTTP/1.1 **keep-alive** (capped
//! per connection; `Connection: close` and error statuses end the session).
//! The accept queue is bounded; overload is shed with `503`, oversized
//! ingest batches with `429`, instead of queueing without limit — and
//! overload answers carry a `Retry-After` header so clients back off by the
//! server's clock.
//!
//! ## Serving model
//!
//! The artifact is loaded into an immutable [`Snapshot`]; a [`ServeState`]
//! publishes it behind an epoch-versioned [`epoch::EpochCell`] — lock-free
//! steady-state reads — so `POST /v1/reload` can hot-swap a revalidated
//! artifact while in-flight requests finish on the snapshot they started
//! with. Query responses are bit-deterministic for a given artifact — the
//! integration tests compare bytes served over the socket against the
//! snapshot's in-process output. The live side (`/v1/ingest` →
//! `/v1/live/patterns`) runs a user-keyed [`pm_stream::ShardedEngine`]
//! behind the same state: batches fan out to per-shard engines and worker
//! threads, and merged reads are byte-identical at any shard count.
//!
//! ## Online loop
//!
//! With a WAL configured ([`pm_stream::ShardConfig::with_wal`]), each
//! shard logs its slice of every accepted batch before its engine sees it
//! and checkpoints its state periodically — a killed process recovers its
//! exact live state on restart. A [`Reminer`] supervises periodic background re-mining
//! over the accumulated stays: panic-isolated, deadline-bounded jobs whose
//! artifacts publish through a read-back-verified [`pm_store::GenerationStore`]
//! before the serving snapshot swaps. Miner failures back off exponentially
//! and trip a circuit breaker; the serving path never 5xxs because of them.

pub mod client;
pub mod epoch;
pub mod http;
pub mod json;
pub mod miner;
pub mod server;
pub mod snapshot;
pub mod state;

pub use epoch::EpochCell;
pub use miner::{FailureKind, InjectedFault, MinerStatus, RemineConfig, Reminer};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use snapshot::{CohortLookup, CohortQuery, MotifQuery, SimilarQuery, Snapshot};
pub use state::ServeState;
