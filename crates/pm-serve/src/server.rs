//! The TCP front end: accept loop, worker pool, shedding, and shutdown.
//!
//! One [`Server`] owns a `TcpListener` and a fixed [`WorkerPool`]
//! (pm-runtime primitives, so pool jobs report worker slots to pm-obs spans
//! exactly like `par_map` regions do). Each accepted connection becomes one
//! pool job that serves requests **keep-alive** until the client closes,
//! asks for `Connection: close`, an error status ends the session, or the
//! per-connection request cap is reached. When the bounded queue is full the
//! accept loop answers `503` inline instead of queueing — predictable
//! shedding beats unbounded latency.
//!
//! Requests route against the shared [`ServeState`]: the epoch-versioned
//! [`Snapshot`] (hot-swappable via `POST /v1/reload`) plus the live
//! [`pm_stream::IngestEngine`] behind `POST /v1/ingest`.
//!
//! Shutdown is cooperative and std-only: a [`ShutdownHandle`] flips an
//! atomic flag and pokes the listener with a loopback connection to unblock
//! `accept`, after which the pool drains its queue and joins.

use crate::http::{self, Request};
use crate::json::{self, error_body};
use crate::snapshot::Snapshot;
use crate::state::ServeState;
use pm_obs::Obs;
use pm_runtime::WorkerPool;
use pm_stream::{BatchOutcome, EngineConfig};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables of one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` resolves via `PM_THREADS` / available
    /// parallelism, exactly like the mining pipeline.
    pub threads: usize,
    /// Bounded accept-queue capacity; connections beyond it are shed with
    /// `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Requests served on one keep-alive connection before the server
    /// closes it (lets the accept loop re-balance long-lived clients).
    pub max_requests_per_conn: usize,
    /// Records (`fixes` + `stays`) accepted in one `POST /v1/ingest` batch;
    /// larger batches are refused with `429`.
    pub max_batch_records: usize,
    /// `Retry-After` (seconds) attached to overload answers (`429`/`503`)
    /// so clients back off by the server's clock.
    pub retry_after_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 0,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_requests_per_conn: 64,
            max_batch_records: 10_000,
            retry_after_secs: 1,
        }
    }
}

/// Requests the accept loop to stop. Clone freely; the first `shutdown`
/// wins, later calls are no-ops.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Stops the server: queued requests still drain, new connections are
    /// no longer accepted.
    pub fn shutdown(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Unblock the (possibly idle) accept call with a throwaway
            // loopback connection — the std-only analogue of a signal pipe.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    obs: Obs,
    config: ServeConfig,
    flag: Arc<AtomicBool>,
}

/// Endpoint labels used for `serve.requests.*` / `serve.errors.*` counters.
const ENDPOINTS: [&str; 16] = [
    "healthz",
    "semantic",
    "annotate",
    "patterns",
    "motifs",
    "cohorts",
    "user_patterns",
    "user_similar",
    "stats",
    "ingest",
    "live_patterns",
    "live_motifs",
    "reload",
    "miner",
    "bad_request",
    "not_found",
];

/// Cohort-layer counters pre-registered at zero so the `/v1/stats` schema
/// is stable before the first per-user query: per-endpoint serve tallies,
/// k-anonymity suppressions, and the two 404 causes.
const COHORT_COUNTERS: [&str; 6] = [
    "cohort.cohorts_served",
    "cohort.patterns_served",
    "cohort.similar_served",
    "cohort.suppressed_aggregates",
    "cohort.unknown_user",
    "cohort.missing_section",
];

/// Stream-layer counters pre-registered at zero (see the pm-obs naming
/// scheme: `quarantine.*` / `degradation.*` prefixes surface in their own
/// run-report sections).
const STREAM_COUNTERS: [&str; 8] = [
    "stream.fixes_accepted",
    "stream.stays_emitted",
    "stream.transitions_recorded",
    "stream.transitions_late",
    "stream.users_evicted",
    "quarantine.stream_out_of_order",
    "degradation.stream_dropped_fixes",
    "serve.swap_epoch",
];

/// Online-loop robustness counters, pre-registered at zero so the failure
/// schema is visible in `/v1/stats` before anything ever fails. `wal.*`
/// tracks the ingest write-ahead log; `miner.*` the supervised re-miner;
/// `motif.*` the live day-graph closures behind `/v1/live/motifs`.
const ROBUSTNESS_COUNTERS: [&str; 23] = [
    "motif.days_closed",
    "motif.days_oversize",
    "wal.appended_batches",
    "wal.appended_records",
    "wal.append_errors",
    "wal.segments_rolled",
    "wal.checkpoints",
    "wal.checkpoint_errors",
    "wal.replayed_batches",
    "wal.replayed_records",
    "wal.torn_frames",
    "wal.corrupt_frames",
    "miner.jobs_started",
    "miner.jobs_succeeded",
    "miner.skipped_no_data",
    "miner.failures_panic",
    "miner.failures_error",
    "miner.failures_timeout",
    "miner.failures_publish",
    "miner.failures_busy",
    "miner.circuit_opens",
    "miner.published_generations",
    "miner.degraded_to_last_good",
];

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a fresh
    /// [`ServeState`] around `snapshot` — the engine takes its thresholds
    /// from the artifact's mined parameters. The server does not accept
    /// until [`Server::run`].
    pub fn bind(
        addr: &str,
        snapshot: Arc<Snapshot>,
        config: ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Server> {
        let engine = EngineConfig::from_miner(&snapshot.artifact().params);
        let state = ServeState::new(snapshot, engine)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?
            .with_obs(obs.clone());
        Server::bind_with_state(addr, Arc::new(state), config, obs)
    }

    /// Binds `addr` around an externally built [`ServeState`] (reload path,
    /// custom engine config) and prepares the counter schema.
    pub fn bind_with_state(
        addr: &str,
        state: Arc<ServeState>,
        config: ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Pre-register every counter at zero so /v1/stats has a stable
        // schema even before the first request.
        for ep in ENDPOINTS {
            obs.incr(&format!("serve.requests.{ep}"), 0);
            obs.incr(&format!("serve.errors.{ep}"), 0);
        }
        for name in STREAM_COUNTERS {
            obs.incr(name, 0);
        }
        for name in ROBUSTNESS_COUNTERS {
            obs.incr(name, 0);
        }
        for name in COHORT_COUNTERS {
            obs.incr(name, 0);
        }
        obs.incr("serve.shed", 0);
        obs.gauge("serve.queue_capacity", config.queue_capacity as f64);
        obs.gauge("serve.epoch", state.epoch() as f64);
        obs.gauge("stream.users_active", 0.0);
        obs.gauge("stream.buffered_fixes", 0.0);
        Ok(Server {
            listener,
            state,
            obs,
            config,
            flag: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with `127.0.0.1:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state this server routes against.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.listener.local_addr()?,
        })
    }

    /// Serves until the shutdown handle fires, then drains queued requests
    /// and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        let pool = WorkerPool::new(self.config.threads, self.config.queue_capacity);
        self.obs.set_threads(pool.threads());
        for conn in self.listener.incoming() {
            if self.flag.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept failures (EMFILE, aborted handshake)
                // must not kill the server.
                Err(_) => continue,
            };
            // Keep a second handle so the connection can still be answered
            // with 503 when the pool rejects the job (the job owns `stream`
            // and is dropped on rejection).
            let shed_handle = stream.try_clone();
            let state = Arc::clone(&self.state);
            let obs = self.obs.clone();
            let config = self.config.clone();
            let submitted = pool.try_execute(move || {
                handle_connection(stream, &state, &obs, &config);
            });
            if submitted.is_err() {
                self.obs.incr("serve.shed", 1);
                if let Ok(mut s) = shed_handle {
                    let _ = s.set_write_timeout(Some(self.config.write_timeout));
                    let _ = http::write_response_with(
                        &mut s,
                        503,
                        &error_body("server busy"),
                        true,
                        Some(self.config.retry_after_secs),
                    );
                }
            }
        }
        pool.shutdown();
        // Graceful shutdown: with a WAL attached, cut a final checkpoint so
        // a restart recovers instantly — no segment replay needed.
        self.state.checkpoint_now();
        Ok(())
    }
}

/// One connection: serve requests keep-alive until the client closes, asks
/// to, errors, or hits the per-connection cap.
fn handle_connection(stream: TcpStream, state: &ServeState, obs: &Obs, config: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // Small request/response pairs on a keep-alive connection are exactly
    // the pattern Nagle + delayed ACK turns into ~40ms stalls; responses
    // must leave as soon as they are written.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut served = 0usize;
    loop {
        if served > 0 {
            // Between requests, a clean client disconnect is EOF — not a
            // malformed request. Peek before parsing so it closes silently.
            match reader.fill_buf() {
                Ok([]) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let span = obs.span("serve.request");
        let (status, body, endpoint, client_close) = match http::read_request(&mut reader) {
            Err(e) => (e.status, error_body(&e.message), "bad_request", true),
            Ok(req) => {
                let (status, body, endpoint) = route(state, obs, &req, config);
                (status, body, endpoint, req.close)
            }
        };
        obs.incr(&format!("serve.requests.{endpoint}"), 1);
        if status >= 400 {
            obs.incr(&format!("serve.errors.{endpoint}"), 1);
        }
        served += 1;
        // Error statuses close too: the request body may not have been
        // consumed, so continuing would desync the request framing.
        let close = client_close || status >= 400 || served >= config.max_requests_per_conn;
        // Overload answers tell the client when to come back.
        let retry_after = matches!(status, 429 | 503).then_some(config.retry_after_secs);
        let written = http::write_response_with(&mut write_half, status, &body, close, retry_after);
        span.finish();
        if close || written.is_err() {
            break;
        }
    }
}

/// Folds one ingest batch outcome into the observability counters and
/// refreshes the engine gauges. The counter names live in
/// [`crate::state::outcome_counters`], shared with the settled-read paths.
fn record_outcome(obs: &Obs, state: &ServeState, outcome: &BatchOutcome) {
    crate::state::outcome_counters(obs, outcome);
    refresh_gauges(obs, state);
}

/// Reads the (settled) engine gauges into pm-obs.
fn refresh_gauges(obs: &Obs, state: &ServeState) {
    let (users, buffered) = state.engine_gauges();
    obs.gauge("stream.users_active", users as f64);
    obs.gauge("stream.buffered_fixes", buffered as f64);
}

/// Parses a request body as JSON, or explains why not.
fn parse_body(req: &Request) -> Result<json::Json, String> {
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return json::parse("{}").map_err(|e| format!("invalid JSON: {e}"));
    }
    json::parse(text).map_err(|e| format!("invalid JSON: {e}"))
}

/// Maps a parsed request onto the shared state.
fn route(
    state: &ServeState,
    obs: &Obs,
    req: &Request,
    config: &ServeConfig,
) -> (u16, String, &'static str) {
    // One snapshot Arc per request: a concurrent hot-swap cannot change
    // what this request answers from.
    let (snapshot, _epoch) = state.snapshot();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, snapshot.healthz_json(), "healthz"),
        ("GET", "/v1/semantic") => {
            let resolved = snapshot.resolve_point(
                req.param("x"),
                req.param("y"),
                req.param("lat"),
                req.param("lon"),
            );
            match resolved {
                Ok(pos) => (200, snapshot.semantic_json(pos), "semantic"),
                Err(m) => (400, error_body(&m), "semantic"),
            }
        }
        ("POST", "/v1/annotate") => {
            let annotated = parse_body(req).and_then(|body| snapshot.annotate_json(&body));
            match annotated {
                Ok(body) => (200, body, "annotate"),
                Err(m) => (400, error_body(&m), "annotate"),
            }
        }
        ("GET", "/v1/patterns") => match snapshot.pattern_query_from_params(&req.query) {
            Ok((query, limit)) => (200, snapshot.patterns_json(&query, limit), "patterns"),
            Err(m) => (400, error_body(&m), "patterns"),
        },
        ("GET", "/v1/motifs") => match crate::snapshot::MotifQuery::from_params(&req.query) {
            Ok(query) => match snapshot.motifs_json(&query) {
                Some(body) => (200, body, "motifs"),
                None => (
                    404,
                    error_body("artifact has no motif table; mine one with the motifs command"),
                    "motifs",
                ),
            },
            Err(m) => (400, error_body(&m), "motifs"),
        },
        ("GET", "/v1/cohorts") => match crate::snapshot::CohortQuery::from_params(&req.query) {
            Ok(query) => match snapshot.cohorts_json(&query) {
                Some((body, suppressed)) => {
                    obs.incr("cohort.cohorts_served", 1);
                    obs.incr("cohort.suppressed_aggregates", suppressed);
                    (200, body, "cohorts")
                }
                None => {
                    obs.incr("cohort.missing_section", 1);
                    (
                        404,
                        error_body(
                            "artifact has no cohort index; mine one with the cohorts command",
                        ),
                        "cohorts",
                    )
                }
            },
            Err(m) => (400, error_body(&m), "cohorts"),
        },
        ("GET", "/v1/stats") => {
            // Settle the sharded engine first: deferred TTL sweeps land in
            // the counters (via the state's obs) and the gauges read as a
            // single engine would at the same clock — so the counter and
            // gauge sections are shard-count independent.
            refresh_gauges(obs, state);
            (200, obs.report().to_json(), "stats")
        }
        ("POST", "/v1/ingest") => match parse_body(req)
            .map_err(|m| (400u16, m))
            .and_then(|body| state.ingest_json(&body, config.max_batch_records))
        {
            Ok((body, outcome)) => {
                record_outcome(obs, state, &outcome);
                (200, body, "ingest")
            }
            Err((status, m)) => (status, error_body(&m), "ingest"),
        },
        ("GET", "/v1/live/patterns") => (200, state.live_patterns_json(), "live_patterns"),
        ("GET", "/v1/live/motifs") => (200, state.live_motifs_json(), "live_motifs"),
        ("GET", "/v1/miner") => (200, state.miner_json(), "miner"),
        ("POST", "/v1/reload") => match parse_body(req)
            .map_err(|m| (400u16, m))
            .and_then(|body| state.reload_json(&body))
        {
            Ok(body) => {
                obs.incr("serve.swap_epoch", 1);
                obs.gauge("serve.epoch", state.epoch() as f64);
                (200, body, "reload")
            }
            Err((status, m)) => (status, error_body(&m), "reload"),
        },
        (method, path) if path.starts_with("/v1/users/") => {
            route_user(method, path, &snapshot, obs, req)
        }
        (
            _,
            "/healthz" | "/v1/semantic" | "/v1/annotate" | "/v1/patterns" | "/v1/motifs"
            | "/v1/cohorts" | "/v1/stats" | "/v1/ingest" | "/v1/live/patterns" | "/v1/live/motifs"
            | "/v1/reload" | "/v1/miner",
        ) => (
            405,
            error_body(&format!("{} not allowed here", req.method)),
            "bad_request",
        ),
        _ => (404, error_body("no such endpoint"), "not_found"),
    }
}

/// The `/v1/users/:id/patterns` and `/v1/users/:id/similar` routes: the
/// user id is a path segment, so these match by prefix instead of the
/// literal table above.
fn route_user(
    method: &str,
    path: &str,
    snapshot: &Snapshot,
    obs: &Obs,
    req: &Request,
) -> (u16, String, &'static str) {
    let rest = &path["/v1/users/".len()..];
    let Some((user, action)) = rest.rsplit_once('/') else {
        return (404, error_body("no such endpoint"), "not_found");
    };
    let endpoint = match action {
        "patterns" => "user_patterns",
        "similar" => "user_similar",
        _ => return (404, error_body("no such endpoint"), "not_found"),
    };
    if user.is_empty() {
        return (404, error_body("no such endpoint"), "not_found");
    }
    if method != "GET" {
        return (
            405,
            error_body(&format!("{method} not allowed here")),
            "bad_request",
        );
    }
    let rendered = match action {
        "patterns" => {
            if let Some((key, _)) = req.query.first() {
                return (
                    400,
                    error_body(&format!("unknown parameter {key:?}")),
                    endpoint,
                );
            }
            snapshot.user_patterns_json(user)
        }
        _ => match crate::snapshot::SimilarQuery::from_params(&req.query) {
            Ok(query) => snapshot.user_similar_json(user, &query),
            Err(m) => return (400, error_body(&m), endpoint),
        },
    };
    match rendered {
        Ok((body, suppressed)) => {
            obs.incr(
                if action == "patterns" {
                    "cohort.patterns_served"
                } else {
                    "cohort.similar_served"
                },
                1,
            );
            obs.incr("cohort.suppressed_aggregates", suppressed);
            (200, body, endpoint)
        }
        Err(crate::snapshot::CohortLookup::NoSection) => {
            obs.incr("cohort.missing_section", 1);
            (
                404,
                error_body("artifact has no cohort index; mine one with the cohorts command"),
                endpoint,
            )
        }
        Err(crate::snapshot::CohortLookup::UnknownUser) => {
            obs.incr("cohort.unknown_user", 1);
            (
                404,
                error_body(&format!("no such user {user:?} in the cohort index")),
                endpoint,
            )
        }
    }
}
