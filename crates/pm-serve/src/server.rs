//! The TCP front end: accept loop, worker pool, shedding, and shutdown.
//!
//! One [`Server`] owns a `TcpListener` and a fixed [`WorkerPool`]
//! (pm-runtime primitives, so pool jobs report worker slots to pm-obs spans
//! exactly like `par_map` regions do). Each accepted connection becomes one
//! pool job: read one request, route it against the shared [`Snapshot`],
//! write one `Connection: close` response. When the bounded queue is full
//! the accept loop answers `503` inline instead of queueing — predictable
//! shedding beats unbounded latency.
//!
//! Shutdown is cooperative and std-only: a [`ShutdownHandle`] flips an
//! atomic flag and pokes the listener with a loopback connection to unblock
//! `accept`, after which the pool drains its queue and joins.

use crate::http::{self, Request};
use crate::json::{self, error_body};
use crate::snapshot::Snapshot;
use pm_obs::Obs;
use pm_runtime::WorkerPool;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables of one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` resolves via `PM_THREADS` / available
    /// parallelism, exactly like the mining pipeline.
    pub threads: usize,
    /// Bounded accept-queue capacity; connections beyond it are shed with
    /// `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 0,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Requests the accept loop to stop. Clone freely; the first `shutdown`
/// wins, later calls are no-ops.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Stops the server: queued requests still drain, new connections are
    /// no longer accepted.
    pub fn shutdown(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Unblock the (possibly idle) accept call with a throwaway
            // loopback connection — the std-only analogue of a signal pipe.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    snapshot: Arc<Snapshot>,
    obs: Obs,
    config: ServeConfig,
    flag: Arc<AtomicBool>,
}

/// Endpoint labels used for `serve.requests.*` / `serve.errors.*` counters.
const ENDPOINTS: [&str; 7] = [
    "healthz",
    "semantic",
    "annotate",
    "patterns",
    "stats",
    "bad_request",
    "not_found",
];

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and prepares
    /// the counter schema. The server does not accept until [`Server::run`].
    pub fn bind(
        addr: &str,
        snapshot: Arc<Snapshot>,
        config: ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Pre-register every counter at zero so /v1/stats has a stable
        // schema even before the first request.
        for ep in ENDPOINTS {
            obs.incr(&format!("serve.requests.{ep}"), 0);
            obs.incr(&format!("serve.errors.{ep}"), 0);
        }
        obs.incr("serve.shed", 0);
        obs.gauge("serve.queue_capacity", config.queue_capacity as f64);
        Ok(Server {
            listener,
            snapshot,
            obs,
            config,
            flag: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with `127.0.0.1:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.listener.local_addr()?,
        })
    }

    /// Serves until the shutdown handle fires, then drains queued requests
    /// and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        let pool = WorkerPool::new(self.config.threads, self.config.queue_capacity);
        self.obs.set_threads(pool.threads());
        for conn in self.listener.incoming() {
            if self.flag.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept failures (EMFILE, aborted handshake)
                // must not kill the server.
                Err(_) => continue,
            };
            // Keep a second handle so the connection can still be answered
            // with 503 when the pool rejects the job (the job owns `stream`
            // and is dropped on rejection).
            let shed_handle = stream.try_clone();
            let snapshot = Arc::clone(&self.snapshot);
            let obs = self.obs.clone();
            let config = self.config.clone();
            let submitted = pool.try_execute(move || {
                handle_connection(stream, &snapshot, &obs, &config);
            });
            if submitted.is_err() {
                self.obs.incr("serve.shed", 1);
                if let Ok(mut s) = shed_handle {
                    let _ = s.set_write_timeout(Some(self.config.write_timeout));
                    let _ = http::write_response(&mut s, 503, &error_body("server busy"));
                }
            }
        }
        pool.shutdown();
        Ok(())
    }
}

/// One connection: read one request, route, respond, close.
fn handle_connection(stream: TcpStream, snapshot: &Snapshot, obs: &Obs, config: &ServeConfig) {
    let span = obs.span("serve.request");
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let (status, body, endpoint) = match http::read_request(&mut reader) {
        Err(e) => (e.status, error_body(&e.message), "bad_request"),
        Ok(req) => route(snapshot, obs, &req),
    };
    obs.incr(&format!("serve.requests.{endpoint}"), 1);
    if status >= 400 {
        obs.incr(&format!("serve.errors.{endpoint}"), 1);
    }
    let mut write_half = stream;
    let _ = http::write_response(&mut write_half, status, &body);
    span.finish();
}

/// Maps a parsed request onto a snapshot query.
fn route(snapshot: &Snapshot, obs: &Obs, req: &Request) -> (u16, String, &'static str) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, snapshot.healthz_json(), "healthz"),
        ("GET", "/v1/semantic") => {
            let resolved = snapshot.resolve_point(
                req.param("x"),
                req.param("y"),
                req.param("lat"),
                req.param("lon"),
            );
            match resolved {
                Ok(pos) => (200, snapshot.semantic_json(pos), "semantic"),
                Err(m) => (400, error_body(&m), "semantic"),
            }
        }
        ("POST", "/v1/annotate") => {
            let annotated = std::str::from_utf8(&req.body)
                .map_err(|_| "body is not UTF-8".to_string())
                .and_then(|text| json::parse(text).map_err(|e| format!("invalid JSON: {e}")))
                .and_then(|body| snapshot.annotate_json(&body));
            match annotated {
                Ok(body) => (200, body, "annotate"),
                Err(m) => (400, error_body(&m), "annotate"),
            }
        }
        ("GET", "/v1/patterns") => match snapshot.pattern_query_from_params(&req.query) {
            Ok((query, limit)) => (200, snapshot.patterns_json(&query, limit), "patterns"),
            Err(m) => (400, error_body(&m), "patterns"),
        },
        ("GET", "/v1/stats") => (200, obs.report().to_json(), "stats"),
        (_, "/healthz" | "/v1/semantic" | "/v1/annotate" | "/v1/patterns" | "/v1/stats") => (
            405,
            error_body(&format!("{} not allowed here", req.method)),
            "bad_request",
        ),
        _ => (404, error_body("no such endpoint"), "not_found"),
    }
}
