//! A tiny blocking HTTP/1.1 client — just enough to exercise the server
//! from integration tests, the CLI `replay` command, and the latency
//! benchmarks without external tools. [`request`] opens one
//! `Connection: close` socket per call; [`Conn`] keeps a connection alive
//! across requests (`Content-Length`-delimited reads).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issues one request and returns `(status, body)`. The connection is
/// `Connection: close`, so the body is everything after the header block.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut req = format!("{method} {target} HTTP/1.1\r\nHost: pm-serve\r\n");
    if let Some(body) = body {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("Connection: close\r\n\r\n");
    if let Some(body) = body {
        req.push_str(body);
    }
    // One write per request: a head-then-body write pair trips the classic
    // Nagle/delayed-ACK interaction (~40ms per request) on loopback too.
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let (header, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let status: u16 = header
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    Ok((status, body.to_string()))
}

/// `GET target` against `addr`.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", target, None)
}

/// `POST target` with a JSON body.
pub fn post(addr: SocketAddr, target: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", target, Some(body))
}

/// A persistent (keep-alive) client connection.
pub struct Conn {
    reader: BufReader<TcpStream>,
    retry_after: Option<u64>,
}

impl Conn {
    /// Connects with the same timeouts as [`request`].
    pub fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream),
            retry_after: None,
        })
    }

    /// The `Retry-After` value (seconds) of the most recent response, if
    /// the server sent one — overload answers (`429`/`503`) carry it so
    /// clients back off by the server's clock.
    pub fn retry_after(&self) -> Option<u64> {
        self.retry_after
    }

    /// Issues one request on the open connection and returns
    /// `(status, body)`. The connection stays usable until the server
    /// answers `Connection: close` (after which further sends fail).
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: pm-serve\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        // One write per request (see `request`): split head/body writes
        // stall ~40ms each behind Nagle + delayed ACK.
        let stream = self.reader.get_mut();
        stream.write_all(req.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// `GET target` on the open connection.
    pub fn get(&mut self, target: &str) -> std::io::Result<(u16, String)> {
        self.send("GET", target, None)
    }

    /// `POST target` with a JSON body on the open connection.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.send("POST", target, Some(body))
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("unparseable status line"))?;
        let mut content_length: usize = 0;
        self.retry_after = None;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad Content-Length"))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    self.retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}
