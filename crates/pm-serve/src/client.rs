//! A tiny blocking HTTP/1.1 client — just enough to exercise the server
//! from integration tests and the latency benchmark without external tools.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issues one request and returns `(status, body)`. The connection is
/// `Connection: close`, so the body is everything after the header block.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: pm-serve\r\n");
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let (header, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let status: u16 = header
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    Ok((status, body.to_string()))
}

/// `GET target` against `addr`.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", target, None)
}

/// `POST target` with a JSON body.
pub fn post(addr: SocketAddr, target: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", target, Some(body))
}
