//! The immutable in-memory state of the service and its query semantics.
//!
//! A [`Snapshot`] wraps one loaded [`Artifact`] plus the derived recognition
//! kernel and projection, and renders every endpoint's JSON *in process*.
//! The HTTP layer is a thin transport over these methods — integration tests
//! assert that the bytes served over a socket are identical to what the
//! snapshot returns directly, so there is exactly one source of truth for
//! response content.

use crate::json::{self, Json};
use pm_cluster::GaussianKernel;
use pm_cohort::{Cohort, CohortIndex, CohortTable, SimilarScope, UserRecord};
use pm_core::query::PatternQuery;
use pm_core::recognize::{detect_stay_points, recognize_stay_point_unit};
use pm_core::types::{Category, GpsPoint, GpsTrajectory, StayPoint, Tags, WeekBucket};
use pm_geo::{GeoPoint, LocalPoint, Projection};
use pm_io::parse_category;
use pm_motif::{MotifClass, MAX_NODES};
use pm_store::Artifact;

/// Default (and maximum) number of patterns one query returns.
pub const DEFAULT_PATTERN_LIMIT: usize = 50;
/// Hard cap on GPS fixes in one annotate request.
pub const MAX_ANNOTATE_POINTS: usize = 100_000;

/// One loaded artifact, frozen for serving.
#[derive(Debug)]
pub struct Snapshot {
    artifact: Artifact,
    kernel: GaussianKernel,
    projection: Option<Projection>,
    /// Per-cohort member lists, derived once at freeze time when the
    /// artifact carries a cohort index — the immutable side structure the
    /// per-user endpoints search against.
    cohort_index: Option<CohortIndex>,
}

impl Snapshot {
    /// Freezes an artifact for serving. Fails (rather than panicking later)
    /// when the stored parameters cannot drive recognition.
    pub fn new(artifact: Artifact) -> Result<Snapshot, String> {
        let r3sigma = artifact.params.r3sigma;
        if !(r3sigma.is_finite() && r3sigma > 0.0) {
            return Err(format!("artifact r3sigma {r3sigma} is not a valid radius"));
        }
        let projection = artifact.projection.map(Projection::new);
        let cohort_index = artifact.cohorts.as_ref().map(CohortIndex::build);
        Ok(Snapshot {
            kernel: GaussianKernel::new(r3sigma),
            projection,
            cohort_index,
            artifact,
        })
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Whether `lat`/`lon` queries are possible.
    pub fn has_projection(&self) -> bool {
        self.projection.is_some()
    }

    /// The projection, when the artifact is geo-anchored.
    pub fn projection(&self) -> Option<&Projection> {
        self.projection.as_ref()
    }

    /// Algorithm 3's vote at a single point, reduced to the primary
    /// category — the recognizer the live ingest engine runs emitted stays
    /// through.
    pub fn primary_category(&self, pos: LocalPoint) -> Option<Category> {
        recognize_stay_point_unit(&self.artifact.csd, &self.kernel, pos).2
    }

    // -- /healthz ----------------------------------------------------------

    /// The `/healthz` body.
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"pois\":{},\"units\":{},\"patterns\":{},\"geo\":{}}}",
            self.artifact.csd.pois().len(),
            self.artifact.csd.units().len(),
            self.artifact.patterns.len(),
            self.has_projection()
        )
    }

    // -- /v1/semantic ------------------------------------------------------

    /// Resolves a query position from `x`/`y` (local meters) or `lat`/`lon`
    /// (requires a geo-anchored artifact).
    pub fn resolve_point(
        &self,
        x: Option<&str>,
        y: Option<&str>,
        lat: Option<&str>,
        lon: Option<&str>,
    ) -> Result<LocalPoint, String> {
        let parse = |name: &str, v: &str| -> Result<f64, String> {
            let f: f64 = v
                .parse()
                .map_err(|_| format!("{name} is not a number: {v:?}"))?;
            if f.is_finite() {
                Ok(f)
            } else {
                Err(format!("{name} must be finite"))
            }
        };
        match (x, y, lat, lon) {
            (Some(x), Some(y), None, None) => Ok(LocalPoint::new(parse("x", x)?, parse("y", y)?)),
            (None, None, Some(lat), Some(lon)) => {
                let projection = self
                    .projection
                    .as_ref()
                    .ok_or("artifact has no projection; use x/y local meters")?;
                Ok(projection.to_local(GeoPoint::new(parse("lon", lon)?, parse("lat", lat)?)))
            }
            (None, None, None, None) => Err("missing coordinates: pass x&y or lat&lon".into()),
            _ => Err("pass either x&y or lat&lon, not a mixture".into()),
        }
    }

    /// The `/v1/semantic` body for a resolved position: Algorithm 3's
    /// weighted vote at a single point.
    pub fn semantic_json(&self, pos: LocalPoint) -> String {
        let (unit, tags, primary) =
            recognize_stay_point_unit(&self.artifact.csd, &self.kernel, pos);
        let mut out = String::from("{\"query\":");
        self.push_point(&mut out, pos);
        out.push_str(",\"unit\":");
        match unit {
            None => out.push_str("null"),
            Some(id) => {
                let u = &self.artifact.csd.units()[id];
                out.push_str(&format!(
                    "{{\"id\":{id},\"size\":{},\"center\":",
                    u.members.len()
                ));
                self.push_point(&mut out, u.center);
                out.push_str(",\"tags\":");
                push_tags(&mut out, u.tags);
                out.push('}');
            }
        }
        out.push_str(",\"tags\":");
        push_tags(&mut out, tags);
        out.push_str(",\"primary\":");
        push_primary(&mut out, primary);
        out.push('}');
        out
    }

    // -- /v1/annotate ------------------------------------------------------

    /// The `/v1/annotate` body: a raw trajectory (JSON) through stay-point
    /// detection (Definition 5) and semantic recognition (Algorithm 3),
    /// using the thresholds the artifact was mined with.
    pub fn annotate_json(&self, body: &Json) -> Result<String, String> {
        let points = body
            .get("points")
            .and_then(Json::as_array)
            .ok_or("body must be {\"points\": [...]}")?;
        if points.len() > MAX_ANNOTATE_POINTS {
            return Err(format!("too many points (max {MAX_ANNOTATE_POINTS})"));
        }
        let mut fixes = Vec::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            let t = p
                .get("t")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("points[{i}].t missing or not an integer"))?;
            let num = |name: &str| -> Option<f64> { p.get(name).and_then(Json::as_f64) };
            let pos = match (num("x"), num("y"), num("lat"), num("lon")) {
                (Some(x), Some(y), None, None) => LocalPoint::new(x, y),
                (None, None, Some(lat), Some(lon)) => self
                    .projection
                    .as_ref()
                    .ok_or("artifact has no projection; points need x/y")?
                    .to_local(GeoPoint::new(lon, lat)),
                _ => return Err(format!("points[{i}] needs x&y or lat&lon")),
            };
            fixes.push(GpsPoint::new(pos, t));
        }
        // Tolerate out-of-order uploads: detection requires time order.
        fixes.sort_by_key(|f| f.time);
        let traj = GpsTrajectory::new(fixes);
        let stays = detect_stay_points(&traj, &self.artifact.params);

        let mut out = format!("{{\"points\":{},\"stays\":[", traj.points.len());
        for (i, sp) in stays.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.push_stay(&mut out, sp, true);
        }
        out.push_str("]}");
        Ok(out)
    }

    // -- /v1/patterns ------------------------------------------------------

    /// Builds a [`PatternQuery`] (plus result limit) from decoded query
    /// parameters. Unknown parameters are rejected so typos fail loudly.
    pub fn pattern_query_from_params(
        &self,
        params: &[(String, String)],
    ) -> Result<(PatternQuery, usize), String> {
        let mut q = PatternQuery::new();
        let mut limit = DEFAULT_PATTERN_LIMIT;
        for (key, value) in params {
            match key.as_str() {
                "from" => q = q.from_category(parse_cat(value)?),
                "to" => q = q.to_category(parse_cat(value)?),
                "involving" => q = q.involving(parse_cat(value)?),
                "min_support" => q = q.min_support(parse_usize(key, value)?),
                "min_len" => q = q.min_len(parse_usize(key, value)?),
                "max_len" => q = q.max_len(parse_usize(key, value)?),
                "bucket" => q = q.in_bucket(parse_bucket(value)?),
                "near" => {
                    let (center, radius) = self.parse_near(value, false)?;
                    q = q.near(center, radius);
                }
                "near_ll" => {
                    let (center, radius) = self.parse_near(value, true)?;
                    q = q.near(center, radius);
                }
                "limit" => limit = parse_usize(key, value)?.min(DEFAULT_PATTERN_LIMIT),
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        Ok((q, limit))
    }

    /// `near=x,y,radius` (local meters) or `near_ll=lon,lat,radius`.
    fn parse_near(&self, value: &str, geographic: bool) -> Result<(LocalPoint, f64), String> {
        let parts: Vec<&str> = value.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "near wants three comma-separated numbers, got {value:?}"
            ));
        }
        let mut nums = [0.0f64; 3];
        for (slot, part) in nums.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse()
                .map_err(|_| format!("near component {part:?} is not a number"))?;
            if !slot.is_finite() {
                return Err("near components must be finite".into());
            }
        }
        let radius = nums[2];
        if radius < 0.0 {
            return Err("near radius must be non-negative".into());
        }
        let center = if geographic {
            self.projection
                .as_ref()
                .ok_or("artifact has no projection; use near=x,y,r")?
                .to_local(GeoPoint::new(nums[0], nums[1]))
        } else {
            LocalPoint::new(nums[0], nums[1])
        };
        Ok((center, radius))
    }

    /// The `/v1/patterns` body for a built query.
    pub fn patterns_json(&self, query: &PatternQuery, limit: usize) -> String {
        let matches = query.run(&self.artifact.patterns);
        let total = matches.len();
        let mut out = format!(
            "{{\"total\":{total},\"returned\":{},\"patterns\":[",
            total.min(limit)
        );
        for (i, p) in matches.iter().take(limit).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"categories\":[");
            for (k, c) in p.categories.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                json::push_str_lit(&mut out, c.name());
            }
            out.push_str(&format!(
                "],\"support\":{},\"len\":{},\"stays\":[",
                p.support(),
                p.len()
            ));
            for (k, sp) in p.stays.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                self.push_stay(&mut out, sp, false);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    // -- /v1/motifs --------------------------------------------------------

    /// The `/v1/motifs` body for a parsed [`MotifQuery`], or `None` when the
    /// artifact carries no motif table (the route answers `404` — the
    /// section is optional, so pre-motif artifacts serve everything else).
    pub fn motifs_json(&self, query: &MotifQuery) -> Option<String> {
        let table = self.artifact.motifs.as_ref()?;
        let matched: Vec<&MotifClass> = table
            .classes
            .iter()
            .filter(|c| {
                c.nodes >= query.min_nodes
                    && c.nodes <= query.max_nodes
                    && query
                        .category
                        .is_none_or(|cat| c.category_counts[cat as usize] > 0)
            })
            .collect();
        let mut out = format!(
            "{{\"total_days\":{},\"oversize_days\":{},\"total_classes\":{},\"returned\":{},\"classes\":[",
            table.total_days,
            table.oversize_days,
            matched.len(),
            matched.len().min(query.top),
        );
        for (i, class) in matched.iter().take(query.top).enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_motif_class(&mut out, class);
        }
        out.push_str("]}");
        Some(out)
    }

    // -- /v1/cohorts and /v1/users/:id/* -----------------------------------

    /// The cohort table, when the artifact carries one.
    pub fn cohort_table(&self) -> Option<&CohortTable> {
        self.artifact.cohorts.as_ref()
    }

    /// The `/v1/cohorts` body plus the number of suppressed aggregates in
    /// it, or `None` when the artifact has no cohort index (the route
    /// answers `404`, mirroring the motif contract).
    ///
    /// Cohorts render in id order. Entries at or above the table's `k_min`
    /// carry full aggregates and honour the query's category/size filters;
    /// smaller cohorts always render as an explicit `{"suppressed":true}`
    /// marker — they are never silently dropped, and filters cannot touch
    /// them because filtering on hidden attributes would leak them.
    pub fn cohorts_json(&self, query: &CohortQuery) -> Option<(String, u64)> {
        let table = self.artifact.cohorts.as_ref()?;
        let mut suppressed = 0u64;
        let mut entries = String::new();
        let mut returned = 0usize;
        let mut first = true;
        for cohort in &table.cohorts {
            if table.suppressed(cohort.size) {
                suppressed += 1;
                if !first {
                    entries.push(',');
                }
                first = false;
                entries.push_str(&format!("{{\"id\":{},\"suppressed\":true}}", cohort.id));
                continue;
            }
            let dominant = cohort.dominant_category();
            let category_ok = query.category.is_none_or(|cat| dominant == Some(cat));
            if !category_ok || cohort.size < query.min_size || returned >= query.top {
                continue;
            }
            returned += 1;
            if !first {
                entries.push(',');
            }
            first = false;
            entries.push_str(&format!(
                "{{\"id\":{},\"size\":{},\"mean_active_days\":{},\"mean_stays\":{},\"dominant\":",
                cohort.id,
                cohort.size,
                json::num(cohort.mean_active_days),
                json::num(cohort.mean_stays),
            ));
            push_primary(&mut entries, dominant);
            entries.push_str(",\"mix\":");
            push_mix(&mut entries, &cohort.category_mix);
            entries.push('}');
        }
        let body = format!(
            "{{\"k_min\":{},\"method\":\"{}\",\"total_users\":{},\"total_cohorts\":{},\"returned\":{returned},\"suppressed\":{suppressed},\"cohorts\":[{entries}]}}",
            table.k_min,
            table.method.name(),
            table.users.len(),
            table.cohorts.len(),
        );
        Some((body, suppressed))
    }

    /// The `/v1/users/:id/patterns` body plus its suppressed-aggregate
    /// count. The per-user record is the endpoint's subject and renders in
    /// full; the *cohort cross-reference* is a group aggregate, so it is
    /// suppressed when the user's cohort is smaller than `k_min`.
    pub fn user_patterns_json(&self, user: &str) -> Result<(String, u64), CohortLookup> {
        let table = self
            .artifact
            .cohorts
            .as_ref()
            .ok_or(CohortLookup::NoSection)?;
        let idx = table.find_user(user).ok_or(CohortLookup::UnknownUser)?;
        let record = &table.users[idx];
        let mut out = String::from("{\"user\":");
        json::push_str_lit(&mut out, &record.user);
        out.push_str(&format!(
            ",\"stays\":{},\"active_days\":{},\"transitions\":{},\"categories\":",
            record.stays, record.active_days, record.transitions
        ));
        push_category_counts(&mut out, &record.category_visits);
        out.push_str(",\"top_units\":[");
        for (i, &(unit, visits)) in record.top_units.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"unit\":{unit},\"visits\":{visits}}}"));
        }
        out.push_str("],\"cohort\":");
        let suppressed = push_cohort_ref(&mut out, table, &table.cohorts[record.cohort as usize]);
        out.push('}');
        Ok((out, suppressed))
    }

    /// The `/v1/users/:id/similar` body plus its suppressed-aggregate
    /// count: the ranked neighbor list (individual records, not an
    /// aggregate) and a neighborhood-level aggregate that is suppressed
    /// whenever fewer than `k_min` neighbors back it.
    pub fn user_similar_json(
        &self,
        user: &str,
        query: &SimilarQuery,
    ) -> Result<(String, u64), CohortLookup> {
        let table = self
            .artifact
            .cohorts
            .as_ref()
            .ok_or(CohortLookup::NoSection)?;
        let index = self.cohort_index.as_ref().ok_or(CohortLookup::NoSection)?;
        let idx = table.find_user(user).ok_or(CohortLookup::UnknownUser)?;
        let neighbors = table.k_nearest(index, idx, query.k, query.scope);

        let mut out = String::from("{\"user\":");
        json::push_str_lit(&mut out, user);
        out.push_str(&format!(
            ",\"k\":{},\"scope\":\"{}\",\"returned\":{},\"neighbors\":[",
            query.k,
            match query.scope {
                SimilarScope::All => "all",
                SimilarScope::Cohort => "cohort",
            },
            neighbors.len()
        ));
        let mut sim_sum = 0.0;
        let mut visits = [0u64; Category::COUNT];
        for (i, n) in neighbors.iter().enumerate() {
            let record: &UserRecord = &table.users[n.user as usize];
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"user\":");
            json::push_str_lit(&mut out, &record.user);
            out.push_str(&format!(",\"similarity\":{}}}", json::num(n.similarity)));
            sim_sum += n.similarity;
            for (slot, &v) in visits.iter_mut().zip(&record.category_visits) {
                *slot += v;
            }
        }
        out.push_str("],\"aggregate\":");
        let suppressed = if table.suppressed(neighbors.len() as u64) {
            out.push_str("{\"suppressed\":true}");
            1
        } else {
            let mean = sim_sum / neighbors.len() as f64;
            out.push_str(&format!(
                "{{\"size\":{},\"mean_similarity\":{},\"categories\":",
                neighbors.len(),
                json::num(mean)
            ));
            push_category_counts(&mut out, &visits);
            out.push('}');
            0
        };
        out.push('}');
        Ok((out, suppressed))
    }

    // -- rendering helpers -------------------------------------------------

    /// A position object; includes `lat`/`lon` when the artifact is
    /// geo-anchored.
    fn push_point(&self, out: &mut String, pos: LocalPoint) {
        out.push_str(&format!(
            "{{\"x\":{},\"y\":{}",
            json::num(pos.x),
            json::num(pos.y)
        ));
        if let Some(projection) = &self.projection {
            let geo = projection.to_geo(pos);
            out.push_str(&format!(
                ",\"lon\":{},\"lat\":{}",
                json::num(geo.lon),
                json::num(geo.lat)
            ));
        }
        out.push('}');
    }

    /// A stay-point object. With `recognize`, the snapshot's own vote fills
    /// the semantics (annotate path); otherwise the stored tags are used
    /// (pattern path).
    fn push_stay(&self, out: &mut String, sp: &StayPoint, recognize: bool) {
        let (unit, tags, primary) = if recognize {
            recognize_stay_point_unit(&self.artifact.csd, &self.kernel, sp.pos)
        } else {
            (None, sp.tags, sp.primary)
        };
        out.push_str("{\"pos\":");
        self.push_point(out, sp.pos);
        out.push_str(&format!(",\"t\":{},\"tags\":", sp.time));
        push_tags(out, tags);
        out.push_str(",\"primary\":");
        push_primary(out, primary);
        if recognize {
            match unit {
                Some(id) => out.push_str(&format!(",\"unit\":{id}")),
                None => out.push_str(",\"unit\":null"),
            }
        }
        out.push('}');
    }
}

/// A parsed `/v1/motifs` query: node-count band, category involvement, and
/// result cap.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifQuery {
    /// Keep classes with at least this many nodes.
    pub min_nodes: u8,
    /// Keep classes with at most this many nodes.
    pub max_nodes: u8,
    /// Keep classes where at least one day-graph node carried this primary
    /// category.
    pub category: Option<Category>,
    /// Classes returned (they are already ranked by days, descending).
    pub top: usize,
}

impl Default for MotifQuery {
    fn default() -> MotifQuery {
        MotifQuery {
            min_nodes: 1,
            max_nodes: MAX_NODES as u8,
            category: None,
            top: DEFAULT_PATTERN_LIMIT,
        }
    }
}

impl MotifQuery {
    /// Builds a query from decoded parameters. Unknown parameters are
    /// rejected so typos fail loudly, mirroring
    /// [`Snapshot::pattern_query_from_params`].
    pub fn from_params(params: &[(String, String)]) -> Result<MotifQuery, String> {
        let mut q = MotifQuery::default();
        for (key, value) in params {
            match key.as_str() {
                "min_nodes" => q.min_nodes = parse_nodes(key, value)?,
                "max_nodes" => q.max_nodes = parse_nodes(key, value)?,
                "category" => q.category = Some(parse_cat(value)?),
                "top" => q.top = parse_usize(key, value)?.min(DEFAULT_PATTERN_LIMIT),
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        if q.min_nodes > q.max_nodes {
            return Err(format!(
                "min_nodes {} exceeds max_nodes {}",
                q.min_nodes, q.max_nodes
            ));
        }
        Ok(q)
    }
}

/// Why a per-user or cohort query could not be answered. Both cases route
/// to `404`, with different hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortLookup {
    /// The artifact carries no `coho` section.
    NoSection,
    /// The section exists but the user id is not in the index.
    UnknownUser,
}

/// A parsed `/v1/cohorts` query: category/size filters and a result cap.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortQuery {
    /// Keep cohorts whose dominant category is this one.
    pub category: Option<Category>,
    /// Keep cohorts with at least this many members.
    pub min_size: u64,
    /// Full cohort entries returned (suppressed markers are not capped —
    /// they carry no aggregates).
    pub top: usize,
}

impl Default for CohortQuery {
    fn default() -> CohortQuery {
        CohortQuery {
            category: None,
            min_size: 0,
            top: DEFAULT_PATTERN_LIMIT,
        }
    }
}

impl CohortQuery {
    /// Builds a query from decoded parameters; unknown parameters are
    /// rejected so typos fail loudly.
    pub fn from_params(params: &[(String, String)]) -> Result<CohortQuery, String> {
        let mut q = CohortQuery::default();
        for (key, value) in params {
            match key.as_str() {
                "category" => q.category = Some(parse_cat(value)?),
                "min_size" => q.min_size = parse_usize(key, value)? as u64,
                "top" => q.top = parse_usize(key, value)?.min(DEFAULT_PATTERN_LIMIT),
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        Ok(q)
    }
}

/// A parsed `/v1/users/:id/similar` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarQuery {
    /// Neighbors requested (1 to [`DEFAULT_PATTERN_LIMIT`]).
    pub k: usize,
    /// Candidate set: the user's cohort (the pruned fast path, default) or
    /// an exact scan over everyone.
    pub scope: SimilarScope,
}

impl Default for SimilarQuery {
    fn default() -> SimilarQuery {
        SimilarQuery {
            k: 10,
            scope: SimilarScope::Cohort,
        }
    }
}

impl SimilarQuery {
    /// Builds a query from decoded parameters; unknown parameters are
    /// rejected so typos fail loudly.
    pub fn from_params(params: &[(String, String)]) -> Result<SimilarQuery, String> {
        let mut q = SimilarQuery::default();
        for (key, value) in params {
            match key.as_str() {
                "k" => {
                    let k = parse_usize(key, value)?;
                    if k == 0 {
                        return Err("k must be at least 1".into());
                    }
                    q.k = k.min(DEFAULT_PATTERN_LIMIT);
                }
                "scope" => {
                    q.scope = match value.as_str() {
                        "all" => SimilarScope::All,
                        "cohort" => SimilarScope::Cohort,
                        other => return Err(format!("unknown scope {other:?} (all or cohort)")),
                    }
                }
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        Ok(q)
    }
}

/// Non-zero category counts as an object, Table 3 order.
fn push_category_counts(out: &mut String, counts: &[u64; Category::COUNT]) {
    out.push('{');
    let mut first = true;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json::push_str_lit(out, Category::from_index(i).name());
        out.push_str(&format!(":{count}"));
    }
    out.push('}');
}

/// Non-zero category-mix shares as an object, Table 3 order.
fn push_mix(out: &mut String, mix: &[f64; Category::COUNT]) {
    out.push('{');
    let mut first = true;
    for (i, &share) in mix.iter().enumerate() {
        if share == 0.0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json::push_str_lit(out, Category::from_index(i).name());
        out.push(':');
        out.push_str(&json::num(share));
    }
    out.push('}');
}

/// The cohort cross-reference on a per-user record: full aggregate at or
/// above `k_min`, explicit suppression marker below. Returns how many
/// aggregates were suppressed (0 or 1).
fn push_cohort_ref(out: &mut String, table: &CohortTable, cohort: &Cohort) -> u64 {
    if table.suppressed(cohort.size) {
        out.push_str(&format!("{{\"id\":{},\"suppressed\":true}}", cohort.id));
        return 1;
    }
    out.push_str(&format!(
        "{{\"id\":{},\"size\":{},\"dominant\":",
        cohort.id, cohort.size
    ));
    push_primary(out, cohort.dominant_category());
    out.push('}');
    0
}

fn parse_nodes(key: &str, value: &str) -> Result<u8, String> {
    let n: u8 = value
        .parse()
        .map_err(|_| format!("{key} is not a small integer: {value:?}"))?;
    if (1..=MAX_NODES as u8).contains(&n) {
        Ok(n)
    } else {
        Err(format!("{key} must be between 1 and {MAX_NODES}"))
    }
}

/// One ranked motif class as JSON — shared by the artifact-backed
/// `/v1/motifs` body and the live `/v1/live/motifs` body so the two render
/// identically. The canonical form is a hex *string*: it is a full `u64`
/// and must survive JSON parsers that read numbers as `f64`.
pub(crate) fn push_motif_class(out: &mut String, class: &MotifClass) {
    out.push_str(&format!(
        "{{\"id\":{},\"form\":\"{:#x}\",\"nodes\":{},\"edges\":{},\"days\":{},\"share\":{}",
        class.id,
        class.form,
        class.nodes,
        class.edges,
        class.days,
        json::num(class.share),
    ));
    out.push_str(",\"categories\":{");
    let mut first = true;
    for (i, &count) in class.category_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json::push_str_lit(out, Category::from_index(i).name());
        out.push_str(&format!(":{count}"));
    }
    out.push_str(&format!(
        "}},\"untagged_nodes\":{},\"exemplar\":[",
        class.untagged_nodes
    ));
    for (k, (a, b)) in class.exemplar_edges().iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{a},{b}]"));
    }
    out.push_str("]}");
}

fn parse_cat(value: &str) -> Result<Category, String> {
    parse_category(value).ok_or_else(|| format!("unknown category {value:?}"))
}

fn parse_usize(key: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("{key} is not a non-negative integer: {value:?}"))
}

fn parse_bucket(value: &str) -> Result<WeekBucket, String> {
    let needle = value.trim().to_ascii_lowercase().replace(['_', '-'], " ");
    WeekBucket::ALL
        .into_iter()
        .find(|b| b.label() == needle)
        .ok_or_else(|| {
            format!(
                "unknown bucket {value:?} (one of: {})",
                WeekBucket::ALL
                    .map(|b| b.label().replace(' ', "_"))
                    .join(", ")
            )
        })
}

fn push_tags(out: &mut String, tags: Tags) {
    out.push('[');
    for (i, c) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_lit(out, c.name());
    }
    out.push(']');
}

fn push_primary(out: &mut String, primary: Option<Category>) {
    match primary {
        Some(c) => json::push_str_lit(out, c.name()),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::prelude::*;

    fn empty_snapshot() -> Snapshot {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        Snapshot::new(Artifact::new(csd, Vec::new(), params)).expect("snapshot")
    }

    fn geo_snapshot() -> Snapshot {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let artifact = Artifact::new(csd, Vec::new(), params)
            .with_projection(GeoPoint::new(121.4737, 31.2304));
        Snapshot::new(artifact).expect("snapshot")
    }

    #[test]
    fn healthz_shape() {
        let s = empty_snapshot();
        assert_eq!(
            s.healthz_json(),
            "{\"status\":\"ok\",\"pois\":0,\"units\":0,\"patterns\":0,\"geo\":false}"
        );
    }

    #[test]
    fn resolve_point_modes() {
        let s = empty_snapshot();
        let p = s
            .resolve_point(Some("10.5"), Some("-3"), None, None)
            .unwrap();
        assert_eq!((p.x, p.y), (10.5, -3.0));
        assert!(s
            .resolve_point(None, None, Some("31.2"), Some("121.5"))
            .is_err());
        assert!(s.resolve_point(Some("1"), None, None, Some("2")).is_err());
        assert!(s.resolve_point(None, None, None, None).is_err());
        assert!(s.resolve_point(Some("inf"), Some("0"), None, None).is_err());

        let g = geo_snapshot();
        let at_origin = g
            .resolve_point(None, None, Some("31.2304"), Some("121.4737"))
            .unwrap();
        assert!(at_origin.x.abs() < 1e-6 && at_origin.y.abs() < 1e-6);
    }

    #[test]
    fn semantic_on_empty_city_is_untagged() {
        let s = empty_snapshot();
        assert_eq!(
            s.semantic_json(LocalPoint::new(0.0, 0.0)),
            "{\"query\":{\"x\":0,\"y\":0},\"unit\":null,\"tags\":[],\"primary\":null}"
        );
    }

    #[test]
    fn annotate_rejects_bad_bodies() {
        let s = empty_snapshot();
        for bad in [
            "{}",
            "{\"points\":1}",
            "{\"points\":[{\"x\":1,\"y\":2}]}",
            "{\"points\":[{\"t\":1}]}",
            "{\"points\":[{\"lat\":1,\"lon\":2,\"t\":0}]}",
        ] {
            let body = crate::json::parse(bad).unwrap();
            assert!(s.annotate_json(&body).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn annotate_empty_trajectory_is_ok() {
        let s = empty_snapshot();
        let body = crate::json::parse("{\"points\":[]}").unwrap();
        assert_eq!(
            s.annotate_json(&body).unwrap(),
            "{\"points\":0,\"stays\":[]}"
        );
    }

    #[test]
    fn pattern_query_parser_covers_every_knob() {
        let s = empty_snapshot();
        let params: Vec<(String, String)> = [
            ("from", "residence"),
            ("to", "business"),
            ("involving", "shop"),
            ("min_support", "5"),
            ("min_len", "2"),
            ("max_len", "4"),
            ("bucket", "weekday_morning"),
            ("near", "100,200,50"),
            ("limit", "10"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let (_q, limit) = s.pattern_query_from_params(&params).expect("parse");
        assert_eq!(limit, 10);

        for bad in [
            ("from", "castle"),
            ("min_support", "-1"),
            ("bucket", "someday"),
            ("near", "1,2"),
            ("near", "1,2,-3"),
            ("nope", "1"),
        ] {
            let p = vec![(bad.0.to_string(), bad.1.to_string())];
            assert!(s.pattern_query_from_params(&p).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn motif_query_parser_covers_every_knob() {
        let params: Vec<(String, String)> = [
            ("min_nodes", "2"),
            ("max_nodes", "4"),
            ("category", "residence"),
            ("top", "3"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let q = MotifQuery::from_params(&params).expect("parse");
        assert_eq!(
            q,
            MotifQuery {
                min_nodes: 2,
                max_nodes: 4,
                category: Some(Category::Residence),
                top: 3
            }
        );

        for bad in [
            ("min_nodes", "0"),
            ("min_nodes", "9"),
            ("max_nodes", "x"),
            ("category", "castle"),
            ("top", "-1"),
            ("nope", "1"),
        ] {
            let p = vec![(bad.0.to_string(), bad.1.to_string())];
            assert!(MotifQuery::from_params(&p).is_err(), "{bad:?}");
        }
        // A crossed band is rejected at parse time, not served as empty.
        let p: Vec<(String, String)> = [("min_nodes", "5"), ("max_nodes", "2")]
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        assert!(MotifQuery::from_params(&p).is_err());
    }

    #[test]
    fn motifs_json_is_none_without_a_table_and_filters_with_one() {
        let s = empty_snapshot();
        assert!(s.motifs_json(&MotifQuery::default()).is_none());

        // Two classes: a 1-node residence day and a 2-node loop day.
        let mut agg = pm_motif::MotifAggregator::new();
        let mut one = pm_motif::DayGraphBuilder::new();
        one.visit(7, Some(Category::Residence));
        agg.record(&one.finish());
        let mut two = pm_motif::DayGraphBuilder::new();
        two.visit(1, Some(Category::Residence));
        two.visit(2, Some(Category::Business));
        two.visit(1, Some(Category::Residence));
        agg.record(&two.finish());

        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let artifact = Artifact::new(csd, Vec::new(), params).with_motifs(agg.table());
        let s = Snapshot::new(artifact).expect("snapshot");

        let body = s.motifs_json(&MotifQuery::default()).expect("table");
        assert!(
            body.starts_with("{\"total_days\":2,\"oversize_days\":0,"),
            "{body}"
        );
        assert!(
            body.contains("\"total_classes\":2,\"returned\":2,"),
            "{body}"
        );
        assert!(body.contains("\"Residence\":"), "{body}");

        // Node-band and category filters narrow the class list.
        let q = MotifQuery {
            min_nodes: 2,
            ..MotifQuery::default()
        };
        let body = s.motifs_json(&q).expect("table");
        assert!(body.contains("\"total_classes\":1,"), "{body}");
        let q = MotifQuery {
            category: Some(Category::Business),
            ..MotifQuery::default()
        };
        let body = s.motifs_json(&q).expect("table");
        assert!(body.contains("\"total_classes\":1,"), "{body}");
        let q = MotifQuery {
            category: Some(Category::Medical),
            ..MotifQuery::default()
        };
        let body = s.motifs_json(&q).expect("table");
        assert!(
            body.contains("\"total_classes\":0,\"returned\":0,\"classes\":[]}"),
            "{body}"
        );
    }

    #[test]
    fn near_ll_requires_projection() {
        let s = empty_snapshot();
        let p = vec![("near_ll".to_string(), "121.47,31.23,500".to_string())];
        assert!(s.pattern_query_from_params(&p).is_err());
        let g = geo_snapshot();
        assert!(g.pattern_query_from_params(&p).is_ok());
    }

    #[test]
    fn patterns_json_on_empty_set() {
        let s = empty_snapshot();
        let (q, limit) = s.pattern_query_from_params(&[]).unwrap();
        assert_eq!(
            s.patterns_json(&q, limit),
            "{\"total\":0,\"returned\":0,\"patterns\":[]}"
        );
    }

    /// Eight users in two behavior groups — five residence-dwellers and
    /// three shoppers — mined at `k_min: 4` so the shopper cohort is below
    /// the anonymity floor.
    fn cohort_snapshot() -> Snapshot {
        let mut embeddings = Vec::new();
        for u in 0..8 {
            let cat = if u < 5 {
                Category::Residence
            } else {
                Category::Shop
            };
            let unit0 = if u < 5 { 0 } else { 40 };
            let stays: Vec<pm_cohort::UserStay> = (0..6)
                .map(|i| pm_cohort::UserStay {
                    unit: unit0 + (i % 2) as u64,
                    category: Some(cat),
                    time: (i * 30_000) as i64,
                })
                .collect();
            embeddings.push(pm_cohort::embed_user(format!("user-{u:02}"), &stays));
        }
        let table = CohortTable::mine(
            embeddings,
            &pm_cohort::CohortParams {
                k_min: 4,
                ..pm_cohort::CohortParams::default()
            },
        );
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        Snapshot::new(Artifact::new(csd, Vec::new(), params).with_cohorts(table)).expect("snapshot")
    }

    #[test]
    fn cohort_query_parser_covers_every_knob() {
        let params: Vec<(String, String)> =
            [("category", "residence"), ("min_size", "2"), ("top", "3")]
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
        let q = CohortQuery::from_params(&params).expect("parse");
        assert_eq!(q.category, Some(Category::Residence));
        assert_eq!((q.min_size, q.top), (2, 3));

        for bad in [("category", "castle"), ("min_size", "-1"), ("nope", "1")] {
            let p = vec![(bad.0.to_string(), bad.1.to_string())];
            assert!(CohortQuery::from_params(&p).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn similar_query_parser_covers_every_knob() {
        let params: Vec<(String, String)> = [("k", "5"), ("scope", "all")]
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let q = SimilarQuery::from_params(&params).expect("parse");
        assert_eq!(q.k, 5);
        assert_eq!(q.scope, SimilarScope::All);
        assert_eq!(SimilarQuery::default().scope, SimilarScope::Cohort);

        // Oversized k clamps to the serving cap rather than erroring.
        let p = vec![("k".to_string(), "51".to_string())];
        assert_eq!(SimilarQuery::from_params(&p).expect("clamp").k, 50);

        for bad in [("k", "0"), ("scope", "city"), ("nope", "1")] {
            let p = vec![(bad.0.to_string(), bad.1.to_string())];
            assert!(SimilarQuery::from_params(&p).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn cohorts_json_suppresses_and_filters() {
        assert!(empty_snapshot()
            .cohorts_json(&CohortQuery::default())
            .is_none());

        let s = cohort_snapshot();
        let (body, suppressed) = s.cohorts_json(&CohortQuery::default()).expect("table");
        assert_eq!(suppressed, 1);
        assert!(
            body.starts_with("{\"k_min\":4,\"method\":\"meanshift\",\"total_users\":8,"),
            "{body}"
        );
        // The majority cohort renders in full; the 3-shopper cohort is an
        // id-only suppression marker with no size or mix.
        assert!(body.contains("\"id\":0,\"size\":5,"), "{body}");
        assert!(body.contains("{\"id\":1,\"suppressed\":true}"), "{body}");
        assert!(!body.contains("\"size\":3"), "{body}");
        assert!(body.contains("\"dominant\":\"Residence\""), "{body}");

        // Filters narrow unsuppressed entries but never unhide suppressed
        // ones: a min_size no cohort meets still lists the marker.
        let q = CohortQuery {
            min_size: 6,
            ..CohortQuery::default()
        };
        let (body, _) = s.cohorts_json(&q).expect("table");
        assert!(body.contains("\"returned\":0,"), "{body}");
        assert!(body.contains("{\"id\":1,\"suppressed\":true}"), "{body}");
        let q = CohortQuery {
            category: Some(Category::Shop),
            ..CohortQuery::default()
        };
        let (body, _) = s.cohorts_json(&q).expect("table");
        assert!(body.contains("\"returned\":0,"), "{body}");
    }

    #[test]
    fn user_patterns_json_full_record_with_suppressed_cross_reference() {
        assert_eq!(
            empty_snapshot().user_patterns_json("user-00").unwrap_err(),
            CohortLookup::NoSection
        );
        let s = cohort_snapshot();
        assert_eq!(
            s.user_patterns_json("nobody").unwrap_err(),
            CohortLookup::UnknownUser
        );

        // A majority-cohort member gets the full cohort cross-reference.
        let (body, suppressed) = s.user_patterns_json("user-00").expect("known");
        assert_eq!(suppressed, 0);
        assert!(
            body.starts_with("{\"user\":\"user-00\",\"stays\":6,"),
            "{body}"
        );
        assert!(body.contains("\"Residence\":6"), "{body}");
        assert!(body.contains("\"cohort\":{\"id\":0,\"size\":5,"), "{body}");

        // A shopper's own record still renders in full — the user is the
        // endpoint subject — but the cohort aggregate is suppressed.
        let (body, suppressed) = s.user_patterns_json("user-07").expect("known");
        assert_eq!(suppressed, 1);
        assert!(body.contains("\"Shop & Market\":6"), "{body}");
        assert!(
            body.contains("\"cohort\":{\"id\":1,\"suppressed\":true}"),
            "{body}"
        );
    }

    #[test]
    fn user_similar_json_ranks_and_suppresses_small_aggregates() {
        assert_eq!(
            empty_snapshot()
                .user_similar_json("user-00", &SimilarQuery::default())
                .unwrap_err(),
            CohortLookup::NoSection
        );
        let s = cohort_snapshot();
        assert_eq!(
            s.user_similar_json("nobody", &SimilarQuery::default())
                .unwrap_err(),
            CohortLookup::UnknownUser
        );

        // Cohort scope over the 5-residence cohort: 4 neighbors, aggregate
        // at the floor, not suppressed.
        let (body, suppressed) = s
            .user_similar_json("user-00", &SimilarQuery::default())
            .expect("known");
        assert_eq!(suppressed, 0);
        assert!(
            body.contains("\"scope\":\"cohort\",\"returned\":4,"),
            "{body}"
        );
        assert!(body.contains("\"aggregate\":{\"size\":4,"), "{body}");

        // A shopper's cohort-scoped neighborhood has 2 members — below
        // k_min, so the aggregate is an explicit suppression marker.
        let (body, suppressed) = s
            .user_similar_json("user-07", &SimilarQuery::default())
            .expect("known");
        assert_eq!(suppressed, 1);
        assert!(body.contains("\"returned\":2,"), "{body}");
        assert!(
            body.contains("\"aggregate\":{\"suppressed\":true}"),
            "{body}"
        );

        // Exact scan ranks in-group users above the other behavior group.
        let q = SimilarQuery {
            k: 7,
            scope: SimilarScope::All,
        };
        let (body, _) = s.user_similar_json("user-00", &q).expect("known");
        assert!(body.contains("\"scope\":\"all\",\"returned\":7,"), "{body}");
        let first = body.find("\"user\":\"user-0").expect("neighbor");
        let shopper = body.find("\"user\":\"user-07\"").expect("shopper ranked");
        assert!(first < shopper, "{body}");
    }
}
