//! A deliberately small HTTP/1.1 implementation: exactly what the query
//! service needs — request parsing with hard limits and a response writer.
//! Connections are keep-alive by default (HTTP/1.1 semantics): a client's
//! `Connection: close`, an HTTP/1.0 request without `keep-alive`, any error
//! status, or the server's per-connection request cap ends the session. No
//! chunked bodies — requests and responses are `Content-Length`-delimited,
//! which is what keeps pipelined parsing trivial.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Hard cap on any single header/request line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers.
const MAX_HEADERS: usize = 64;
/// Hard cap on a request body (annotate payloads are small).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, decoded path, decoded query pairs, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// The client asked this to be the connection's last request
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Carries the status code the connection
/// should answer with before closing.
#[derive(Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one line (up to CRLF or LF), enforcing [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(HttpError::new(431, "header line too long"));
                }
            }
            Err(e) => return Err(HttpError::new(408, format!("read failed: {e}"))),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::new(400, "non-UTF8 header line"))
}

/// Decodes `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 3 <= bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(v) => {
                        out.push(v);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits and decodes `a=1&b=two` into pairs.
fn parse_query(text: &str) -> Vec<(String, String)> {
    text.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads and parses one request from the stream.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, format!("unsupported {version}")));
    }

    let mut headers: BTreeMap<String, String> = BTreeMap::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let body = match headers.get("content-length") {
        None => Vec::new(),
        Some(text) => {
            let len: usize = text
                .parse()
                .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
            if len > MAX_BODY {
                return Err(HttpError::new(413, "body too large"));
            }
            let mut body = vec![0u8; len];
            reader
                .read_exact(&mut body)
                .map_err(|e| HttpError::new(408, format!("body read failed: {e}")))?;
            body
        }
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (percent_decode(p), parse_query(q)),
        None => (percent_decode(target), Vec::new()),
    };
    let connection = headers.get("connection").map(String::as_str).unwrap_or("");
    let token = |t: &str| {
        connection
            .split(',')
            .any(|c| c.trim().eq_ignore_ascii_case(t))
    };
    let close = token("close") || (version == "HTTP/1.0" && !token("keep-alive"));
    Ok(Request {
        method,
        path,
        query,
        body,
        close,
    })
}

/// The standard reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a complete response with a JSON body. `close` selects the
/// `Connection` header — and the caller must actually close afterwards
/// when it says so, since the client will stop reading.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, body, close, None)
}

/// [`write_response`] with an optional `Retry-After` header (seconds) — the
/// server attaches it to overload answers (`429`/`503`) so well-behaved
/// clients back off by the server's clock instead of guessing.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_text(status),
        body.len(),
        if close { "close" } else { "keep-alive" }
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(text: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r =
            req("GET /v1/semantic?lat=31.23&lon=121.47&note=a+b%21 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/semantic");
        assert_eq!(r.param("lat"), Some("31.23"));
        assert_eq!(r.param("lon"), Some("121.47"));
        assert_eq!(r.param("note"), Some("a b!"));
        assert_eq!(r.param("absent"), None);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body() {
        let r = req("POST /v1/annotate HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn oversized_body_is_413() {
        let e = req(&format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        ))
        .unwrap_err();
        assert_eq!(e.status, 413);
    }

    #[test]
    fn bad_version_is_505() {
        assert_eq!(req("GET / SPDY/99\r\n\r\n").unwrap_err().status, 505);
    }

    #[test]
    fn response_has_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn retry_after_header_only_when_asked() {
        let mut out = Vec::new();
        write_response_with(&mut out, 429, "{}", true, Some(3)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        write_response_with(&mut out, 200, "{}", false, None).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }

    #[test]
    fn connection_header_drives_close() {
        // HTTP/1.1 defaults to keep-alive.
        assert!(!req("GET / HTTP/1.1\r\n\r\n").unwrap().close);
        assert!(
            req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(
            req("GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n")
                .unwrap()
                .close
        );
        // HTTP/1.0 defaults to close unless keep-alive is asked for.
        assert!(req("GET / HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(
            !req("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .close
        );
    }

    #[test]
    fn two_requests_parse_back_to_back() {
        let text = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        let a = read_request(&mut reader).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(a.body, b"hi");
        let b = read_request(&mut reader).unwrap();
        assert_eq!(b.path, "/b");
    }
}
