//! Mutable service state: the epoch-versioned snapshot and the live
//! sharded ingestion engine.
//!
//! ## Epoch / hot-swap invariants
//!
//! The current [`Snapshot`] lives in an [`EpochCell`] — an atomic-epoch,
//! thread-cached `Arc` slot whose steady-state read is lock-free (see
//! [`crate::epoch`]):
//!
//! - every request loads the `(Arc, epoch)` pair **once** at routing time,
//!   so an in-flight request keeps answering from the snapshot (and epoch)
//!   it started on, even if a swap lands mid-request;
//! - [`ServeState::swap`] publishes the new `Arc` and bumps the epoch
//!   without waiting on request work, so a reload cannot stall or drop
//!   already-accepted requests;
//! - `/v1/reload` fully validates the candidate artifact (a byte-identity
//!   round-trip via [`Artifact::read_file_verified`], then snapshot
//!   construction) *before* publishing: a bad file is a `4xx` and the old
//!   epoch keeps serving.
//!
//! The ingest engine is snapshot-independent on purpose: detector state
//! (open dwell windows, per-user ordering clocks) survives a swap, and only
//! *recognition* of newly emitted stays uses the new artifact — the
//! streaming analogue of re-annotating against a refreshed CSD.
//!
//! ## Sharding and counter accounting
//!
//! The engine is a [`ShardedEngine`]: ingest batches fan out to user-keyed
//! shards, and shards a batch does not touch defer their TTL sweep until
//! the next settled read. Every deferred sweep still happens-and-counts:
//! read paths absorb the advance outcome into this state's [`Obs`] (see
//! [`ServeState::with_obs`] — wire the *server's* obs here, or those
//! tallies vanish), and `wal.*` counters come from the engine's logical
//! [`pm_stream::WalTick`] so they read identically at any shard count.

use crate::epoch::EpochCell;
use crate::json::{self, Json};
use crate::miner::MinerStatus;
use crate::snapshot::Snapshot;
use pm_core::types::{GpsPoint, StayPoint};
use pm_geo::GeoPoint;
use pm_geo::LocalPoint;
use pm_obs::Obs;
use pm_store::Artifact;
use pm_stream::{
    BatchOutcome, EngineConfig, IngestRecord, Recognizer, ShardConfig, ShardedEngine, StreamError,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

/// Folds one batch outcome into the stream-layer observability counters —
/// shared by the per-request ingest path and the settled-read paths so the
/// two can never drift apart in naming.
pub(crate) fn outcome_counters(obs: &Obs, outcome: &BatchOutcome) {
    obs.incr("stream.fixes_accepted", outcome.accepted);
    obs.incr("stream.stays_emitted", outcome.stays);
    obs.incr("stream.transitions_recorded", outcome.transitions);
    obs.incr("stream.transitions_late", outcome.late_transitions);
    obs.incr("stream.users_evicted", outcome.evicted);
    obs.incr("quarantine.stream_out_of_order", outcome.quarantined);
    obs.incr(
        "degradation.stream_dropped_fixes",
        outcome.dropped_non_finite,
    );
    obs.incr("motif.days_closed", outcome.motif_days_closed);
    obs.incr("motif.days_oversize", outcome.motif_days_oversize);
}

/// The shared, swappable state behind one server.
#[derive(Debug)]
pub struct ServeState {
    snapshot: EpochCell,
    engine: ShardedEngine,
    /// Default artifact path for `/v1/reload` bodies without a `path`.
    reload_path: Option<PathBuf>,
    /// Counter sink for `wal.*` activity and deferred-sweep outcomes; no-op
    /// until [`ServeState::with_obs`] wires the server's obs in.
    obs: Obs,
    /// Live status of the background re-miner, when one is attached.
    miner: RwLock<Option<Arc<Mutex<MinerStatus>>>>,
}

impl ServeState {
    /// Wraps an initial snapshot at epoch 0 with a fresh WAL-less engine,
    /// sharded per `PM_SHARDS` (default 1).
    pub fn new(snapshot: Arc<Snapshot>, engine: EngineConfig) -> Result<ServeState, StreamError> {
        let config = ShardConfig::new(pm_runtime::default_shards(), engine);
        let recognize: Recognizer = {
            let snapshot = Arc::clone(&snapshot);
            Arc::new(move |pos| snapshot.primary_category(pos))
        };
        let (engine, _) = ShardedEngine::open(config, &recognize)?;
        Ok(ServeState::with_engine(snapshot, engine))
    }

    /// Wraps an initial snapshot around an already-opened engine — the WAL
    /// recovery path, where shards were restored from checkpoints and
    /// replay rather than built fresh.
    pub fn with_engine(snapshot: Arc<Snapshot>, engine: ShardedEngine) -> ServeState {
        ServeState {
            snapshot: EpochCell::new(snapshot),
            engine,
            reload_path: None,
            obs: Obs::noop(),
            miner: RwLock::new(None),
        }
    }

    /// Sets the artifact path `/v1/reload` swaps in by default.
    pub fn with_reload_path(mut self, path: impl Into<PathBuf>) -> ServeState {
        self.reload_path = Some(path.into());
        self
    }

    /// Wires in the counter sink for `wal.*` activity and for stream
    /// outcomes discovered on settled reads (deferred TTL sweeps of shards
    /// an ingest batch didn't touch). Pass the same [`Obs`] the server
    /// runs with, or those tallies are silently dropped.
    pub fn with_obs(mut self, obs: Obs) -> ServeState {
        self.obs = obs;
        self
    }

    /// The recognizer for newly emitted stays: always the *current*
    /// snapshot, so hot-swaps take effect at the next batch.
    fn recognizer(&self) -> Recognizer {
        let (snapshot, _) = self.snapshot.load();
        Arc::new(move |pos| snapshot.primary_category(pos))
    }

    /// Counts an advance outcome (evictions etc. from catching up shards
    /// the last batches didn't touch) exactly like an ingest outcome.
    fn absorb_advance(&self, outcome: &BatchOutcome) {
        if *outcome != BatchOutcome::default() {
            outcome_counters(&self.obs, outcome);
        }
    }

    /// Publishes the re-miner's live status for `GET /v1/miner`.
    pub fn attach_miner(&self, status: Arc<Mutex<MinerStatus>>) {
        *self.miner.write().unwrap_or_else(|e| e.into_inner()) = Some(status);
    }

    /// The `GET /v1/miner` body: the re-miner's status, or
    /// `{"enabled":false}` when no re-miner is attached.
    pub fn miner_json(&self) -> String {
        let guard = self.miner.read().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(status) => status.lock().unwrap_or_else(|e| e.into_inner()).to_json(),
            None => "{\"enabled\":false}".to_string(),
        }
    }

    /// A snapshot of the stays accumulated for re-mining (non-draining),
    /// merged across shards in shard order after settling the engine.
    pub fn stays_snapshot(&self) -> Vec<(String, StayPoint)> {
        let (stays, advance) = self.engine.stays_snapshot(&self.recognizer());
        self.absorb_advance(&advance);
        stays
    }

    /// Cuts a WAL checkpoint of every shard's engine state right now — the
    /// graceful-shutdown path (a restart then recovers without replay).
    /// No-op without a WAL. Returns whether checkpoints were written.
    pub fn checkpoint_now(&self) -> bool {
        if self.engine.config().wal.is_none() {
            return false;
        }
        match self.engine.checkpoint_all() {
            Ok(()) => {
                self.obs.incr("wal.checkpoints", 1);
                true
            }
            Err(_) => {
                self.obs.incr("wal.checkpoint_errors", 1);
                false
            }
        }
    }

    /// The current snapshot and its epoch, read atomically together
    /// (lock-free in the steady state; see [`crate::epoch`]).
    pub fn snapshot(&self) -> (Arc<Snapshot>, u64) {
        self.snapshot.load()
    }

    /// The current epoch (0 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Publishes a new snapshot; in-flight requests keep their old `Arc`.
    /// Returns the new epoch.
    pub fn swap(&self, snapshot: Arc<Snapshot>) -> u64 {
        self.snapshot.swap(snapshot)
    }

    /// `(tracked users, buffered fixes)` — the live gauges, read after
    /// settling so any deferred per-shard TTL sweep has landed (and been
    /// counted).
    pub fn engine_gauges(&self) -> (usize, usize) {
        let (gauges, advance) = self.engine.gauges(&self.recognizer());
        self.absorb_advance(&advance);
        gauges
    }

    /// `POST /v1/ingest`: parses `{"fixes":[...]}` and/or `{"stays":[...]}`
    /// entries (`user`, `t`, and `x`/`y` or `lat`/`lon` each), feeds them to
    /// the engine against the *current* snapshot, and renders the outcome.
    /// Batches over `max_records` are refused with `429` — the client must
    /// back off and split.
    pub fn ingest_json(
        &self,
        body: &Json,
        max_records: usize,
    ) -> Result<(String, BatchOutcome), (u16, String)> {
        let (snapshot, epoch) = self.snapshot();
        let mut records: Vec<(String, IngestRecord)> = Vec::new();
        let mut keyed = false;
        for (key, is_fix) in [("fixes", true), ("stays", false)] {
            let Some(entries) = body.get(key) else {
                continue;
            };
            keyed = true;
            let entries = entries
                .as_array()
                .ok_or_else(|| (400, format!("{key} must be an array")))?;
            if records.len() + entries.len() > max_records {
                return Err((
                    429,
                    format!("batch too large (max {max_records} records); split and retry"),
                ));
            }
            for (i, entry) in entries.iter().enumerate() {
                let record = parse_record(&snapshot, entry, is_fix)
                    .map_err(|m| (400, format!("{key}[{i}]: {m}")))?;
                records.push(record);
            }
        }
        if !keyed {
            return Err((
                400,
                "body must be {\"fixes\":[...]} and/or {\"stays\":[...]}".to_string(),
            ));
        }
        // Crash safety: the batch hits each touched shard's log before its
        // engine (inside `ingest_batch`). The tick is logical — one batch,
        // however many shard logs it fanned to — and an append failure is
        // counted and tolerated: losing durability for one batch degrades
        // recovery, but must never turn ingest into a 5xx.
        let recognize: Recognizer = Arc::new(move |pos| snapshot.primary_category(pos));
        let (outcome, tick) = self.engine.ingest_batch(records, &recognize);
        self.obs.incr("wal.appended_batches", tick.appended_batches);
        self.obs.incr("wal.appended_records", tick.appended_records);
        self.obs.incr("wal.segments_rolled", tick.segments_rolled);
        self.obs.incr("wal.append_errors", tick.append_errors);
        // Periodic checkpoint at the WAL's cadence; two threads racing here
        // at worst cut one redundant checkpoint.
        if self.engine.should_checkpoint() {
            self.checkpoint_now();
        }
        let body = format!(
            "{{\"epoch\":{epoch},\"accepted\":{},\"quarantined\":{},\"dropped\":{},\"stays\":{},\"transitions\":{},\"late_transitions\":{},\"evicted\":{},\"motif_days_closed\":{},\"motif_days_oversize\":{}}}",
            outcome.accepted,
            outcome.quarantined,
            outcome.dropped_non_finite,
            outcome.stays,
            outcome.transitions,
            outcome.late_transitions,
            outcome.evicted,
            outcome.motif_days_closed,
            outcome.motif_days_oversize,
        );
        Ok((body, outcome))
    }

    /// `GET /v1/live/patterns`: the sliding-window transition counts,
    /// merged deterministically across shards — the body is byte-identical
    /// for shards=1 and shards=N over the same logical record stream.
    pub fn live_patterns_json(&self) -> String {
        let (view, advance) = self.engine.live_view(&self.recognizer());
        self.absorb_advance(&advance);
        let mut out = format!("{{\"epoch\":{}", self.epoch());
        match view.as_of {
            Some(t) => out.push_str(&format!(",\"as_of\":{t}")),
            None => out.push_str(",\"as_of\":null"),
        }
        out.push_str(&format!(
            ",\"window_secs\":{},\"users\":{},\"stays\":{},\"total\":{},\"late_dropped\":{},\"transitions\":[",
            view.window_secs, view.users, view.stays, view.total, view.late_dropped,
        ));
        for (i, (from, to, count)) in view.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"from\":");
            json::push_str_lit(&mut out, from.name());
            out.push_str(",\"to\":");
            json::push_str_lit(&mut out, to.name());
            out.push_str(&format!(",\"count\":{count}}}"));
        }
        out.push_str("]}");
        out
    }

    /// `GET /v1/live/motifs`: the in-window mobility-motif classes, merged
    /// deterministically across shards. Only in-window content and the
    /// lifetime closure tallies are exposed — never the window-internal
    /// late/recorded split, which can legitimately differ between eager
    /// (shards=1) and lazily-swept (shards=N) layouts — so the body is
    /// byte-identical at any shard count over the same logical stream.
    pub fn live_motifs_json(&self) -> String {
        let (view, advance) = self.engine.live_motifs(&self.recognizer());
        self.absorb_advance(&advance);
        let mut out = format!("{{\"epoch\":{}", self.epoch());
        match view.as_of {
            Some(t) => out.push_str(&format!(",\"as_of\":{t}")),
            None => out.push_str(",\"as_of\":null"),
        }
        out.push_str(&format!(
            ",\"window_days\":{},\"days_closed\":{},\"days_oversize\":{},\"total_days\":{},\"oversize_days\":{},\"classes\":[",
            view.window_days,
            view.days_closed,
            view.days_oversize,
            view.table.total_days,
            view.table.oversize_days,
        ));
        for (i, class) in view.table.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::snapshot::push_motif_class(&mut out, class);
        }
        out.push_str("]}");
        out
    }

    /// `POST /v1/reload`: validates the artifact at `path` (body override)
    /// or the configured reload path, then swaps it in. Returns the success
    /// body; errors carry the status to answer with — the old snapshot
    /// keeps serving on any failure.
    pub fn reload_json(&self, body: &Json) -> Result<String, (u16, String)> {
        let path: PathBuf = match body.get("path").map(|p| p.as_str()) {
            Some(Some(p)) => PathBuf::from(p),
            Some(None) => return Err((400, "path must be a string".to_string())),
            None => self.reload_path.clone().ok_or((
                400,
                "no artifact path configured; pass {\"path\":...}".to_string(),
            ))?,
        };
        let artifact = Artifact::read_file_verified(&path)
            .map_err(|e| (400, format!("{}: {e}", path.display())))?;
        let snapshot =
            Snapshot::new(artifact).map_err(|m| (400, format!("{}: {m}", path.display())))?;
        let health = snapshot.healthz_json();
        let epoch = self.swap(Arc::new(snapshot));
        // healthz is `{"status":...}`; splice the epoch in for the reply.
        let tail = health.strip_prefix('{').unwrap_or(&health);
        Ok(format!("{{\"epoch\":{epoch},{tail}"))
    }
}

/// One ingest entry: `user` (string or integer), `t`, and `x`/`y` local
/// meters or `lat`/`lon` (geo-anchored artifacts only).
fn parse_record(
    snapshot: &Snapshot,
    entry: &Json,
    is_fix: bool,
) -> Result<(String, IngestRecord), String> {
    let user = match entry.get("user") {
        Some(u) => match (u.as_str(), u.as_i64()) {
            (Some(s), _) if !s.is_empty() => s.to_string(),
            (_, Some(n)) => n.to_string(),
            _ => return Err("user must be a non-empty string or integer".to_string()),
        },
        None => return Err("user missing".to_string()),
    };
    let t = entry
        .get("t")
        .and_then(Json::as_i64)
        .ok_or("t missing or not an integer")?;
    let num = |name: &str| -> Option<f64> { entry.get(name).and_then(Json::as_f64) };
    let pos = match (num("x"), num("y"), num("lat"), num("lon")) {
        (Some(x), Some(y), None, None) => LocalPoint::new(x, y),
        (None, None, Some(lat), Some(lon)) => snapshot
            .projection()
            .ok_or("artifact has no projection; records need x/y")?
            .to_local(GeoPoint::new(lon, lat)),
        _ => return Err("needs x&y or lat&lon".to_string()),
    };
    let point = GpsPoint::new(pos, t);
    Ok((
        user,
        if is_fix {
            IngestRecord::Fix(point)
        } else {
            IngestRecord::Stay(point)
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::prelude::*;

    fn state() -> ServeState {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let snapshot =
            Arc::new(Snapshot::new(Artifact::new(csd, Vec::new(), params)).expect("snapshot"));
        ServeState::new(snapshot, EngineConfig::from_miner(&params)).expect("state")
    }

    #[test]
    fn ingest_parses_both_record_kinds() {
        let s = state();
        let body = json::parse(
            "{\"fixes\":[{\"user\":\"a\",\"x\":0,\"y\":0,\"t\":1}],\
             \"stays\":[{\"user\":7,\"x\":5,\"y\":5,\"t\":2}]}",
        )
        .unwrap();
        let (rendered, outcome) = s.ingest_json(&body, 100).unwrap();
        assert_eq!(outcome.accepted, 2);
        assert_eq!(outcome.stays, 1); // the stay record; the fix still buffers
        assert!(
            rendered.starts_with("{\"epoch\":0,\"accepted\":2,"),
            "{rendered}"
        );
    }

    #[test]
    fn ingest_rejects_malformed_and_oversized() {
        let s = state();
        for bad in [
            "{}",
            "{\"fixes\":1}",
            "{\"fixes\":[{\"x\":0,\"y\":0,\"t\":1}]}",
            "{\"fixes\":[{\"user\":\"a\",\"t\":1}]}",
            "{\"fixes\":[{\"user\":\"a\",\"x\":0,\"y\":0}]}",
            "{\"fixes\":[{\"user\":\"a\",\"lat\":1,\"lon\":2,\"t\":1}]}",
        ] {
            let body = json::parse(bad).unwrap();
            let (status, _) = s.ingest_json(&body, 100).unwrap_err();
            assert_eq!(status, 400, "{bad}");
        }
        let body =
            json::parse("{\"fixes\":[{\"user\":\"a\",\"x\":0,\"y\":0,\"t\":1},{\"user\":\"a\",\"x\":0,\"y\":0,\"t\":2}]}")
                .unwrap();
        let (status, msg) = s.ingest_json(&body, 1).unwrap_err();
        assert_eq!(status, 429, "{msg}");
    }

    #[test]
    fn live_patterns_render_on_empty_engine() {
        let s = state();
        let body = s.live_patterns_json();
        assert!(body.contains("\"as_of\":null"), "{body}");
        assert!(body.ends_with("\"transitions\":[]}"), "{body}");
    }

    #[test]
    fn live_motifs_render_on_empty_engine() {
        let s = state();
        assert_eq!(
            s.live_motifs_json(),
            "{\"epoch\":0,\"as_of\":null,\"window_days\":7,\"days_closed\":0,\
             \"days_oversize\":0,\"total_days\":0,\"oversize_days\":0,\"classes\":[]}"
        );
    }

    #[test]
    fn reload_without_path_is_400_and_keeps_epoch() {
        let s = state();
        let body = json::parse("{}").unwrap();
        let (status, _) = s.reload_json(&body).unwrap_err();
        assert_eq!(status, 400);
        let body = json::parse("{\"path\":\"/nonexistent/city.pmstore\"}").unwrap();
        let (status, _) = s.reload_json(&body).unwrap_err();
        assert_eq!(status, 400);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn swap_bumps_epoch_and_old_arcs_survive() {
        let s = state();
        let (old, epoch0) = s.snapshot();
        assert_eq!(epoch0, 0);
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let fresh =
            Arc::new(Snapshot::new(Artifact::new(csd, Vec::new(), params)).expect("snapshot"));
        assert_eq!(s.swap(fresh), 1);
        let (_, epoch1) = s.snapshot();
        assert_eq!(epoch1, 1);
        // The old snapshot is still fully usable by in-flight requests.
        assert!(old.healthz_json().contains("\"status\":\"ok\""));
    }
}
