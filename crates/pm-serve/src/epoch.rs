//! Lock-free epoch-pinned snapshot reads for the hot path.
//!
//! Every request needs the current [`Snapshot`] `Arc` plus the epoch it
//! belongs to. Behind a plain `RwLock` that is one lock acquisition per
//! request — cheap until tens of thousands of ingest batches per second
//! all cross it. [`EpochCell`] makes the steady state lock-free:
//!
//! - the epoch lives in an `AtomicU64` that swaps bump *after* publishing;
//! - each worker thread caches `(cell id, epoch, Arc)` in a thread-local;
//! - a read first loads the epoch (Acquire). On a cache hit — same cell,
//!   same epoch — it clones the cached `Arc` and never touches the lock.
//!   Only the first read after a swap (per thread) takes the read lock,
//!   re-reads the epoch *under* the lock (so the cached pair is
//!   consistent), and refreshes the cache.
//!
//! Swaps are as rare as `/v1/reload` and re-miner publishes, so in the
//! steady state the hot read path is two atomic loads and an `Arc` clone.
//!
//! Trade-off, stated plainly: a thread that never reads again keeps the
//! previous `Arc` alive in its cache until its next read. That pins at
//! most one stale snapshot per worker thread — bounded, and the worker
//! pool is small and long-lived.

use crate::snapshot::Snapshot;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Distinguishes cells in the per-thread cache, so two servers in one
/// process (the test suites do this constantly) never cross-pollinate.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CACHED: RefCell<Option<(u64, u64, Arc<Snapshot>)>> = const { RefCell::new(None) };
}

/// An epoch-versioned `Arc<Snapshot>` slot with lock-free steady-state
/// reads. See the module docs for the protocol.
#[derive(Debug)]
pub struct EpochCell {
    id: u64,
    epoch: AtomicU64,
    slow: RwLock<Arc<Snapshot>>,
}

impl EpochCell {
    /// Wraps the initial snapshot at epoch 0.
    pub fn new(snapshot: Arc<Snapshot>) -> EpochCell {
        EpochCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            slow: RwLock::new(snapshot),
        }
    }

    /// The current epoch (0 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot and its epoch, pinned together. Lock-free
    /// whenever this thread has already seen this epoch.
    pub fn load(&self) -> (Arc<Snapshot>, u64) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let hit = CACHED.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(|(id, e, arc)| (*id == self.id && *e == epoch).then(|| Arc::clone(arc)))
        });
        if let Some(snapshot) = hit {
            return (snapshot, epoch);
        }
        // Slow path (first read of a new epoch on this thread): take the
        // read lock and re-read the epoch under it, so the (epoch, Arc)
        // pair we cache is the one a swap published together.
        let (snapshot, epoch) = {
            let guard = self.slow.read().unwrap_or_else(|e| e.into_inner());
            (Arc::clone(&guard), self.epoch.load(Ordering::Acquire))
        };
        CACHED.with(|c| *c.borrow_mut() = Some((self.id, epoch, Arc::clone(&snapshot))));
        (snapshot, epoch)
    }

    /// Publishes a new snapshot and returns the new epoch. In-flight
    /// readers keep the `Arc` they already cloned; each thread picks up
    /// the new epoch on its next [`EpochCell::load`].
    pub fn swap(&self, snapshot: Arc<Snapshot>) -> u64 {
        let guard = &mut *self.slow.write().unwrap_or_else(|e| e.into_inner());
        *guard = snapshot;
        // Bumped while still holding the write lock: a slow-path reader
        // can never pair the new epoch with the old Arc or vice versa.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::prelude::*;
    use pm_store::Artifact;

    fn snapshot() -> Arc<Snapshot> {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        Arc::new(Snapshot::new(Artifact::new(csd, Vec::new(), params)).expect("snapshot"))
    }

    #[test]
    fn load_pins_snapshot_and_epoch_together() {
        let cell = EpochCell::new(snapshot());
        let (first, e0) = cell.load();
        assert_eq!(e0, 0);
        let (again, _) = cell.load();
        assert!(Arc::ptr_eq(&first, &again), "cache hit returns same Arc");
        assert_eq!(cell.swap(snapshot()), 1);
        let (fresh, e1) = cell.load();
        assert_eq!(e1, 1);
        assert!(!Arc::ptr_eq(&first, &fresh));
        // The pre-swap Arc stays fully usable.
        assert!(first.healthz_json().contains("\"status\""));
    }

    #[test]
    fn two_cells_on_one_thread_do_not_cross_pollinate() {
        let a = EpochCell::new(snapshot());
        let b = EpochCell::new(snapshot());
        let (from_a, _) = a.load();
        let (from_b, _) = b.load();
        assert!(!Arc::ptr_eq(&from_a, &from_b));
        let (from_a_again, _) = a.load();
        assert!(Arc::ptr_eq(&from_a, &from_a_again));
    }

    #[test]
    fn swaps_are_visible_across_threads() {
        let cell = Arc::new(EpochCell::new(snapshot()));
        let seen = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.load().1)
        }
        .join()
        .expect("reader thread");
        assert_eq!(seen, 0);
        cell.swap(snapshot());
        let seen = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || cell.load().1)
        }
        .join()
        .expect("reader thread");
        assert_eq!(seen, 1);
    }
}
