//! Life-pattern cohort assignment over dense category profiles.
//!
//! Cohorts partition the *coarse* view of each user — the 240-dimensional
//! category profile of [`crate::embed::UserEmbedding`] — so two users who
//! shuttle between residence and office cluster together even when their
//! actual units never overlap. The bulk path is seeded K-Means
//! ([`pm_cluster::ndim::kmeans_nd`], byte-deterministic for a given seed);
//! populations below [`CohortParams::small_population`] fall back to Mean
//! Shift ([`pm_cluster::ndim::mean_shift_nd`]), which adapts the cohort
//! count to the data instead of forcing a `k` that small samples cannot
//! support.
//!
//! Raw cluster labels depend on seeding order, so they are relabelled
//! canonically before anything persists: cohorts order by (size desc,
//! first member asc) over the user-sorted population. Same corpus, same
//! params → same cohort ids, bit for bit.

use crate::embed::{UserEmbedding, PROFILE_DIMS};
use pm_cluster::ndim::{kmeans_nd, mean_shift_nd, KMeansNdParams, MeanShiftNdParams};

/// Default k-anonymity floor: aggregates over fewer users are suppressed.
pub const DEFAULT_K_MIN: u32 = 5;

/// Populations below this fall back from K-Means to Mean Shift.
pub const DEFAULT_SMALL_POPULATION: usize = 24;

/// Mean Shift bandwidth over L2-normalized profiles (whose pairwise
/// distances lie in `[0, sqrt(2)]`).
const MEAN_SHIFT_BANDWIDTH: f64 = 0.7;

/// How the cohorts of a table were produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterMethod {
    /// Seeded k-means++ / Lloyd over category profiles (the bulk path).
    KMeans,
    /// Flat-kernel Mean Shift (the small-population fallback).
    MeanShift,
}

impl ClusterMethod {
    /// Stable wire tag for persistence.
    pub fn as_u8(self) -> u8 {
        match self {
            ClusterMethod::KMeans => 0,
            ClusterMethod::MeanShift => 1,
        }
    }

    /// Inverse of [`Self::as_u8`].
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ClusterMethod::KMeans),
            1 => Some(ClusterMethod::MeanShift),
            _ => None,
        }
    }

    /// Lowercase name used in JSON and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ClusterMethod::KMeans => "kmeans",
            ClusterMethod::MeanShift => "meanshift",
        }
    }
}

/// Cohort mining parameters.
#[derive(Clone, Copy, Debug)]
pub struct CohortParams {
    /// Number of cohorts for the K-Means path; `0` picks
    /// `clamp(round(sqrt(n / 2)), 2, 64)`.
    pub k: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
    /// k-anonymity floor persisted into the table; aggregates over groups
    /// smaller than this must render as `suppressed`.
    pub k_min: u32,
    /// Populations strictly below this use the Mean Shift fallback.
    pub small_population: usize,
    /// Worker threads for the embedding fan-out (0 = all cores).
    pub threads: usize,
}

impl Default for CohortParams {
    fn default() -> Self {
        Self {
            k: 0,
            seed: 0,
            k_min: DEFAULT_K_MIN,
            small_population: DEFAULT_SMALL_POPULATION,
            threads: 0,
        }
    }
}

impl CohortParams {
    /// The effective K-Means `k` for a population of `n` users.
    pub fn effective_k(&self, n: usize) -> usize {
        if self.k > 0 {
            self.k.min(n).max(1)
        } else {
            ((n as f64 / 2.0).sqrt().round() as usize)
                .clamp(2, 64)
                .min(n.max(1))
        }
    }
}

/// Assigns each embedding (in the given order) to a canonical cohort id.
///
/// Returns the per-user labels plus the method used. Labels are contiguous
/// `0..n_cohorts`, ordered by (cohort size desc, first member asc), so they
/// are stable across runs and thread counts. Callers must pass embeddings
/// already sorted by user id for the canonical order to be meaningful.
pub fn assign_cohorts(
    embeddings: &[UserEmbedding],
    params: &CohortParams,
) -> (Vec<u32>, ClusterMethod) {
    let n = embeddings.len();
    if n == 0 {
        return (Vec::new(), ClusterMethod::KMeans);
    }
    let mut data = Vec::with_capacity(n * PROFILE_DIMS);
    for e in embeddings {
        debug_assert_eq!(e.profile.len(), PROFILE_DIMS);
        data.extend_from_slice(&e.profile);
    }

    let (raw, method) = if n < params.small_population {
        let r = mean_shift_nd(
            &data,
            PROFILE_DIMS,
            MeanShiftNdParams::new(MEAN_SHIFT_BANDWIDTH),
        );
        (r.labels, ClusterMethod::MeanShift)
    } else {
        let k = params.effective_k(n);
        let r = kmeans_nd(
            &data,
            PROFILE_DIMS,
            KMeansNdParams::new(k).with_seed(params.seed),
        );
        (r.labels, ClusterMethod::KMeans)
    };

    (canonical_relabel(&raw, n), method)
}

/// Remaps raw cluster labels to the canonical cohort order: size desc,
/// then first member index asc. Profiles are always finite, so every user
/// carries a label; a `None` (impossible by construction) would panic.
fn canonical_relabel(raw: &[Option<usize>], n: usize) -> Vec<u32> {
    let mut first = Vec::new();
    let mut sizes = Vec::new();
    let labels: Vec<usize> = (0..n)
        .map(|i| raw[i].expect("finite profiles always cluster"))
        .collect();
    for (i, &l) in labels.iter().enumerate() {
        if l >= sizes.len() {
            sizes.resize(l + 1, 0usize);
            first.resize(l + 1, usize::MAX);
        }
        sizes[l] += 1;
        if first[l] == usize::MAX {
            first[l] = i;
        }
    }
    let mut order: Vec<usize> = (0..sizes.len()).filter(|&l| sizes[l] > 0).collect();
    order.sort_by_key(|&l| (usize::MAX - sizes[l], first[l]));
    let mut remap = vec![u32::MAX; sizes.len()];
    for (new, &old) in order.iter().enumerate() {
        remap[old] = new as u32;
    }
    labels.into_iter().map(|l| remap[l]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{embed_user, UserStay};
    use pm_core::types::Category;

    /// `n` users commuting between two units of the given categories.
    fn commuters(n: usize, home: Category, work: Category, unit0: u64) -> Vec<UserEmbedding> {
        (0..n)
            .map(|u| {
                let stays: Vec<UserStay> = (0..6)
                    .map(|i| UserStay {
                        unit: unit0 + (i % 2) as u64,
                        category: Some(if i % 2 == 0 { home } else { work }),
                        time: (u * 1000 + i * 40_000) as i64,
                    })
                    .collect();
                embed_user(format!("c{unit0}-{u:02}"), &stays)
            })
            .collect()
    }

    #[test]
    fn two_behaviors_two_cohorts() {
        let mut emb = commuters(20, Category::Residence, Category::Business, 0);
        emb.extend(commuters(20, Category::Shop, Category::Entertainment, 100));
        let params = CohortParams {
            k: 2,
            ..CohortParams::default()
        };
        let (labels, method) = assign_cohorts(&emb, &params);
        assert_eq!(method, ClusterMethod::KMeans);
        assert!(labels[..20].iter().all(|&l| l == labels[0]));
        assert!(labels[20..].iter().all(|&l| l != labels[0]));
    }

    #[test]
    fn small_population_uses_mean_shift() {
        let mut emb = commuters(6, Category::Residence, Category::Business, 0);
        emb.extend(commuters(6, Category::Shop, Category::Entertainment, 100));
        let (labels, method) = assign_cohorts(&emb, &CohortParams::default());
        assert_eq!(method, ClusterMethod::MeanShift);
        assert!(labels[..6].iter().all(|&l| l == labels[0]));
        assert!(labels[6..].iter().all(|&l| l != labels[0]));
    }

    #[test]
    fn labels_are_canonical() {
        let mut emb = commuters(30, Category::Residence, Category::Business, 0);
        emb.extend(commuters(10, Category::Shop, Category::Entertainment, 100));
        let params = CohortParams {
            k: 2,
            ..CohortParams::default()
        };
        let (labels, _) = assign_cohorts(&emb, &params);
        // Largest cohort gets id 0; the first user belongs to it here.
        assert_eq!(labels[0], 0);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 30);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut emb = commuters(25, Category::Residence, Category::Business, 0);
        emb.extend(commuters(25, Category::Shop, Category::Medical, 50));
        let params = CohortParams {
            seed: 9,
            ..CohortParams::default()
        };
        let (a, _) = assign_cohorts(&emb, &params);
        let (b, _) = assign_cohorts(&emb, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_population() {
        let (labels, _) = assign_cohorts(&[], &CohortParams::default());
        assert!(labels.is_empty());
    }

    #[test]
    fn effective_k_auto_scales() {
        let p = CohortParams::default();
        assert_eq!(p.effective_k(32), 4);
        assert_eq!(p.effective_k(20_000), 64);
        let fixed = CohortParams {
            k: 8,
            ..CohortParams::default()
        };
        assert_eq!(fixed.effective_k(3), 3);
    }
}
