//! The persisted per-user pattern index: [`CohortTable`], its cohort
//! aggregates, and the exact-scan similar-user search over it.
//!
//! A table is mined once (CLI `cohorts` command) and then served immutably:
//! `users` sort by user id so lookups binary-search, cohort ids are
//! canonical (size desc), and every float persists as its IEEE-754 bit
//! pattern — the table that loads is the table that was mined.
//!
//! The k-anonymity floor `k_min` travels *inside* the table: any renderer
//! (CLI or pm-serve) must consult [`CohortTable::suppressed`] before
//! exposing a cohort- or neighborhood-level aggregate, and emit an explicit
//! `suppressed` marker instead of the aggregate when the group is too
//! small. Suppression is a property of the artifact, not of the server
//! configuration, so one mined table answers identically everywhere.

use crate::cluster::{assign_cohorts, ClusterMethod, CohortParams};
use crate::embed::{similarity_sparse, UserEmbedding};
use pm_core::types::Category;

/// Cap on the per-user `top_units` list persisted in a record.
pub const TOP_UNITS_CAP: usize = 8;

/// One user's row in the index.
#[derive(Clone, Debug, PartialEq)]
pub struct UserRecord {
    /// Stable user id (the table's sort key).
    pub user: String,
    /// Canonical cohort id.
    pub cohort: u32,
    /// Recognized stays.
    pub stays: u64,
    /// Distinct active days.
    pub active_days: u64,
    /// Consecutive recognized stay pairs.
    pub transitions: u64,
    /// Stay count per primary category.
    pub category_visits: [u64; Category::COUNT],
    /// Most-visited units, `(unit, visits)` ranked by visits desc then unit
    /// asc, at most [`TOP_UNITS_CAP`] entries.
    pub top_units: Vec<(u64, u64)>,
    /// Sparse L2-normalized embedding (key-sorted), the similarity basis.
    pub features: Vec<(u64, f64)>,
}

/// One cohort's aggregate row.
#[derive(Clone, Debug, PartialEq)]
pub struct Cohort {
    /// Canonical id (== index in `CohortTable::cohorts`).
    pub id: u32,
    /// Member count.
    pub size: u64,
    /// Mean share of member stays per category, summing to 1 when members
    /// have any categorized stay (all zeros otherwise).
    pub category_mix: [f64; Category::COUNT],
    /// Mean active days per member.
    pub mean_active_days: f64,
    /// Mean recognized stays per member.
    pub mean_stays: f64,
}

impl Cohort {
    /// The category with the largest share of the mix, when any.
    pub fn dominant_category(&self) -> Option<Category> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.category_mix.iter().enumerate() {
            if v > 0.0 && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((i, v));
            }
        }
        best.map(|(i, _)| Category::from_index(i))
    }
}

/// The mined per-user pattern index.
#[derive(Clone, Debug, PartialEq)]
pub struct CohortTable {
    /// k-anonymity floor: aggregates over groups smaller than this are
    /// suppressed by every renderer.
    pub k_min: u32,
    /// Clustering seed the table was mined with.
    pub seed: u64,
    /// Clustering path taken (K-Means bulk or Mean Shift fallback).
    pub method: ClusterMethod,
    /// Cohort aggregates, canonical order (size desc).
    pub cohorts: Vec<Cohort>,
    /// Per-user records, sorted by user id (bytewise).
    pub users: Vec<UserRecord>,
}

/// How [`CohortTable::k_nearest`] selects candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimilarScope {
    /// Exact scan over the whole population.
    All,
    /// Per-cohort candidate pruning: scan only the query user's cohort.
    Cohort,
}

/// One similar-user hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index into `CohortTable::users`.
    pub user: u32,
    /// Blended cosine/Jaccard similarity in `[0, 1]`.
    pub similarity: f64,
}

/// Member lists per cohort — the immutable side index the serving snapshot
/// keeps next to the table.
#[derive(Clone, Debug, Default)]
pub struct CohortIndex {
    members: Vec<Vec<u32>>,
}

impl CohortIndex {
    /// Builds the per-cohort member lists (user order, hence sorted).
    pub fn build(table: &CohortTable) -> Self {
        let mut members = vec![Vec::new(); table.cohorts.len()];
        for (i, u) in table.users.iter().enumerate() {
            members[u.cohort as usize].push(i as u32);
        }
        Self { members }
    }

    /// Member indices of one cohort.
    pub fn members(&self, cohort: u32) -> &[u32] {
        &self.members[cohort as usize]
    }
}

impl CohortTable {
    /// Mines a table from per-user embeddings: sorts by user id, clusters
    /// the category profiles into cohorts, and freezes records and
    /// aggregates. User ids must be unique (group stays per user first).
    pub fn mine(mut embeddings: Vec<UserEmbedding>, params: &CohortParams) -> Self {
        embeddings.sort_by(|a, b| a.user.cmp(&b.user));
        for pair in embeddings.windows(2) {
            assert!(
                pair[0].user != pair[1].user,
                "duplicate user {}",
                pair[0].user
            );
        }
        let (labels, method) = assign_cohorts(&embeddings, params);
        let n_cohorts = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);

        let mut cohorts: Vec<Cohort> = (0..n_cohorts)
            .map(|id| Cohort {
                id: id as u32,
                size: 0,
                category_mix: [0.0; Category::COUNT],
                mean_active_days: 0.0,
                mean_stays: 0.0,
            })
            .collect();
        let mut users = Vec::with_capacity(embeddings.len());
        for (e, &label) in embeddings.iter().zip(&labels) {
            let c = &mut cohorts[label as usize];
            c.size += 1;
            c.mean_active_days += e.active_days as f64;
            c.mean_stays += e.stays as f64;
            for (slot, &v) in c.category_mix.iter_mut().zip(&e.category_visits) {
                *slot += v as f64;
            }

            let mut top_units = e.unit_visits.clone();
            top_units.sort_by_key(|&(unit, visits)| (u64::MAX - visits, unit));
            top_units.truncate(TOP_UNITS_CAP);
            users.push(UserRecord {
                user: e.user.clone(),
                cohort: label,
                stays: e.stays,
                active_days: e.active_days,
                transitions: e.transitions,
                category_visits: e.category_visits,
                top_units,
                features: e.features.clone(),
            });
        }
        for c in cohorts.iter_mut() {
            if c.size > 0 {
                c.mean_active_days /= c.size as f64;
                c.mean_stays /= c.size as f64;
            }
            let total: f64 = c.category_mix.iter().sum();
            if total > 0.0 {
                for v in c.category_mix.iter_mut() {
                    *v /= total;
                }
            }
        }

        Self {
            k_min: params.k_min,
            seed: params.seed,
            method,
            cohorts,
            users,
        }
    }

    /// Reassembles a table from persisted parts, validating the invariants
    /// the serving path depends on: sorted-unique users, sequential cohort
    /// ids, in-range memberships, key-sorted finite features, and member
    /// counts matching the stored cohort sizes.
    pub fn from_parts(
        k_min: u32,
        seed: u64,
        method: u8,
        cohorts: Vec<Cohort>,
        users: Vec<UserRecord>,
    ) -> Result<Self, String> {
        let method = ClusterMethod::from_u8(method)
            .ok_or_else(|| format!("unknown cluster method tag {method}"))?;
        for (i, c) in cohorts.iter().enumerate() {
            if c.id as usize != i {
                return Err(format!("cohort id {} at position {i}", c.id));
            }
            if !c.category_mix.iter().all(|v| v.is_finite())
                || !c.mean_active_days.is_finite()
                || !c.mean_stays.is_finite()
            {
                return Err(format!("cohort {i} has non-finite aggregates"));
            }
        }
        let mut sizes = vec![0u64; cohorts.len()];
        for pair in users.windows(2) {
            if pair[0].user >= pair[1].user {
                return Err(format!("users out of order at {:?}", pair[1].user));
            }
        }
        for u in &users {
            let c = u.cohort as usize;
            if c >= cohorts.len() {
                return Err(format!("user {:?} in unknown cohort {c}", u.user));
            }
            sizes[c] += 1;
            if !u.features.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("user {:?} has unsorted features", u.user));
            }
            if !u.features.iter().all(|(_, w)| w.is_finite()) {
                return Err(format!("user {:?} has non-finite weights", u.user));
            }
            if u.top_units.len() > TOP_UNITS_CAP {
                return Err(format!("user {:?} exceeds top-unit cap", u.user));
            }
        }
        for (c, size) in cohorts.iter().zip(&sizes) {
            if c.size != *size {
                return Err(format!(
                    "cohort {} claims {} members, found {size}",
                    c.id, c.size
                ));
            }
        }
        Ok(Self {
            k_min,
            seed,
            method,
            cohorts,
            users,
        })
    }

    /// Binary search for a user id.
    pub fn find_user(&self, user: &str) -> Option<usize> {
        self.users
            .binary_search_by(|u| u.user.as_str().cmp(user))
            .ok()
    }

    /// Whether an aggregate over a group of `size` users must be
    /// suppressed under this table's k-anonymity floor.
    pub fn suppressed(&self, size: u64) -> bool {
        size < u64::from(self.k_min)
    }

    /// The `k` most similar users to `query` (an index into `users`),
    /// excluding the query user. Exact scan over the scope's candidate
    /// set; ranked by (similarity desc, user id asc) so the result is
    /// deterministic down to ties.
    pub fn k_nearest(
        &self,
        index: &CohortIndex,
        query: usize,
        k: usize,
        scope: SimilarScope,
    ) -> Vec<Neighbor> {
        let q = &self.users[query];
        let mut hits: Vec<Neighbor> = Vec::new();
        let mut scan = |i: usize| {
            if i == query {
                return;
            }
            let s = similarity_sparse(&q.features, &self.users[i].features);
            hits.push(Neighbor {
                user: i as u32,
                similarity: s,
            });
        };
        match scope {
            SimilarScope::All => (0..self.users.len()).for_each(&mut scan),
            SimilarScope::Cohort => index
                .members(q.cohort)
                .iter()
                .for_each(|&i| scan(i as usize)),
        }
        hits.sort_by(|a, b| {
            b.similarity.total_cmp(&a.similarity).then_with(|| {
                self.users[a.user as usize]
                    .user
                    .cmp(&self.users[b.user as usize].user)
            })
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{embed_user, UserStay};

    fn corpus(n_a: usize, n_b: usize) -> Vec<UserEmbedding> {
        let mut out = Vec::new();
        for u in 0..n_a {
            let stays: Vec<UserStay> = (0..8)
                .map(|i| UserStay {
                    unit: (i % 2) as u64,
                    category: Some(if i % 2 == 0 {
                        Category::Residence
                    } else {
                        Category::Business
                    }),
                    time: (i * 30_000) as i64,
                })
                .collect();
            out.push(embed_user(format!("a{u:03}"), &stays));
        }
        for u in 0..n_b {
            let stays: Vec<UserStay> = (0..8)
                .map(|i| UserStay {
                    unit: 50 + (i % 3) as u64,
                    category: Some(if i % 2 == 0 {
                        Category::Shop
                    } else {
                        Category::Entertainment
                    }),
                    time: (i * 30_000) as i64,
                })
                .collect();
            out.push(embed_user(format!("b{u:03}"), &stays));
        }
        out
    }

    fn params() -> CohortParams {
        CohortParams {
            k: 2,
            k_min: 3,
            ..CohortParams::default()
        }
    }

    #[test]
    fn mine_builds_sorted_consistent_table() {
        let table = CohortTable::mine(corpus(20, 10), &params());
        assert_eq!(table.users.len(), 30);
        assert!(table.users.windows(2).all(|w| w[0].user < w[1].user));
        assert_eq!(table.cohorts.len(), 2);
        assert_eq!(table.cohorts[0].size, 20, "largest cohort first");
        let mix_sum: f64 = table.cohorts[0].category_mix.iter().sum();
        assert!((mix_sum - 1.0).abs() < 1e-9);
        assert!(table.cohorts[0].dominant_category().is_some());
    }

    #[test]
    fn suppression_floor_is_table_level() {
        let table = CohortTable::mine(corpus(20, 2), &params());
        assert!(table.suppressed(2));
        assert!(!table.suppressed(3));
    }

    #[test]
    fn find_user_round_trips() {
        let table = CohortTable::mine(corpus(5, 5), &params());
        let i = table.find_user("b002").expect("present");
        assert_eq!(table.users[i].user, "b002");
        assert!(table.find_user("zzz").is_none());
    }

    #[test]
    fn k_nearest_prefers_same_behavior() {
        let table = CohortTable::mine(corpus(20, 10), &params());
        let index = CohortIndex::build(&table);
        let q = table.find_user("a000").unwrap();
        let hits = table.k_nearest(&index, q, 5, SimilarScope::All);
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(table.users[h.user as usize].user.starts_with('a'));
            assert!(h.similarity > 0.9);
        }
        // Ties rank by user id asc.
        assert!(hits.windows(2).all(|w| w[0].similarity > w[1].similarity
            || table.users[w[0].user as usize].user < table.users[w[1].user as usize].user));
    }

    #[test]
    fn cohort_scope_matches_all_scope_on_clean_split() {
        let table = CohortTable::mine(corpus(20, 10), &params());
        let index = CohortIndex::build(&table);
        let q = table.find_user("a007").unwrap();
        let all = table.k_nearest(&index, q, 4, SimilarScope::All);
        let pruned = table.k_nearest(&index, q, 4, SimilarScope::Cohort);
        assert_eq!(all, pruned);
    }

    #[test]
    fn persistence_parts_round_trip() {
        let table = CohortTable::mine(corpus(12, 6), &params());
        let rebuilt = CohortTable::from_parts(
            table.k_min,
            table.seed,
            table.method.as_u8(),
            table.cohorts.clone(),
            table.users.clone(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt, table);
    }

    #[test]
    fn from_parts_rejects_corruption() {
        let table = CohortTable::mine(corpus(12, 6), &params());
        let mut bad = table.users.clone();
        bad.swap(0, 1);
        assert!(CohortTable::from_parts(3, 0, 0, table.cohorts.clone(), bad).is_err());

        let mut bad_cohorts = table.cohorts.clone();
        bad_cohorts[0].size += 1;
        assert!(CohortTable::from_parts(3, 0, 0, bad_cohorts, table.users.clone()).is_err());
        assert!(
            CohortTable::from_parts(3, 0, 9, table.cohorts.clone(), table.users.clone()).is_err()
        );
    }

    #[test]
    fn empty_population_mines_empty_table() {
        let table = CohortTable::mine(Vec::new(), &CohortParams::default());
        assert!(table.cohorts.is_empty());
        assert!(table.users.is_empty());
        let index = CohortIndex::build(&table);
        assert_eq!(index.members.len(), 0);
    }
}
