//! Deterministic per-user embeddings over semantic-unit transitions.
//!
//! Each user's recognized stay sequence becomes two views of one behavior:
//!
//! - a **sparse weighted vector** over semantic-unit visits and
//!   unit-to-unit transitions (the fine-grained fingerprint driving
//!   similar-user search), L2-normalized so the dot product *is* the cosine
//!   similarity;
//! - a **dense category profile** over [`Category`] visits and
//!   category-to-category transitions (`PROFILE_DIMS` = 15 + 15×15 = 240
//!   dimensions), the coarse view the cohort clustering partitions.
//!
//! Everything here is deterministic: stays sort by `(time, unit)` before
//! bucketing, sparse keys live in a `BTreeMap` until frozen, and weights
//! accumulate in key order — two runs over the same corpus produce
//! byte-identical embeddings at any thread count.

use pm_core::types::{Category, Timestamp, DAY_SECS};
use std::collections::{BTreeMap, BTreeSet};

/// Dimensions of the dense category profile: per-category visit mass plus
/// the flattened category-transition matrix.
pub const PROFILE_DIMS: usize = Category::COUNT + Category::COUNT * Category::COUNT;

/// One recognized stay of one user: the semantic unit it resolved to, the
/// unit's primary category when known, and the stay time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserStay {
    /// Semantic-unit id (must fit in `u32::MAX - 1`; CSD unit counts are
    /// far below that).
    pub unit: u64,
    /// Primary category of the unit, when recognition produced one.
    pub category: Option<Category>,
    /// Stay time (seconds); used for day bucketing and transition order.
    pub time: Timestamp,
}

/// A user embedded over their semantic stay sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct UserEmbedding {
    /// Stable user id (sort key of every downstream table).
    pub user: String,
    /// Recognized stays that contributed.
    pub stays: u64,
    /// Distinct days with at least one recognized stay.
    pub active_days: u64,
    /// Consecutive stay pairs (the transitions the vector is built from).
    pub transitions: u64,
    /// Stay count per primary category (unknown-category stays excluded).
    pub category_visits: [u64; Category::COUNT],
    /// Raw visit count per unit, sorted by unit id.
    pub unit_visits: Vec<(u64, u64)>,
    /// Sparse L2-normalized feature vector, sorted by key: unit-visit keys
    /// ([`visit_key`]) and unit-transition keys ([`transition_key`]).
    pub features: Vec<(u64, f64)>,
    /// Dense L2-normalized category profile ([`PROFILE_DIMS`] values).
    pub profile: Vec<f64>,
}

/// Feature key of a unit visit.
#[inline]
pub fn visit_key(unit: u64) -> u64 {
    debug_assert!(unit < u64::from(u32::MAX));
    (unit + 1) << 32
}

/// Feature key of a unit-to-unit transition.
#[inline]
pub fn transition_key(from: u64, to: u64) -> u64 {
    debug_assert!(from < u64::from(u32::MAX) && to < u64::from(u32::MAX));
    ((from + 1) << 32) | (to + 1)
}

/// Embeds one user from their recognized stays.
///
/// Stays are sorted by `(time, unit)` first, so callers may hand over
/// concatenated per-trajectory slices in any order and still get one
/// canonical embedding.
pub fn embed_user(user: impl Into<String>, stays: &[UserStay]) -> UserEmbedding {
    let mut ordered: Vec<UserStay> = stays.to_vec();
    ordered.sort_by_key(|s| (s.time, s.unit));

    let mut weights: BTreeMap<u64, f64> = BTreeMap::new();
    let mut unit_visits: BTreeMap<u64, u64> = BTreeMap::new();
    let mut category_visits = [0u64; Category::COUNT];
    let mut profile = vec![0.0; PROFILE_DIMS];
    let mut days: BTreeSet<Timestamp> = BTreeSet::new();
    let mut transitions = 0u64;

    for (i, stay) in ordered.iter().enumerate() {
        *weights.entry(visit_key(stay.unit)).or_insert(0.0) += 1.0;
        *unit_visits.entry(stay.unit).or_insert(0) += 1;
        days.insert(stay.time.div_euclid(DAY_SECS));
        if let Some(cat) = stay.category {
            category_visits[cat as usize] += 1;
            profile[cat as usize] += 1.0;
        }
        if i > 0 {
            let prev = &ordered[i - 1];
            transitions += 1;
            *weights
                .entry(transition_key(prev.unit, stay.unit))
                .or_insert(0.0) += 1.0;
            if let (Some(from), Some(to)) = (prev.category, stay.category) {
                profile[Category::COUNT + (from as usize) * Category::COUNT + to as usize] += 1.0;
            }
        }
    }

    let mut features: Vec<(u64, f64)> = weights.into_iter().collect();
    l2_normalize_sparse(&mut features);
    l2_normalize(&mut profile);

    UserEmbedding {
        user: user.into(),
        stays: ordered.len() as u64,
        active_days: days.len() as u64,
        transitions,
        category_visits,
        unit_visits: unit_visits.into_iter().collect(),
        features,
        profile,
    }
}

/// Embeds every `(user, stays)` group, fanned out over `threads` workers
/// (0 = all cores). Output order matches input order, and each embedding is
/// computed independently, so the result is byte-identical at any thread
/// count.
pub fn embed_users(groups: &[(String, Vec<UserStay>)], threads: usize) -> Vec<UserEmbedding> {
    pm_runtime::par_map(groups, threads, |(user, stays)| {
        embed_user(user.clone(), stays)
    })
}

fn l2_normalize_sparse(features: &mut [(u64, f64)]) {
    let norm_sq: f64 = features.iter().map(|(_, w)| w * w).sum();
    if norm_sq > 0.0 {
        let inv = 1.0 / norm_sq.sqrt();
        for (_, w) in features.iter_mut() {
            *w *= inv;
        }
    }
}

fn l2_normalize(values: &mut [f64]) {
    let norm_sq: f64 = values.iter().map(|v| v * v).sum();
    if norm_sq > 0.0 {
        let inv = 1.0 / norm_sq.sqrt();
        for v in values.iter_mut() {
            *v *= inv;
        }
    }
}

/// Dot product of two key-sorted sparse vectors. On L2-normalized inputs
/// (which [`embed_user`] produces) this is the cosine similarity.
pub fn cosine_sparse(a: &[(u64, f64)], b: &[(u64, f64)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut dot = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

/// Jaccard similarity of the two key sets (shared features over all
/// features), ignoring weights — the set-overlap complement to the cosine.
pub fn jaccard_keys(a: &[(u64, f64)], b: &[(u64, f64)]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j) = (0, 0);
    let mut shared = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - shared;
    shared as f64 / union as f64
}

/// The similarity the similar-user index ranks by: an even blend of the
/// L2 (cosine) kernel and the Jaccard set kernel over the sparse unit
/// features. Both terms lie in `[0, 1]` for non-negative weights, so the
/// blend does too; identical users score 1.
pub fn similarity(a: &UserEmbedding, b: &UserEmbedding) -> f64 {
    0.5 * cosine_sparse(&a.features, &b.features) + 0.5 * jaccard_keys(&a.features, &b.features)
}

/// [`similarity`] over already-frozen sparse vectors (the serving path,
/// which reads features out of a persisted [`crate::CohortTable`]).
pub fn similarity_sparse(a: &[(u64, f64)], b: &[(u64, f64)]) -> f64 {
    0.5 * cosine_sparse(a, b) + 0.5 * jaccard_keys(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stay(unit: u64, cat: Option<Category>, time: Timestamp) -> UserStay {
        UserStay {
            unit,
            category: cat,
            time,
        }
    }

    #[test]
    fn embedding_counts_and_normalization() {
        let stays = [
            stay(3, Some(Category::Residence), 0),
            stay(7, Some(Category::Business), 3_600),
            stay(3, Some(Category::Residence), 90_000),
        ];
        let e = embed_user("u0", &stays);
        assert_eq!(e.stays, 3);
        assert_eq!(e.active_days, 2);
        assert_eq!(e.transitions, 2);
        assert_eq!(e.category_visits[Category::Residence as usize], 2);
        assert_eq!(e.unit_visits, vec![(3, 2), (7, 1)]);
        let norm: f64 = e.features.iter().map(|(_, w)| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        let pnorm: f64 = e.profile.iter().map(|v| v * v).sum();
        assert!((pnorm - 1.0).abs() < 1e-12);
        assert!(e.features.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn stay_order_is_canonicalized() {
        let fwd = [stay(1, None, 0), stay(2, None, 100), stay(1, None, 200)];
        let mut rev = fwd;
        rev.reverse();
        assert_eq!(embed_user("u", &fwd), embed_user("u", &rev));
    }

    #[test]
    fn self_similarity_is_one() {
        let e = embed_user(
            "u",
            &[
                stay(1, Some(Category::Shop), 0),
                stay(2, Some(Category::Residence), 100),
            ],
        );
        assert!((similarity(&e, &e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_users_score_zero() {
        let a = embed_user("a", &[stay(1, None, 0), stay(2, None, 100)]);
        let b = embed_user("b", &[stay(9, None, 0), stay(8, None, 100)]);
        assert_eq!(similarity(&a, &b), 0.0);
    }

    #[test]
    fn shared_units_score_between() {
        let a = embed_user("a", &[stay(1, None, 0), stay(2, None, 100)]);
        let b = embed_user("b", &[stay(1, None, 0), stay(3, None, 100)]);
        let s = similarity(&a, &b);
        assert!(s > 0.0 && s < 1.0, "s={s}");
    }

    #[test]
    fn empty_user_is_empty_but_valid() {
        let e = embed_user("u", &[]);
        assert_eq!(e.stays, 0);
        assert!(e.features.is_empty());
        assert!(e.profile.iter().all(|v| *v == 0.0));
        assert_eq!(similarity(&e, &e), 0.0);
    }

    #[test]
    fn parallel_embedding_matches_serial() {
        let groups: Vec<(String, Vec<UserStay>)> = (0..24)
            .map(|u| {
                let stays = (0..10)
                    .map(|i| {
                        stay(
                            (u * 3 + i) % 11,
                            Some(Category::from_index(((u + i) % 15) as usize)),
                            i as Timestamp * 7_000,
                        )
                    })
                    .collect();
                (format!("u{u:03}"), stays)
            })
            .collect();
        assert_eq!(embed_users(&groups, 1), embed_users(&groups, 4));
    }
}
