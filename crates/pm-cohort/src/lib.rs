//! # pm-cohort — the per-user pattern layer
//!
//! Everything the stack serves below this crate is population-level: the
//! CSD's semantic units, the pattern set, the motif table. pm-cohort adds
//! the per-user layer on top, following the life-pattern clustering of
//! Li et al. (arXiv:2104.11968) and the similar-individual retrieval of
//! Andrade & Gama (arXiv:1904.09357), but embedding over CSD semantic
//! units instead of POI grids:
//!
//! - [`embed`]: each user's recognized stay sequence becomes a sparse
//!   L2-normalized vector over semantic-unit visits/transitions plus a
//!   dense category-transition profile, with cosine (L2) and Jaccard
//!   similarity kernels.
//! - [`cluster`]: users partition into **life-pattern cohorts** over their
//!   category profiles — seeded, byte-deterministic K-Means
//!   ([`pm_cluster::ndim`]) in bulk, Mean Shift fallback for small
//!   populations — with canonical (size-desc) cohort ids.
//! - [`table`]: the frozen [`CohortTable`] artifact — sorted user records,
//!   cohort aggregates, and the exact-scan k-nearest-similar-users search
//!   with per-cohort candidate pruning as the fast path.
//!
//! ## k-anonymity
//!
//! The table carries a `k_min` floor. Renderers (CLI, pm-serve) must route
//! every cohort- or neighborhood-level aggregate through
//! [`CohortTable::suppressed`] and replace too-small groups with an
//! explicit `suppressed` marker — never silently drop them. The floor is
//! part of the mined artifact, so suppression decisions are reproducible
//! wherever the table is served.
//!
//! std-only, like the rest of the workspace; determinism is the contract —
//! the same corpus and parameters yield byte-identical tables at any
//! `PM_THREADS` setting.

pub mod cluster;
pub mod embed;
pub mod table;

pub use cluster::{
    assign_cohorts, ClusterMethod, CohortParams, DEFAULT_K_MIN, DEFAULT_SMALL_POPULATION,
};
pub use embed::{
    cosine_sparse, embed_user, embed_users, jaccard_keys, similarity, similarity_sparse,
    transition_key, visit_key, UserEmbedding, UserStay, PROFILE_DIMS,
};
pub use table::{
    Cohort, CohortIndex, CohortTable, Neighbor, SimilarScope, UserRecord, TOP_UNITS_CAP,
};
