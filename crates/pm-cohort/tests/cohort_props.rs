//! Determinism properties of the cohort pipeline: embeddings, cohort
//! assignment, and similar-user rankings must be byte-identical at every
//! thread count and invariant under input order, and rankings must obey
//! the documented (similarity desc, user asc) total order.

use pm_cohort::{embed_users, CohortIndex, CohortParams, CohortTable, SimilarScope, UserStay};
use pm_core::types::Category;
use proptest::prelude::*;

/// A drawn population: per-user stay lists over a small unit pool, with
/// categories and times covering a few days.
fn population() -> impl Strategy<Value = Vec<Vec<UserStay>>> {
    let stay =
        (0u64..10, 0usize..Category::COUNT, 0i64..259_200).prop_map(|(unit, cat, time)| UserStay {
            unit,
            category: Some(Category::from_index(cat)),
            time,
        });
    prop::collection::vec(prop::collection::vec(stay, 1..12), 2..32)
}

fn named(stays: Vec<Vec<UserStay>>) -> Vec<(String, Vec<UserStay>)> {
    stays
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("u{i:03}"), s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The whole batch path — embed, cluster, rank — is identical at one
    /// worker thread and four.
    #[test]
    fn pipeline_is_thread_count_invariant(stays in population(), k_min in 1u32..6) {
        let groups = named(stays);
        let params = CohortParams { k_min, ..CohortParams::default() };

        let sequential = embed_users(&groups, 1);
        let parallel = embed_users(&groups, 4);
        prop_assert_eq!(&sequential, &parallel);

        let table_seq = CohortTable::mine(sequential, &params);
        let table_par = CohortTable::mine(parallel, &params);
        prop_assert_eq!(&table_seq, &table_par);

        let index = CohortIndex::build(&table_seq);
        for query in 0..table_seq.users.len() {
            for scope in [SimilarScope::Cohort, SimilarScope::All] {
                let a = table_seq.k_nearest(&index, query, 5, scope);
                let b = table_par.k_nearest(&index, query, 5, scope);
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Mining sorts by user id, so the table cannot depend on the order
    /// the corpus delivered trajectories in.
    #[test]
    fn table_is_input_order_invariant(stays in population()) {
        let groups = named(stays);
        let mut reversed = groups.clone();
        reversed.reverse();
        let params = CohortParams::default();
        let forward = CohortTable::mine(embed_users(&groups, 1), &params);
        let backward = CohortTable::mine(embed_users(&reversed, 1), &params);
        prop_assert_eq!(forward, backward);
    }

    /// Rankings follow the documented total order — similarity strictly
    /// non-increasing, ties broken by ascending user index — and never
    /// include the query user.
    #[test]
    fn rankings_are_totally_ordered(stays in population()) {
        let groups = named(stays);
        let table = CohortTable::mine(embed_users(&groups, 1), &CohortParams::default());
        let index = CohortIndex::build(&table);
        for query in 0..table.users.len() {
            for scope in [SimilarScope::Cohort, SimilarScope::All] {
                let neighbors = table.k_nearest(&index, query, table.users.len(), scope);
                for pair in neighbors.windows(2) {
                    let ordered = pair[0].similarity > pair[1].similarity
                        || (pair[0].similarity == pair[1].similarity
                            && pair[0].user < pair[1].user);
                    prop_assert!(ordered, "{:?} before {:?}", pair[0], pair[1]);
                }
                prop_assert!(neighbors.iter().all(|n| n.user as usize != query));
            }
        }
    }
}
