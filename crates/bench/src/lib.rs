//! Shared fixtures for the figure/table regeneration benches.
//!
//! Every bench prints the regenerated rows of its paper table/figure before
//! the Criterion timing runs, so `cargo bench` output doubles as the
//! experimental record transcribed into EXPERIMENTS.md.

use pervasive_miner::prelude::*;

/// Seed shared by all benches so their printed numbers refer to one world.
pub const BENCH_SEED: u64 = 2020;

/// The evaluation-scale dataset (a few seconds to generate and mine).
pub fn bench_dataset() -> Dataset {
    Dataset::generate(&CityConfig::small(BENCH_SEED))
}

/// The paper's default parameters at evaluation scale.
pub fn bench_params() -> MinerParams {
    MinerParams::default() // sigma = 50, delta_t = 60 min, rho = 0.002
}

/// A tiny dataset for the Criterion-timed kernels (milliseconds per iter).
pub fn timing_dataset() -> Dataset {
    Dataset::generate(&CityConfig::tiny(BENCH_SEED))
}

/// Tiny-scale parameters for timed kernels.
pub fn timing_params() -> MinerParams {
    MinerParams {
        sigma: 20,
        ..MinerParams::default()
    }
}
