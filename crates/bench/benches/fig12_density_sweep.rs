//! Fig. 12: the four metrics versus the density threshold rho.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::{figures, report};
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn regenerate() {
    let ds = bench_dataset();
    let params = bench_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    // The paper sweeps rho in 0.001..0.004; our synthetic venue groups are
    // an order of magnitude denser (tight compounds, 15 m GPS noise), so
    // the sweep extends into the regime where the gate actually bites —
    // same trend, shifted axis (see EXPERIMENTS.md).
    let points = figures::fig12_density_sweep(
        &recognized,
        &params,
        &baseline,
        &[0.002, 0.01, 0.02, 0.04, 0.08],
    )
    .expect("valid params");
    println!(
        "\n{}",
        report::render_sweep(
            "Fig. 12 — metrics vs density threshold rho (m^-2)",
            "rho",
            &points
        )
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    c.bench_function("fig12/sweep_one_rho", |b| {
        b.iter(|| {
            pervasive_miner::eval::run_approach(
                Approach::CsdPm,
                &recognized,
                &params.with_rho(0.003),
                &baseline,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
