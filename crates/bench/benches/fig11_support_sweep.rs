//! Fig. 11: #patterns, coverage, avg spatial sparsity and avg semantic
//! consistency versus the support threshold sigma, for all six approaches.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::{figures, report};
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn regenerate() {
    let ds = bench_dataset();
    let params = bench_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    let points = figures::fig11_support_sweep(&recognized, &params, &baseline, &[25, 50, 75, 100])
        .expect("valid params");
    println!(
        "\n{}",
        report::render_sweep(
            "Fig. 11 — metrics vs support threshold sigma",
            "sigma",
            &points
        )
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    c.bench_function("fig11/sweep_one_sigma", |b| {
        b.iter(|| {
            pervasive_miner::eval::run_approach(
                Approach::CsdPm,
                &recognized,
                &params.with_sigma(30),
                &baseline,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
