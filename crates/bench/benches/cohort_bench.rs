//! Per-user cohort pipeline benchmark with a CI-friendly smoke mode.
//!
//! Builds a CSD, then times the batch cohort path behind
//! `pervasive-miner cohorts`: every user's recognized stays embed into a
//! sparse semantic-unit visit/transition vector (embed rate, users/sec),
//! the population clusters into life-pattern cohorts (cluster ms), and
//! the per-user index answers similar-user queries — timed per scope, the
//! pruned cohort fast path against the exact full scan (p50/p99 ms). The
//! numbers land in the `"cohorts"` section of `BENCH_pipeline.json`,
//! spliced next to the pipeline, serve, ingest, and motif sections.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode on the tiny dataset. Anything else
//!   (or unset) mines the evaluation-scale dataset.
//! - `PM_BENCH_OUT=<path>` — the JSON to write or splice into (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::cluster::GaussianKernel;
use pervasive_miner::cohort::{
    embed_users, CohortIndex, CohortParams, CohortTable, SimilarScope, UserStay,
};
use pervasive_miner::core::recognize::{recognize_stay_point_unit, stay_points_of};
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// `sorted` ascending; q in [0, 1].
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times `k_nearest` over a deterministic stride-sample of users and
/// returns the ascending per-query latencies in milliseconds.
fn query_samples(
    table: &CohortTable,
    index: &CohortIndex,
    scope: SimilarScope,
    max_queries: usize,
) -> Vec<f64> {
    let n = table.users.len();
    let stride = n.div_ceil(max_queries).max(1);
    let mut samples = Vec::new();
    for query in (0..n).step_by(stride) {
        let start = Instant::now();
        let neighbors = table.k_nearest(index, query, 10, scope);
        samples.push(start.elapsed().as_nanos() as f64 / 1e6);
        assert!(neighbors.len() <= 10);
    }
    samples.sort_by(f64::total_cmp);
    samples
}

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, mode, max_queries) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            "smoke",
            256,
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            "full",
            1024,
        )
    };
    eprintln!(
        "cohort bench ({mode}): {} trajectories over {} POIs",
        ds.trajectories.len(),
        ds.pois.len()
    );

    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let kernel = GaussianKernel::new(params.r3sigma);

    // Group recognized stays per user — carded passengers by card id,
    // anonymous trajectories standing alone — the same identity rule the
    // `cohorts` command applies.
    let mut groups: BTreeMap<String, Vec<UserStay>> = BTreeMap::new();
    for (i, traj) in ds.trajectories.iter().enumerate() {
        let user = match traj.passenger {
            Some(card) => format!("card-{card}"),
            None => format!("u{i}"),
        };
        let user_stays = groups.entry(user).or_default();
        for sp in &traj.stays {
            let (unit, _tags, primary) = recognize_stay_point_unit(&csd, &kernel, sp.pos);
            if let Some(unit) = unit {
                user_stays.push(UserStay {
                    unit: unit as u64,
                    category: primary,
                    time: sp.time,
                });
            }
        }
    }
    groups.retain(|_, s| !s.is_empty());
    let groups: Vec<(String, Vec<UserStay>)> = groups.into_iter().collect();
    let cohort_params = CohortParams::default();

    // Measured region 1: embedding (users/sec).
    let started = Instant::now();
    let embeddings = embed_users(&groups, cohort_params.threads);
    let embed_ms = started.elapsed().as_nanos() as f64 / 1e6;
    let n_users = embeddings.len();
    let users_per_sec = if embed_ms > 0.0 {
        (n_users as f64 * 1e3 / embed_ms).round()
    } else {
        0.0
    };

    // Measured region 2: clustering + table assembly (ms).
    let started = Instant::now();
    let table = CohortTable::mine(embeddings, &cohort_params);
    let cluster_ms = started.elapsed().as_nanos() as f64 / 1e6;
    assert!(!table.cohorts.is_empty(), "the corpus must yield cohorts");

    // Measured region 3: similar-user queries per scope (p50/p99 ms).
    let index = CohortIndex::build(&table);
    let cohort_scope = query_samples(&table, &index, SimilarScope::Cohort, max_queries);
    let all_scope = query_samples(&table, &index, SimilarScope::All, max_queries);

    eprintln!(
        "  {} users -> {} cohorts via {}: embed {:.1} ms ({users_per_sec:.0} users/s), cluster {:.1} ms",
        n_users,
        table.cohorts.len(),
        table.method.name(),
        embed_ms,
        cluster_ms
    );
    eprintln!(
        "  similar k=10 over {} queries: cohort scope p50 {:.3} / p99 {:.3} ms, all scope p50 {:.3} / p99 {:.3} ms",
        cohort_scope.len(),
        quantile_ms(&cohort_scope, 0.50),
        quantile_ms(&cohort_scope, 0.99),
        quantile_ms(&all_scope, 0.50),
        quantile_ms(&all_scope, 0.99),
    );

    let mut section = String::from("{\n    \"schema\": \"pm-bench-cohorts/1\"");
    let _ = write!(section, ",\n    \"mode\": \"{mode}\"");
    let _ = write!(section, ",\n    \"users\": {n_users}");
    let _ = write!(section, ",\n    \"cohorts\": {}", table.cohorts.len());
    let _ = write!(section, ",\n    \"method\": \"{}\"", table.method.name());
    let _ = write!(section, ",\n    \"embed_ms\": {}", json::millis(embed_ms));
    let _ = write!(section, ",\n    \"users_per_sec\": {users_per_sec:.0}");
    let _ = write!(
        section,
        ",\n    \"cluster_ms\": {}",
        json::millis(cluster_ms)
    );
    let _ = write!(section, ",\n    \"queries\": {}", cohort_scope.len());
    for (name, samples) in [("cohort_scope", &cohort_scope), ("all_scope", &all_scope)] {
        let _ = write!(
            section,
            ",\n    \"{name}_p50_ms\": {}, \"{name}_p99_ms\": {}",
            json::millis(quantile_ms(samples, 0.50)),
            json::millis(quantile_ms(samples, 0.99)),
        );
    }
    section.push_str("\n  }");

    // Splice into the pipeline bench's report when one is present and does
    // not already carry a cohorts section; otherwise write a standalone
    // document so the bench works in isolation too.
    let spliced = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|doc| doc.ends_with("\n}\n") && !doc.contains("\"cohorts\""))
        .map(|doc| {
            let body = doc.trim_end_matches("\n}\n");
            format!("{body},\n  \"cohorts\": {section}\n}}\n")
        });
    let doc = spliced.unwrap_or_else(|| {
        format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"cohorts\": {section}\n}}\n")
    });
    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
