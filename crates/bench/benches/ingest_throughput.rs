//! Streaming-ingest throughput harness with a CI-friendly smoke mode.
//!
//! Mines an artifact, serves it, then replays synthetic per-user fix
//! streams through `POST /v1/ingest` on a keep-alive connection — users
//! dwell at unit centers long enough to trigger Definition 5, so the
//! measured path covers transport ordering, incremental detection,
//! recognition against the snapshot, and the transition window. The
//! sustained fixes/second lands in the `"ingest"` section of
//! `BENCH_pipeline.json`, spliced next to the offline pipeline and serve
//! latency sections.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode: tiny dataset, ~4k fixes. Anything
//!   else (or unset) replays the evaluation-scale dataset with ~48k fixes.
//! - `PM_BENCH_OUT=<path>` — the JSON to write or splice into (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use pervasive_miner::serve::{client, ServeConfig, Server, Snapshot};
use pervasive_miner::store::Artifact;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn mine_artifact(ds: &Dataset, params: &MinerParams) -> Artifact {
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), params).expect("recognize");
    let patterns = extract_patterns(&recognized, params).expect("extract");
    Artifact::new(csd, patterns, *params)
}

/// One user's synthetic stream: dwell legs at successive unit centers,
/// `dwell` fixes each at `theta_t / 3` spacing (long enough for a stay),
/// separated by a `2 * theta_t` travel gap that breaks the dwell.
fn user_fixes(
    user: usize,
    legs: usize,
    dwell: usize,
    centers: &[pervasive_miner::geo::LocalPoint],
    params: &MinerParams,
) -> Vec<(f64, f64, i64)> {
    let mut out = Vec::with_capacity(legs * dwell);
    let mut t = 1_000 * user as i64;
    for leg in 0..legs {
        let c = centers[(user + leg) % centers.len()];
        for _ in 0..dwell {
            t += params.theta_t / 3;
            out.push((c.x, c.y, t));
        }
        t += params.theta_t * 2;
    }
    out
}

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, users, legs, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            24,
            4,
            "smoke",
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            80,
            15,
            "full",
        )
    };
    let dwell = 8usize;
    let batch_size = 400usize;
    eprintln!(
        "ingest bench ({mode}): {users} users x {legs} legs x {dwell} fixes, batches of {batch_size}"
    );

    let artifact = mine_artifact(&ds, &params);
    eprintln!("  artifact: {}", artifact.describe());
    let centers: Vec<_> = artifact.csd.units().iter().map(|u| u.center).collect();
    assert!(!centers.is_empty(), "bench city must yield units");
    let snapshot = Arc::new(Snapshot::new(artifact).expect("snapshot"));
    let server = Server::bind(
        "127.0.0.1:0",
        snapshot,
        ServeConfig {
            max_requests_per_conn: usize::MAX,
            ..ServeConfig::default()
        },
        pervasive_miner::obs::Obs::noop(),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());

    // Interleave users round-robin, one leg at a time — the realistic shape
    // where every batch carries many users' partial streams.
    let streams: Vec<Vec<(f64, f64, i64)>> = (0..users)
        .map(|u| user_fixes(u, legs, dwell, &centers, &params))
        .collect();
    let mut records: Vec<(usize, (f64, f64, i64))> = Vec::new();
    for leg in 0..legs {
        for (u, fixes) in streams.iter().enumerate() {
            for &f in &fixes[leg * dwell..(leg + 1) * dwell] {
                records.push((u, f));
            }
        }
    }

    let mut conn = client::Conn::open(addr).expect("connect");
    let (mut stays, mut transitions, mut batches) = (0i64, 0i64, 0u64);
    let started = Instant::now();
    for chunk in records.chunks(batch_size) {
        let mut body = String::from("{\"fixes\":[");
        for (i, (u, (x, y, t))) in chunk.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(body, "{{\"user\":\"u{u}\",\"x\":{x},\"y\":{y},\"t\":{t}}}");
        }
        body.push_str("]}");
        let (status, reply) = conn.post("/v1/ingest", &body).expect("ingest");
        assert_eq!(status, 200, "{reply}");
        let parsed = pervasive_miner::serve::json::parse(&reply).expect("reply JSON");
        stays += parsed.get("stays").and_then(|v| v.as_i64()).unwrap_or(0);
        transitions += parsed
            .get("transitions")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        batches += 1;
    }
    let wall_ms = started.elapsed().as_nanos() as f64 / 1e6;
    handle.shutdown();
    thread.join().expect("server thread").expect("serve");

    let fixes = records.len();
    // Guard the denominator: a sub-microsecond wall clock (tiny corpus, or a
    // timer that failed to advance) would turn the naive division into
    // infinity, and the old `as u64` cast silently saturated it into a
    // nonsense 18-quintillion rate. Report a rounded rate, 0 when the
    // elapsed time is too small to support one.
    let fixes_per_sec = if wall_ms > 0.0 {
        (fixes as f64 * 1e3 / wall_ms).round()
    } else {
        0.0
    };
    assert!(stays > 0, "the replay must emit stays");
    eprintln!(
        "  {fixes} fixes in {batches} batches: {:.1} ms total, {fixes_per_sec:.0} fixes/s, {stays} stays, {transitions} transitions",
        wall_ms
    );

    let mut section = String::from("{\n    \"schema\": \"pm-bench-ingest/1\"");
    let _ = write!(section, ",\n    \"mode\": \"{mode}\"");
    let _ = write!(section, ",\n    \"fixes\": {fixes}");
    let _ = write!(section, ",\n    \"batches\": {batches}");
    let _ = write!(section, ",\n    \"wall_ms\": {}", json::millis(wall_ms));
    let _ = write!(section, ",\n    \"fixes_per_sec\": {fixes_per_sec:.0}");
    let _ = write!(section, ",\n    \"stays\": {stays}");
    let _ = write!(section, ",\n    \"transitions\": {transitions}");
    section.push_str("\n  }");

    // Splice into the pipeline bench's report when one is present and does
    // not already carry an ingest section; otherwise write a standalone
    // document so the bench works in isolation too.
    let spliced = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|doc| doc.ends_with("\n}\n") && !doc.contains("\"ingest\""))
        .map(|doc| {
            let body = doc.trim_end_matches("\n}\n");
            format!("{body},\n  \"ingest\": {section}\n}}\n")
        });
    let doc = spliced.unwrap_or_else(|| {
        format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"ingest\": {section}\n}}\n")
    });
    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
