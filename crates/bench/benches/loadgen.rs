//! Sharded-ingest load generator: a million synthetic users through
//! `POST /v1/ingest`.
//!
//! Mines an artifact, serves it around an explicitly sharded
//! [`ShardedEngine`], then replays a fix-major synthetic stream — every
//! user dwells at a unit center for `dwell` fixes spaced `theta_t / 3`
//! apart, legs separated by a `2 * theta_t` travel gap, all users sharing
//! one base timeline with a small per-user offset so event time advances
//! batch over batch (a per-user epoch spread would blow the idle TTL).
//! Batches are generated on the fly; nothing near the full stream is ever
//! materialized.
//!
//! Reported: sustained fixes/second plus p50/p99/p999 of the per-batch
//! round-trip latency, spliced into the `"loadgen"` section of
//! `BENCH_pipeline.json` next to the offline pipeline, serve-latency, and
//! single-engine ingest sections.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode: ~20k users, ~160k fixes. Anything
//!   else (or unset) runs the full 1M-user / 8M-fix stream.
//! - `PM_LOADGEN_SHARDS=<n>` — shard count (default 8).
//! - `PM_BENCH_OUT=<path>` — the JSON to write or splice into (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::obs::{json, Obs};
use pervasive_miner::prelude::*;
use pervasive_miner::serve::{client, ServeConfig, ServeState, Server, Snapshot};
use pervasive_miner::store::Artifact;
use pervasive_miner::stream::{EngineConfig, Recognizer, ShardConfig, ShardedEngine};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn mine_artifact(ds: &Dataset, params: &MinerParams) -> Artifact {
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), params).expect("recognize");
    let patterns = extract_patterns(&recognized, params).expect("extract");
    Artifact::new(csd, patterns, *params)
}

/// Nearest-rank percentile of an already sorted latency series.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let shards: usize = std::env::var("PM_LOADGEN_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(8);
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, users, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            20_000usize,
            "smoke",
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            1_000_000usize,
            "full",
        )
    };
    let (legs, dwell) = (2usize, 4usize);
    let batch_size = 1_000usize;
    let fixes = users * legs * dwell;
    eprintln!(
        "loadgen ({mode}): {users} users x {legs} legs x {dwell} fixes = {fixes} fixes, \
         {shards} shards, batches of {batch_size}"
    );

    let artifact = mine_artifact(&ds, &params);
    eprintln!("  artifact: {}", artifact.describe());
    let centers: Vec<_> = artifact.csd.units().iter().map(|u| u.center).collect();
    assert!(!centers.is_empty(), "bench city must yield units");
    let snapshot = Arc::new(Snapshot::new(artifact).expect("snapshot"));

    // An engine sized for the user population, sharded explicitly — the
    // bench pins the shard count instead of inheriting `PM_SHARDS`.
    let engine = EngineConfig {
        max_users: users + users / 5,
        max_stay_buffer: 0, // no re-mining accumulation; this measures ingest
        ..EngineConfig::from_miner(&snapshot.artifact().params)
    };
    let snap = Arc::clone(&snapshot);
    let recognize: Recognizer = Arc::new(move |pos| snap.primary_category(pos));
    let (sharded, _recovery) =
        ShardedEngine::open(ShardConfig::new(shards, engine), &recognize).expect("shard engine");
    let obs = Obs::noop();
    let state = ServeState::with_engine(Arc::clone(&snapshot), sharded).with_obs(obs.clone());
    let server = Server::bind_with_state(
        "127.0.0.1:0",
        Arc::new(state),
        ServeConfig {
            max_requests_per_conn: usize::MAX,
            ..ServeConfig::default()
        },
        obs,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());

    // Fix-major order: every user's k-th fix before anyone's (k+1)-th, so
    // one pass over the population advances event time for all shards in
    // lockstep and per-user streams stay time-ordered.
    let spacing = params.theta_t / 3;
    let leg_span = dwell as i64 * spacing + 2 * params.theta_t;
    let base = 1_000_000i64;
    let fix_at = |user: usize, leg: usize, k: usize| {
        let c = centers[(user + leg) % centers.len()];
        let t = base + leg as i64 * leg_span + k as i64 * spacing + (user % 97) as i64;
        (c.x, c.y, t)
    };

    let mut conn = client::Conn::open(addr).expect("connect");
    let (mut stays, mut transitions) = (0i64, 0i64);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(fixes / batch_size + 1);
    let mut body = String::with_capacity(batch_size * 64);
    let mut in_batch = 0usize;
    let started = Instant::now();
    let mut flush = |body: &mut String, latencies_ms: &mut Vec<f64>| {
        body.push_str("]}");
        let sent = Instant::now();
        let (status, reply) = conn.post("/v1/ingest", body).expect("ingest");
        latencies_ms.push(sent.elapsed().as_nanos() as f64 / 1e6);
        assert_eq!(status, 200, "{reply}");
        let parsed = pervasive_miner::serve::json::parse(&reply).expect("reply JSON");
        stays += parsed.get("stays").and_then(|v| v.as_i64()).unwrap_or(0);
        transitions += parsed
            .get("transitions")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        body.clear();
        body.push_str("{\"fixes\":[");
    };
    body.push_str("{\"fixes\":[");
    for leg in 0..legs {
        for k in 0..dwell {
            for user in 0..users {
                let (x, y, t) = fix_at(user, leg, k);
                if in_batch > 0 {
                    body.push(',');
                }
                let _ = write!(
                    body,
                    "{{\"user\":\"u{user}\",\"x\":{x},\"y\":{y},\"t\":{t}}}"
                );
                in_batch += 1;
                if in_batch == batch_size {
                    flush(&mut body, &mut latencies_ms);
                    in_batch = 0;
                }
            }
        }
    }
    if in_batch > 0 {
        flush(&mut body, &mut latencies_ms);
    }
    let wall_ms = started.elapsed().as_nanos() as f64 / 1e6;
    handle.shutdown();
    thread.join().expect("server thread").expect("serve");

    let batches = latencies_ms.len() as u64;
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99, p999) = (
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
        percentile(&latencies_ms, 0.999),
    );
    let fixes_per_sec = if wall_ms > 0.0 {
        (fixes as f64 * 1e3 / wall_ms).round()
    } else {
        0.0
    };
    assert!(stays > 0, "the replay must emit stays");
    eprintln!(
        "  {fixes} fixes in {batches} batches: {:.1} ms total, {fixes_per_sec:.0} fixes/s, \
         batch p50 {:.3} ms / p99 {:.3} ms / p999 {:.3} ms, {stays} stays, {transitions} transitions",
        wall_ms, p50, p99, p999
    );

    let mut section = String::from("{\n    \"schema\": \"pm-bench-loadgen/1\"");
    let _ = write!(section, ",\n    \"mode\": \"{mode}\"");
    let _ = write!(section, ",\n    \"shards\": {shards}");
    let _ = write!(section, ",\n    \"users\": {users}");
    let _ = write!(section, ",\n    \"fixes\": {fixes}");
    let _ = write!(section, ",\n    \"batches\": {batches}");
    let _ = write!(section, ",\n    \"batch_size\": {batch_size}");
    let _ = write!(section, ",\n    \"wall_ms\": {}", json::millis(wall_ms));
    let _ = write!(section, ",\n    \"fixes_per_sec\": {fixes_per_sec:.0}");
    let _ = write!(section, ",\n    \"batch_p50_ms\": {}", json::millis(p50));
    let _ = write!(section, ",\n    \"batch_p99_ms\": {}", json::millis(p99));
    let _ = write!(section, ",\n    \"batch_p999_ms\": {}", json::millis(p999));
    let _ = write!(section, ",\n    \"stays\": {stays}");
    let _ = write!(section, ",\n    \"transitions\": {transitions}");
    section.push_str("\n  }");

    // Splice into the pipeline bench's report when one is present and does
    // not already carry a loadgen section; otherwise write a standalone
    // document so the bench works in isolation too.
    let spliced = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|doc| doc.ends_with("\n}\n") && !doc.contains("\"loadgen\""))
        .map(|doc| {
            let body = doc.trim_end_matches("\n}\n");
            format!("{body},\n  \"loadgen\": {section}\n}}\n")
        });
    let doc = spliced.unwrap_or_else(|| {
        format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"loadgen\": {section}\n}}\n")
    });
    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
