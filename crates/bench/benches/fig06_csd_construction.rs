//! Fig. 6 equivalent: City Semantic Diagram construction statistics (the
//! paper shows the Shanghai map; we report the structural numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn regenerate() {
    let ds = bench_dataset();
    let params = bench_params();
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let s = csd.stats();
    println!(
        "\nFig. 6 — CSD construction ({} POIs, {} stay points)",
        s.n_pois,
        stays.len()
    );
    println!("  coarse clusters (Alg. 1): {}", s.n_coarse);
    println!("  leftover POIs:            {}", s.n_leftover);
    println!("  units after purification: {}", s.n_purified);
    println!("  final units after merge:  {}", s.n_units);
    println!("  POIs covered:             {}", s.n_covered);
    println!("  single-category units:    {:.1}%", s.purity * 100.0);
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let stays = stay_points_of(&ds.trajectories);
    c.bench_function("fig06/csd_build", |b| {
        b.iter(|| CitySemanticDiagram::build(&ds.pois, &stays, &params))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
