//! Fig. 14: the demonstration — time-of-week pattern breakdown (a–f),
//! airport demand (g) and hospital trips vs check-in bias (h).

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::eval::{figures, report};
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params, BENCH_SEED};

fn regenerate() {
    let ds = bench_dataset();
    // The paper inspects the hospital region specifically; a lower support
    // threshold surfaces the thinner medical flows alongside the commutes.
    let params = MinerParams {
        sigma: 25,
        ..bench_params()
    };
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    let demo = figures::fig14_full(&ds, &recognized, &patterns, &params, BENCH_SEED)
        .expect("valid params");
    println!("\n{}", report::render_fig14(&demo));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    c.bench_function("fig14/bucket_report", |b| {
        b.iter(|| figures::fig14(&ds, &patterns, BENCH_SEED))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
