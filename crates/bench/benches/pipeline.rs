//! Whole-pipeline timing harness with a CI-friendly smoke mode.
//!
//! Times the three pipeline stages (CSD construction, semantic recognition,
//! pattern extraction) over N iterations and writes the per-stage medians to
//! `BENCH_pipeline.json` — a machine-readable document CI archives per
//! commit so the performance trajectory of the pipeline is diffable.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode: tiny dataset, 3 iterations, seconds of
//!   wall time. Anything else (or unset) runs the evaluation-scale dataset.
//! - `PM_BENCH_OUT=<path>` — where to write the JSON (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

struct Stage {
    name: &'static str,
    /// Per-iteration wall times in milliseconds, sorted ascending.
    samples: Vec<f64>,
}

impl Stage {
    fn median_ms(&self) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            self.samples[n / 2]
        } else {
            (self.samples[n / 2 - 1] + self.samples[n / 2]) / 2.0
        }
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / 1e6
}

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, iters, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            3,
            "smoke",
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            7,
            "full",
        )
    };
    eprintln!(
        "pipeline bench ({mode}): {} POIs, {} trajectories, {iters} iteration(s)",
        ds.pois.len(),
        ds.trajectories.len()
    );

    let stays = stay_points_of(&ds.trajectories);
    let mut build = Vec::new();
    let mut recognize = Vec::new();
    let mut extract = Vec::new();
    for i in 0..iters {
        let mut csd = None;
        build.push(time_ms(|| {
            csd = Some(CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build"));
        }));
        let csd = csd.expect("built");
        let mut recognized = None;
        recognize.push(time_ms(|| {
            recognized =
                Some(recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize"));
        }));
        let recognized = recognized.expect("recognized");
        let mut patterns = None;
        extract.push(time_ms(|| {
            patterns = Some(extract_patterns(&recognized, &params).expect("extract"));
        }));
        eprintln!(
            "  iter {}: build {:.1} ms, recognize {:.1} ms, extract {:.1} ms ({} patterns)",
            i + 1,
            build[i],
            recognize[i],
            extract[i],
            patterns.expect("extracted").len()
        );
    }

    let mut stages = [
        Stage {
            name: "csd_build",
            samples: build,
        },
        Stage {
            name: "recognize",
            samples: recognize,
        },
        Stage {
            name: "extract",
            samples: extract,
        },
    ];
    for s in &mut stages {
        s.samples.sort_by(f64::total_cmp);
    }

    let mut doc = String::from("{\n  \"schema\": \"pm-bench/1\"");
    let _ = write!(doc, ",\n  \"mode\": \"{mode}\"");
    let _ = write!(doc, ",\n  \"iters\": {iters}");
    doc.push_str(",\n  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        doc.push_str(if i == 0 { "\n    " } else { ",\n    " });
        doc.push_str("{\"name\": ");
        json::write_str(&mut doc, s.name);
        let _ = write!(
            doc,
            ", \"median_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
            json::millis(s.median_ms()),
            json::millis(s.samples[0]),
            json::millis(s.samples[s.samples.len() - 1]),
        );
    }
    doc.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
