//! Whole-pipeline timing harness with a CI-friendly smoke mode.
//!
//! Times the three pipeline stages (CSD construction, semantic recognition,
//! pattern extraction) over N iterations and writes the per-stage medians to
//! `BENCH_pipeline.json` — a machine-readable document CI archives per
//! commit so the performance trajectory of the pipeline is diffable.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode: tiny dataset, 3 iterations, seconds of
//!   wall time. Anything else (or unset) runs the evaluation-scale dataset.
//! - `PM_BENCH_FULL=1` — splice mode: run the evaluation-scale dataset and
//!   splice the result into an existing report as a `"full"` section
//!   (leaving the smoke stages in place), or write a standalone document
//!   when none exists. This is how CI keeps *both* scales tracked in one
//!   per-commit file; it takes precedence over `PM_BENCH_SMOKE`.
//! - `PM_BENCH_OUT=<path>` — where to write the JSON (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

struct Stage {
    name: &'static str,
    /// Per-iteration wall times in milliseconds, sorted ascending.
    samples: Vec<f64>,
}

impl Stage {
    fn median_ms(&self) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            self.samples[n / 2]
        } else {
            (self.samples[n / 2 - 1] + self.samples[n / 2]) / 2.0
        }
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / 1e6
}

/// Times the three pipeline stages over `iters` iterations; samples come
/// back sorted ascending.
fn run_stages(ds: &Dataset, params: &MinerParams, iters: usize) -> [Stage; 3] {
    let stays = stay_points_of(&ds.trajectories);
    let mut build = Vec::new();
    let mut recognize = Vec::new();
    let mut extract = Vec::new();
    for i in 0..iters {
        let mut csd = None;
        build.push(time_ms(|| {
            csd = Some(CitySemanticDiagram::build(&ds.pois, &stays, params).expect("build"));
        }));
        let csd = csd.expect("built");
        let mut recognized = None;
        recognize.push(time_ms(|| {
            recognized =
                Some(recognize_all(&csd, ds.trajectories.clone(), params).expect("recognize"));
        }));
        let recognized = recognized.expect("recognized");
        let mut patterns = None;
        extract.push(time_ms(|| {
            patterns = Some(extract_patterns(&recognized, params).expect("extract"));
        }));
        eprintln!(
            "  iter {}: build {:.1} ms, recognize {:.1} ms, extract {:.1} ms ({} patterns)",
            i + 1,
            build[i],
            recognize[i],
            extract[i],
            patterns.expect("extracted").len()
        );
    }

    let mut stages = [
        Stage {
            name: "csd_build",
            samples: build,
        },
        Stage {
            name: "recognize",
            samples: recognize,
        },
        Stage {
            name: "extract",
            samples: extract,
        },
    ];
    for s in &mut stages {
        s.samples.sort_by(f64::total_cmp);
    }
    stages
}

/// Renders the stage array as a JSON fragment (no surrounding object).
fn stages_json(stages: &[Stage], indent: &str) -> String {
    let mut out = String::from("[");
    for (i, s) in stages.iter().enumerate() {
        let _ = write!(out, "{}{indent}  ", if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"name\": ");
        json::write_str(&mut out, s.name);
        let _ = write!(
            out,
            ", \"median_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
            json::millis(s.median_ms()),
            json::millis(s.samples[0]),
            json::millis(s.samples[s.samples.len() - 1]),
        );
    }
    let _ = write!(out, "\n{indent}]");
    out
}

fn main() {
    let env_on = |name: &str| std::env::var(name).is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());

    if env_on("PM_BENCH_FULL") {
        // Splice mode: evaluation-scale stages recorded *alongside* an
        // existing (typically smoke) report, mirroring how the serve and
        // ingest benches attach their sections.
        let (ds, params, iters) = (pm_bench::bench_dataset(), pm_bench::bench_params(), 5);
        eprintln!(
            "pipeline bench (full splice): {} POIs, {} trajectories, {iters} iteration(s)",
            ds.pois.len(),
            ds.trajectories.len()
        );
        let stages = run_stages(&ds, &params, iters);

        let mut section = String::from("{\n    \"schema\": \"pm-bench-pipeline-full/1\"");
        let _ = write!(section, ",\n    \"iters\": {iters}");
        let _ = write!(
            section,
            ",\n    \"stages\": {}",
            stages_json(&stages, "    ")
        );
        section.push_str("\n  }");

        let spliced = std::fs::read_to_string(&out_path)
            .ok()
            .filter(|doc| doc.ends_with("\n}\n") && !doc.contains("\"full\""))
            .map(|doc| {
                let body = doc.trim_end_matches("\n}\n");
                format!("{body},\n  \"full\": {section}\n}}\n")
            });
        let doc = spliced.unwrap_or_else(|| {
            format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"full\": {section}\n}}\n")
        });
        std::fs::write(&out_path, doc).expect("write bench report");
        eprintln!("wrote {out_path}");
        return;
    }

    let smoke = env_on("PM_BENCH_SMOKE");
    let (ds, params, iters, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            3,
            "smoke",
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            7,
            "full",
        )
    };
    eprintln!(
        "pipeline bench ({mode}): {} POIs, {} trajectories, {iters} iteration(s)",
        ds.pois.len(),
        ds.trajectories.len()
    );
    let stages = run_stages(&ds, &params, iters);

    let mut doc = String::from("{\n  \"schema\": \"pm-bench/1\"");
    let _ = write!(doc, ",\n  \"mode\": \"{mode}\"");
    let _ = write!(doc, ",\n  \"iters\": {iters}");
    let _ = write!(doc, ",\n  \"stages\": {}", stages_json(&stages, "  "));
    doc.push_str("\n}\n");

    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
