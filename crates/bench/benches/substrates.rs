//! Microbenchmarks of the substrate layers: spatial indexes, clustering
//! algorithms and PrefixSpan — the building blocks whose constants decide
//! whether the pipeline scales to a 2.2e7-journey corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pervasive_miner::cluster::{
    dbscan, mean_shift, DbscanParams, MeanShiftParams, Optics, OpticsParams,
};
use pervasive_miner::geo::{GridIndex, KdTree, LocalPoint, RTree};
use pervasive_miner::seqmine::{prefixspan, PrefixSpanParams};

/// Deterministic pseudo-random points: venue-like blobs over a city extent.
fn blobby_points(n: usize) -> Vec<LocalPoint> {
    let mut pts = Vec::with_capacity(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let n_blobs = (n / 100).max(1);
    for i in 0..n {
        let blob = i % n_blobs;
        let cx = (blob % 10) as f64 * 1_000.0;
        let cy = (blob / 10) as f64 * 1_000.0;
        pts.push(LocalPoint::new(cx + next() * 60.0, cy + next() * 60.0));
    }
    pts
}

fn spatial_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");
    for n in [1_000usize, 10_000] {
        let pts = blobby_points(n);
        group.bench_with_input(BenchmarkId::new("grid_build", n), &(), |b, _| {
            b.iter(|| GridIndex::build(&pts, 100.0))
        });
        let grid = GridIndex::build(&pts, 100.0);
        group.bench_with_input(BenchmarkId::new("grid_range_100m", n), &(), |b, _| {
            b.iter(|| grid.range(pts[n / 2], 100.0))
        });
        group.bench_with_input(BenchmarkId::new("kdtree_build", n), &(), |b, _| {
            b.iter(|| KdTree::build(&pts))
        });
        let kd = KdTree::build(&pts);
        group.bench_with_input(BenchmarkId::new("kdtree_knn5", n), &(), |b, _| {
            b.iter(|| kd.k_nearest(pts[n / 2], 5))
        });
        group.bench_with_input(BenchmarkId::new("rtree_build", n), &(), |b, _| {
            b.iter(|| RTree::build(&pts))
        });
        let rt = RTree::build(&pts);
        group.bench_with_input(BenchmarkId::new("rtree_circle_100m", n), &(), |b, _| {
            b.iter(|| rt.query_circle(pts[n / 2], 100.0))
        });
    }
    group.finish();
}

fn clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(20);
    for n in [1_000usize, 5_000] {
        let pts = blobby_points(n);
        group.bench_with_input(BenchmarkId::new("dbscan", n), &(), |b, _| {
            b.iter(|| dbscan(&pts, DbscanParams::new(80.0, 10)))
        });
        group.bench_with_input(BenchmarkId::new("optics_run", n), &(), |b, _| {
            b.iter(|| Optics::run(&pts, OpticsParams::new(1_000.0, 20)))
        });
        let optics = Optics::run(&pts, OpticsParams::new(1_000.0, 20));
        group.bench_with_input(BenchmarkId::new("optics_extract_auto", n), &(), |b, _| {
            b.iter(|| optics.extract_auto())
        });
        group.bench_with_input(BenchmarkId::new("mean_shift", n), &(), |b, _| {
            b.iter(|| mean_shift(&pts, MeanShiftParams::new(100.0)))
        });
    }
    group.finish();
}

fn sequence_mining(c: &mut Criterion) {
    // Category sequences shaped like the taxi corpus: mostly length 2,
    // some linked chains, alphabet of 15.
    let mut seqs: Vec<Vec<u32>> = Vec::new();
    let mut state = 12345u64;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for i in 0..20_000 {
        let len = if i % 5 == 0 { 4 } else { 2 };
        seqs.push((0..len).map(|_| next(15) as u32).collect());
    }
    c.bench_function("seqmine/prefixspan_20k", |b| {
        b.iter(|| prefixspan(&seqs, PrefixSpanParams::new(50, 2, 5)))
    });
}

criterion_group!(benches, spatial_indexes, clustering, sequence_mining);
criterion_main!(benches);
