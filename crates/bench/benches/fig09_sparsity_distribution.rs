//! Fig. 9: frequency distribution of patterns' spatial sparsity for all six
//! approaches, with the legend numbers (avg ss / #patterns / coverage).

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::{figures, report, run_all};
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn regenerate() {
    let ds = bench_dataset();
    let results = run_all(&ds, &bench_params(), &BaselineParams::default()).expect("valid params");
    println!("\n{}", report::render_fig9(&figures::fig9(&results)));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    c.bench_function("fig09/csd_pm_extraction", |b| {
        b.iter(|| {
            pervasive_miner::eval::run_approach(Approach::CsdPm, &recognized, &params, &baseline)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
