//! Query-service latency harness with a CI-friendly smoke mode.
//!
//! Mines an artifact, serves it over a real loopback socket, and times
//! complete HTTP round-trips (connect, request, response) against the three
//! read endpoints. Medians land in the `"serve"` section of
//! `BENCH_pipeline.json`: when the pipeline bench already wrote that file
//! this bench splices its section in, so one JSON document carries both the
//! offline and the online performance trajectory.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode: tiny dataset, 25 requests per
//!   endpoint. Anything else (or unset) runs the evaluation-scale dataset
//!   with 200 requests per endpoint.
//! - `PM_BENCH_OUT=<path>` — the JSON to write or splice into (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use pervasive_miner::serve::{client, ServeConfig, Server, Snapshot};
use pervasive_miner::store::Artifact;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

struct Endpoint {
    name: &'static str,
    target: String,
    /// Per-request round-trip times in milliseconds, sorted ascending.
    samples: Vec<f64>,
}

fn median_ms(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn mine_artifact(ds: &Dataset, params: &MinerParams) -> Artifact {
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), params).expect("recognize");
    let patterns = extract_patterns(&recognized, params).expect("extract");
    Artifact::new(csd, patterns, *params)
}

fn measure(addr: SocketAddr, endpoints: &mut [Endpoint], requests: usize) {
    for ep in endpoints.iter_mut() {
        for _ in 0..requests {
            let start = Instant::now();
            let (status, _body) = client::get(addr, &ep.target).expect("request");
            let elapsed = start.elapsed().as_nanos() as f64 / 1e6;
            assert_eq!(status, 200, "{} must answer 200", ep.target);
            ep.samples.push(elapsed);
        }
        ep.samples.sort_by(f64::total_cmp);
    }
}

/// Renders the `"serve"` section body (without a leading key).
fn section_json(mode: &str, requests: usize, endpoints: &[Endpoint]) -> String {
    let mut doc = String::from("{\n    \"schema\": \"pm-bench-serve/1\"");
    let _ = write!(doc, ",\n    \"mode\": \"{mode}\"");
    let _ = write!(doc, ",\n    \"requests\": {requests}");
    doc.push_str(",\n    \"endpoints\": [");
    for (i, ep) in endpoints.iter().enumerate() {
        doc.push_str(if i == 0 { "\n      " } else { ",\n      " });
        doc.push_str("{\"name\": ");
        json::write_str(&mut doc, ep.name);
        let _ = write!(
            doc,
            ", \"median_ms\": {}, \"min_ms\": {}, \"max_ms\": {}}}",
            json::millis(median_ms(&ep.samples)),
            json::millis(ep.samples[0]),
            json::millis(ep.samples[ep.samples.len() - 1]),
        );
    }
    doc.push_str("\n    ]\n  }");
    doc
}

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, requests, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            25,
            "smoke",
        )
    } else {
        (
            pm_bench::bench_dataset(),
            pm_bench::bench_params(),
            200,
            "full",
        )
    };
    eprintln!(
        "serve bench ({mode}): {} POIs, {} trajectories, {requests} request(s) per endpoint",
        ds.pois.len(),
        ds.trajectories.len()
    );

    let artifact = mine_artifact(&ds, &params);
    eprintln!("  artifact: {}", artifact.describe());
    let center = artifact
        .csd
        .units()
        .first()
        .map(|u| u.center)
        .expect("bench city must yield at least one unit");
    let snapshot = Arc::new(Snapshot::new(artifact).expect("snapshot"));
    let server = Server::bind(
        "127.0.0.1:0",
        snapshot,
        ServeConfig::default(),
        pervasive_miner::obs::Obs::noop(),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let thread = std::thread::spawn(move || server.run());

    let mut endpoints = [
        Endpoint {
            name: "healthz",
            target: "/healthz".to_string(),
            samples: Vec::new(),
        },
        Endpoint {
            name: "semantic",
            target: format!("/v1/semantic?x={}&y={}", center.x, center.y),
            samples: Vec::new(),
        },
        Endpoint {
            name: "patterns",
            target: "/v1/patterns?limit=10".to_string(),
            samples: Vec::new(),
        },
    ];
    measure(addr, &mut endpoints, requests);
    handle.shutdown();
    thread.join().expect("server thread").expect("serve");

    for ep in &endpoints {
        eprintln!(
            "  {:<10} median {:.3} ms  min {:.3} ms  max {:.3} ms",
            ep.name,
            median_ms(&ep.samples),
            ep.samples[0],
            ep.samples[ep.samples.len() - 1],
        );
    }

    let section = section_json(mode, requests, &endpoints);
    // Splice into the pipeline bench's report when one is present and does
    // not already carry a serve section; otherwise write a standalone
    // document so the bench works in isolation too.
    let spliced = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|doc| doc.ends_with("\n  ]\n}\n") && !doc.contains("\"serve\""))
        .map(|doc| {
            let body = doc.trim_end_matches("\n}\n");
            format!("{body},\n  \"serve\": {section}\n}}\n")
        });
    let doc = spliced.unwrap_or_else(|| {
        format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"serve\": {section}\n}}\n")
    });
    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
