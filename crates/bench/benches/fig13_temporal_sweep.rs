//! Fig. 13: the four metrics versus the temporal constraint delta_t.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::{figures, report};
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn regenerate() {
    let ds = bench_dataset();
    let params = bench_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    let points =
        figures::fig13_temporal_sweep(&recognized, &params, &baseline, &[15, 30, 45, 60, 75])
            .expect("valid params");
    println!(
        "\n{}",
        report::render_sweep(
            "Fig. 13 — metrics vs temporal constraint delta_t (minutes)",
            "delta_t",
            &points
        )
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let baseline = BaselineParams::default();
    let recognized = Recognized::compute(&ds, &params, &baseline).expect("valid params");
    c.bench_function("fig13/sweep_one_delta_t", |b| {
        b.iter(|| {
            pervasive_miner::eval::run_approach(
                Approach::CsdPm,
                &recognized,
                &params.with_delta_t(30 * 60),
                &baseline,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
