//! Table 3: POI category statistics of the generated city.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::figures;
use pervasive_miner::synth::poi::generate_pois;
use pm_bench::{bench_dataset, timing_dataset};

fn regenerate() {
    let ds = bench_dataset();
    println!(
        "\n{}",
        pervasive_miner::eval::report::render_table3(&figures::table3(&ds))
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    c.bench_function("table3/generate_pois", |b| {
        b.iter(|| generate_pois(&ds.city))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
