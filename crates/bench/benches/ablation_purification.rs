//! Ablation: what do semantic purification (Algorithm 2) and unit merging
//! buy? Runs CSD-PM with each construction step disabled — the design
//! choices §4.1 motivates, quantified.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::core::construct::ConstructionOptions;
use pervasive_miner::core::metrics::summarize;
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::prelude::*;
use pm_bench::{bench_dataset, bench_params, timing_dataset, timing_params};

fn run_variant(ds: &Dataset, params: &MinerParams, options: ConstructionOptions) -> String {
    let stays = stay_points_of(&ds.trajectories);
    let csd =
        CitySemanticDiagram::build_with_options(&ds.pois, &stays, params, options).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories.clone(), params).expect("recognize");
    let patterns = extract_patterns(&recognized, params).expect("extract");
    let s = summarize(&patterns);
    format!(
        "units={:<5} purity={:>5.1}%  n={:<4} cov={:<7} ss={:<7.2} sc={:.4}",
        csd.stats().n_units,
        csd.stats().purity * 100.0,
        s.n_patterns,
        s.coverage,
        s.avg_sparsity,
        s.avg_consistency
    )
}

fn regenerate() {
    let ds = bench_dataset();
    let params = bench_params();
    println!("\nAblation — CSD construction steps (CSD-PM pipeline)");
    println!(
        "  full construction        {}",
        run_variant(
            &ds,
            &params,
            ConstructionOptions {
                purify: true,
                merge: true
            }
        )
    );
    println!(
        "  no purification          {}",
        run_variant(
            &ds,
            &params,
            ConstructionOptions {
                purify: false,
                merge: true
            }
        )
    );
    println!(
        "  no merging               {}",
        run_variant(
            &ds,
            &params,
            ConstructionOptions {
                purify: true,
                merge: false
            }
        )
    );
    println!(
        "  neither                  {}",
        run_variant(
            &ds,
            &params,
            ConstructionOptions {
                purify: false,
                merge: false
            }
        )
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let params = timing_params();
    let stays = stay_points_of(&ds.trajectories);
    c.bench_function("ablation/purify_only", |b| {
        b.iter(|| {
            CitySemanticDiagram::build_with_options(
                &ds.pois,
                &stays,
                &params,
                ConstructionOptions {
                    purify: true,
                    merge: false,
                },
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
