//! Table 1: top check-in topics under the New-York-like and Tokyo-like
//! sharing profiles — the *semantic bias* evidence.

use criterion::{criterion_group, criterion_main, Criterion};
use pervasive_miner::eval::figures;
use pervasive_miner::synth::checkin::{generate_checkins, SharingProfile};
use pm_bench::{bench_dataset, timing_dataset, BENCH_SEED};

fn regenerate() {
    let ds = bench_dataset();
    let tables = figures::table1(&ds, BENCH_SEED, 10);
    println!(
        "\n{}",
        pervasive_miner::eval::report::render_table1(&tables)
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let ds = timing_dataset();
    let profile = SharingProfile::tokyo();
    c.bench_function("table1/generate_checkins", |b| {
        b.iter(|| generate_checkins(&ds.corpus, &profile, BENCH_SEED))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
