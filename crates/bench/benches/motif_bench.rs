//! Mobility-motif mining benchmark with a CI-friendly smoke mode.
//!
//! Builds a CSD, then times the batch motif path: every trajectory's stays
//! bucket into per-day unit-transition graphs, each graph canonicalizes
//! (exact permutation canonicalization, ≤8 nodes), and the population
//! distribution over canonical forms aggregates into the ranked motif
//! table — the same computation behind `pervasive-miner motifs`. The
//! timing and class counts land in the `"motifs"` section of
//! `BENCH_pipeline.json`, spliced next to the pipeline, serve, and ingest
//! sections.
//!
//! Knobs (environment):
//! - `PM_BENCH_SMOKE=1` — quick mode on the tiny dataset. Anything else
//!   (or unset) mines the evaluation-scale dataset.
//! - `PM_BENCH_OUT=<path>` — the JSON to write or splice into (default:
//!   `BENCH_pipeline.json` in the current directory).

use pervasive_miner::cluster::GaussianKernel;
use pervasive_miner::core::recognize::{recognize_stay_point_unit, stay_points_of};
use pervasive_miner::motif::{DayGraphBuilder, MotifAggregator};
use pervasive_miner::obs::json;
use pervasive_miner::prelude::*;
use pervasive_miner::stream::DAY_SECS;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let smoke = std::env::var("PM_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("PM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let (ds, params, mode) = if smoke {
        (
            pm_bench::timing_dataset(),
            pm_bench::timing_params(),
            "smoke",
        )
    } else {
        (pm_bench::bench_dataset(), pm_bench::bench_params(), "full")
    };
    eprintln!(
        "motif bench ({mode}): {} trajectories over {} POIs",
        ds.trajectories.len(),
        ds.pois.len()
    );

    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let kernel = GaussianKernel::new(params.r3sigma);

    // The measured region: recognition, day bucketing, canonicalization,
    // and aggregation — everything downstream of an already-built CSD.
    let started = Instant::now();
    let mut agg = MotifAggregator::new();
    for traj in &ds.trajectories {
        let mut current: Option<(i64, DayGraphBuilder)> = None;
        for sp in &traj.stays {
            let (unit, _tags, primary) = recognize_stay_point_unit(&csd, &kernel, sp.pos);
            let Some(unit) = unit else {
                continue;
            };
            let day = sp.time.div_euclid(DAY_SECS);
            match &mut current {
                Some((d, builder)) if *d == day => builder.visit(unit as u64, primary),
                slot => {
                    if let Some((_, builder)) = slot.take() {
                        agg.record(&builder.finish());
                    }
                    let mut builder = DayGraphBuilder::new();
                    builder.visit(unit as u64, primary);
                    *slot = Some((day, builder));
                }
            }
        }
        if let Some((_, builder)) = current {
            agg.record(&builder.finish());
        }
    }
    let table = agg.table();
    let build_ms = started.elapsed().as_nanos() as f64 / 1e6;

    assert!(table.total_days > 0, "the corpus must close user-days");
    assert!(!table.classes.is_empty(), "the corpus must yield classes");
    let days_per_sec = if build_ms > 0.0 {
        (table.total_days as f64 * 1e3 / build_ms).round()
    } else {
        0.0
    };
    eprintln!(
        "  {} user-days -> {} classes ({} oversize) in {:.1} ms, {days_per_sec:.0} days/s",
        table.total_days,
        table.classes.len(),
        table.oversize_days,
        build_ms
    );

    let mut section = String::from("{\n    \"schema\": \"pm-bench-motifs/1\"");
    let _ = write!(section, ",\n    \"mode\": \"{mode}\"");
    let _ = write!(
        section,
        ",\n    \"trajectories\": {}",
        ds.trajectories.len()
    );
    let _ = write!(section, ",\n    \"user_days\": {}", table.total_days);
    let _ = write!(section, ",\n    \"oversize_days\": {}", table.oversize_days);
    let _ = write!(section, ",\n    \"classes\": {}", table.classes.len());
    let _ = write!(section, ",\n    \"build_ms\": {}", json::millis(build_ms));
    let _ = write!(section, ",\n    \"days_per_sec\": {days_per_sec:.0}");
    section.push_str("\n  }");

    // Splice into the pipeline bench's report when one is present and does
    // not already carry a motifs section; otherwise write a standalone
    // document so the bench works in isolation too.
    let spliced = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|doc| doc.ends_with("\n}\n") && !doc.contains("\"motifs\""))
        .map(|doc| {
            let body = doc.trim_end_matches("\n}\n");
            format!("{body},\n  \"motifs\": {section}\n}}\n")
        });
    let doc = spliced.unwrap_or_else(|| {
        format!("{{\n  \"schema\": \"pm-bench/1\",\n  \"motifs\": {section}\n}}\n")
    });
    std::fs::write(&out_path, doc).expect("write bench report");
    eprintln!("wrote {out_path}");
}
