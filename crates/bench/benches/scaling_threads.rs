//! Thread scaling of the data-parallel pipeline stages.
//!
//! Every stage is bit-deterministic at any thread count (see
//! `tests/parallel_parity.rs`), so this bench measures pure speedup: the
//! same work, the same bytes out, spread over 1/2/4/8 workers plus `0`
//! (auto = available_parallelism). On a multi-core host the CSD build over
//! `CityConfig::small` — dominated by the batch KDE and the clustering
//! neighbourhood precompute — is the headline number; recognition and
//! extraction scale with their per-trajectory / per-pattern fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::prelude::*;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 0];

fn label(threads: usize) -> String {
    match threads {
        0 => "auto".into(),
        t => t.to_string(),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);

    let ds = Dataset::generate(&CityConfig::small(7));
    let stays = stay_points_of(&ds.trajectories);

    for threads in THREAD_COUNTS {
        let params = MinerParams::default().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("csd_build_small", label(threads)),
            &(),
            |b, _| b.iter(|| CitySemanticDiagram::build(&ds.pois, &stays, &params)),
        );
    }

    let params_serial = MinerParams::default().with_threads(1);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params_serial).expect("build");
    for threads in THREAD_COUNTS {
        let params = MinerParams::default().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("recognize_small", label(threads)),
            &(),
            |b, _| b.iter(|| recognize_all(&csd, ds.trajectories.clone(), &params)),
        );
    }

    let recognized =
        recognize_all(&csd, ds.trajectories.clone(), &params_serial).expect("recognize");
    for threads in THREAD_COUNTS {
        let params = MinerParams::default().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("extract_small", label(threads)),
            &(),
            |b, _| b.iter(|| extract_patterns(&recognized, &params)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
