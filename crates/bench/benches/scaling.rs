//! Runtime scaling of the three pipeline stages versus corpus size — the
//! systems-performance view the paper omits but a release needs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pervasive_miner::core::recognize::stay_points_of;
use pervasive_miner::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for passengers in [200usize, 400, 800] {
        let cfg = CityConfig {
            n_passengers: passengers,
            ..CityConfig::tiny(7)
        };
        let ds = Dataset::generate(&cfg);
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);

        group.bench_with_input(BenchmarkId::new("csd_build", passengers), &(), |b, _| {
            b.iter(|| CitySemanticDiagram::build(&ds.pois, &stays, &params))
        });
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        group.bench_with_input(BenchmarkId::new("recognize", passengers), &(), |b, _| {
            b.iter(|| recognize_all(&csd, ds.trajectories.clone(), &params))
        });
        let recognized = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
        group.bench_with_input(BenchmarkId::new("extract", passengers), &(), |b, _| {
            b.iter(|| extract_patterns(&recognized, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
