//! Property-based tests for the clustering substrate.

use pm_cluster::{
    dbscan, kmeans, mean_shift, DbscanParams, GaussianKernel, KMeansParams, MeanShiftParams,
    Optics, OpticsParams,
};
use pm_geo::{GridIndex, LocalPoint};
use proptest::prelude::*;

fn local_point() -> impl Strategy<Value = LocalPoint> {
    (-1_000.0..1_000.0f64, -1_000.0..1_000.0f64).prop_map(|(x, y)| LocalPoint::new(x, y))
}

fn point_vec(max: usize) -> impl Strategy<Value = Vec<LocalPoint>> {
    prop::collection::vec(local_point(), 0..max)
}

/// Overwrites points selected by `(index, shape)` codes with non-finite
/// coordinates, returning the corrupted set plus the finite survivors.
fn inject_non_finite(
    mut points: Vec<LocalPoint>,
    picks: &[(usize, u8)],
) -> (Vec<LocalPoint>, Vec<LocalPoint>, Vec<usize>) {
    if !points.is_empty() {
        for &(slot, shape) in picks {
            let i = slot % points.len();
            points[i] = match shape % 5 {
                0 => LocalPoint::new(f64::NAN, points[i].y),
                1 => LocalPoint::new(points[i].x, f64::NAN),
                2 => LocalPoint::new(f64::INFINITY, points[i].y),
                3 => LocalPoint::new(f64::NEG_INFINITY, f64::INFINITY),
                _ => LocalPoint::new(f64::NAN, f64::NAN),
            };
        }
    }
    let mut finite = Vec::new();
    let mut finite_idx = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if p.x.is_finite() && p.y.is_finite() {
            finite.push(*p);
            finite_idx.push(i);
        }
    }
    (points, finite, finite_idx)
}

proptest! {
    /// Every DBSCAN cluster member is density-reachable: each clustered
    /// point is a core point itself or lies within eps of a core point of
    /// the same cluster. (Clusters can be smaller than min_pts when border
    /// points are claimed by a competing cluster, so we do not assert on
    /// size.)
    #[test]
    fn dbscan_clusters_are_connected(
        points in point_vec(120),
        eps in 10.0..200.0f64,
        min_pts in 2usize..6,
    ) {
        let c = dbscan(&points, DbscanParams::new(eps, min_pts));
        prop_assert_eq!(c.labels.len(), points.len());
        let idx = GridIndex::build(&points, eps);
        let is_core = |i: usize| idx.count_in_range(points[i], eps) >= min_pts;
        for cluster in c.clusters() {
            prop_assert!(!cluster.is_empty());
            prop_assert!(cluster.iter().any(|&i| is_core(i)),
                "cluster without a core point");
            for &i in &cluster {
                let reachable = is_core(i) || cluster.iter().any(|&j| {
                    j != i && is_core(j) && points[i].distance(&points[j]) <= eps
                });
                prop_assert!(reachable, "point {i} not density-reachable in its cluster");
            }
        }
    }

    /// Noise points are never core points.
    #[test]
    fn dbscan_noise_points_are_not_core(
        points in point_vec(100),
        eps in 10.0..150.0f64,
        min_pts in 2usize..6,
    ) {
        let c = dbscan(&points, DbscanParams::new(eps, min_pts));
        let idx = GridIndex::build(&points, eps);
        for (i, label) in c.labels.iter().enumerate() {
            if label.is_none() {
                prop_assert!(idx.count_in_range(points[i], eps) < min_pts,
                    "noise point {i} is actually core");
            }
        }
    }

    /// OPTICS visit order is a permutation, and reachability values are
    /// positive (or infinite for component starters).
    #[test]
    fn optics_order_is_permutation(
        points in point_vec(80),
        max_eps in 50.0..500.0f64,
        min_pts in 2usize..6,
    ) {
        let o = Optics::run(&points, OpticsParams::new(max_eps, min_pts));
        let mut order = o.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..points.len()).collect::<Vec<_>>());
        for &r in o.reachability() {
            prop_assert!(r > 0.0 || r.is_infinite() || r == 0.0);
            if r.is_finite() {
                prop_assert!(r <= max_eps + 1e-9, "reachability {r} beyond max_eps {max_eps}");
            }
        }
    }

    /// OPTICS extraction at a threshold never yields clusters smaller than
    /// min_pts.
    #[test]
    fn optics_extraction_respects_min_pts(
        points in point_vec(80),
        max_eps in 50.0..500.0f64,
        min_pts in 2usize..6,
        frac in 0.1..1.0f64,
    ) {
        let o = Optics::run(&points, OpticsParams::new(max_eps, min_pts));
        let c = o.extract_at(max_eps * frac);
        for cluster in c.clusters() {
            prop_assert!(cluster.len() >= min_pts);
        }
    }

    /// Mean shift labels every point and modes are within the convex hull
    /// bounding box of the input.
    #[test]
    fn mean_shift_total_assignment(
        points in point_vec(60),
        bw in 20.0..300.0f64,
    ) {
        let r = mean_shift(&points, MeanShiftParams::new(bw));
        prop_assert_eq!(r.clustering.labels.len(), points.len());
        if points.is_empty() {
            prop_assert_eq!(r.clustering.n_clusters, 0);
        } else {
            prop_assert!(r.clustering.labels.iter().all(Option::is_some));
            let bb = pm_geo::BoundingBox::enclosing(&points).unwrap().inflate(1e-6);
            for m in &r.modes {
                prop_assert!(bb.contains(*m), "mode {m} escaped the data extent");
            }
        }
    }

    /// DBSCAN on corrupted input never panics, marks every non-finite point
    /// as noise, and labels the finite points exactly as a clean run on the
    /// finite subset would.
    #[test]
    fn dbscan_tolerates_non_finite_points(
        points in point_vec(80),
        picks in prop::collection::vec((0usize..1_000, 0u8..8), 0..10),
        eps in 10.0..200.0f64,
        min_pts in 1usize..6,
    ) {
        let (corrupt, finite, finite_idx) = inject_non_finite(points, &picks);
        let c = dbscan(&corrupt, DbscanParams::new(eps, min_pts));
        prop_assert_eq!(c.labels.len(), corrupt.len());
        let clean = dbscan(&finite, DbscanParams::new(eps, min_pts));
        prop_assert_eq!(c.n_clusters, clean.n_clusters);
        let mut finite_labels = Vec::new();
        for (i, label) in c.labels.iter().enumerate() {
            if finite_idx.contains(&i) {
                finite_labels.push(*label);
            } else {
                prop_assert!(label.is_none(), "non-finite point {i} was clustered");
            }
        }
        prop_assert_eq!(finite_labels, clean.labels);
    }

    /// OPTICS on corrupted input keeps its permutation invariant, never
    /// clusters a non-finite point, and gives finite points the same
    /// auto-extracted labels as a clean run on the finite subset.
    #[test]
    fn optics_tolerates_non_finite_points(
        points in point_vec(60),
        picks in prop::collection::vec((0usize..1_000, 0u8..8), 0..8),
        max_eps in 50.0..500.0f64,
        min_pts in 1usize..6,
    ) {
        let (corrupt, finite, finite_idx) = inject_non_finite(points, &picks);
        let o = Optics::run(&corrupt, OpticsParams::new(max_eps, min_pts));
        let mut order = o.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..corrupt.len()).collect::<Vec<_>>());
        let c = o.extract_auto();
        let clean = Optics::run(&finite, OpticsParams::new(max_eps, min_pts)).extract_auto();
        prop_assert_eq!(c.n_clusters, clean.n_clusters);
        let mut finite_labels = Vec::new();
        for (i, label) in c.labels.iter().enumerate() {
            if finite_idx.contains(&i) {
                finite_labels.push(*label);
            } else {
                prop_assert!(label.is_none(), "non-finite point {i} was clustered");
            }
        }
        prop_assert_eq!(finite_labels, clean.labels);
    }

    /// Mean shift on corrupted input labels every finite point, leaves every
    /// non-finite point unlabelled, and finds the same modes as a clean run.
    #[test]
    fn mean_shift_tolerates_non_finite_points(
        points in point_vec(50),
        picks in prop::collection::vec((0usize..1_000, 0u8..8), 0..8),
        bw in 20.0..300.0f64,
    ) {
        let (corrupt, finite, finite_idx) = inject_non_finite(points, &picks);
        let r = mean_shift(&corrupt, MeanShiftParams::new(bw));
        let clean = mean_shift(&finite, MeanShiftParams::new(bw));
        prop_assert_eq!(r.clustering.n_clusters, clean.clustering.n_clusters);
        prop_assert_eq!(&r.modes, &clean.modes);
        for m in &r.modes {
            prop_assert!(m.x.is_finite() && m.y.is_finite(), "non-finite mode {m}");
        }
        let mut finite_labels = Vec::new();
        for (i, label) in r.clustering.labels.iter().enumerate() {
            if finite_idx.contains(&i) {
                prop_assert!(label.is_some(), "finite point {i} lost its label");
                finite_labels.push(*label);
            } else {
                prop_assert!(label.is_none(), "non-finite point {i} was labelled");
            }
        }
        prop_assert_eq!(finite_labels, clean.clustering.labels);
    }

    /// K-Means on corrupted input keeps centroids finite and partitions the
    /// finite points exactly as a clean run with the same seed.
    #[test]
    fn kmeans_tolerates_non_finite_points(
        points in point_vec(50),
        picks in prop::collection::vec((0usize..1_000, 0u8..8), 0..8),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let (corrupt, finite, finite_idx) = inject_non_finite(points, &picks);
        let r = kmeans(&corrupt, KMeansParams::new(k).with_seed(seed));
        let clean = kmeans(&finite, KMeansParams::new(k).with_seed(seed));
        prop_assert_eq!(&r.centroids, &clean.centroids);
        for c in &r.centroids {
            prop_assert!(c.x.is_finite() && c.y.is_finite(), "non-finite centroid {c}");
        }
        let mut finite_labels = Vec::new();
        for (i, label) in r.clustering.labels.iter().enumerate() {
            if finite_idx.contains(&i) {
                finite_labels.push(*label);
            } else {
                prop_assert!(label.is_none(), "non-finite point {i} was labelled");
            }
        }
        prop_assert_eq!(finite_labels, clean.clustering.labels);
    }

    /// K-Means assigns every point to its nearest centroid.
    #[test]
    fn kmeans_assignment_is_nearest(
        points in point_vec(60),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let r = kmeans(&points, KMeansParams::new(k).with_seed(seed));
        for (i, label) in r.clustering.labels.iter().enumerate() {
            let Some(l) = label else { continue };
            let own = points[i].distance_sq(&r.centroids[*l]);
            for c in &r.centroids {
                prop_assert!(own <= points[i].distance_sq(c) + 1e-9);
            }
        }
    }

    /// The Gaussian coefficient of Eq. 2 is bounded by its peak and vanishes
    /// past the cut-off.
    #[test]
    fn kernel_bounds(d in 0.0..500.0f64, r3 in 1.0..300.0f64) {
        let k = GaussianKernel::new(r3);
        let v = k.coeff_at(d);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= k.coeff_at(0.0) + 1e-15);
        if d >= r3 {
            prop_assert_eq!(v, 0.0);
        }
    }
}
