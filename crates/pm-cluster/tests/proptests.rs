//! Property-based tests for the clustering substrate.

use pm_cluster::{
    dbscan, kmeans, mean_shift, DbscanParams, GaussianKernel, KMeansParams, MeanShiftParams,
    Optics, OpticsParams,
};
use pm_geo::{GridIndex, LocalPoint};
use proptest::prelude::*;

fn local_point() -> impl Strategy<Value = LocalPoint> {
    (-1_000.0..1_000.0f64, -1_000.0..1_000.0f64).prop_map(|(x, y)| LocalPoint::new(x, y))
}

fn point_vec(max: usize) -> impl Strategy<Value = Vec<LocalPoint>> {
    prop::collection::vec(local_point(), 0..max)
}

proptest! {
    /// Every DBSCAN cluster member is density-reachable: each clustered
    /// point is a core point itself or lies within eps of a core point of
    /// the same cluster. (Clusters can be smaller than min_pts when border
    /// points are claimed by a competing cluster, so we do not assert on
    /// size.)
    #[test]
    fn dbscan_clusters_are_connected(
        points in point_vec(120),
        eps in 10.0..200.0f64,
        min_pts in 2usize..6,
    ) {
        let c = dbscan(&points, DbscanParams::new(eps, min_pts));
        prop_assert_eq!(c.labels.len(), points.len());
        let idx = GridIndex::build(&points, eps);
        let is_core = |i: usize| idx.count_in_range(points[i], eps) >= min_pts;
        for cluster in c.clusters() {
            prop_assert!(!cluster.is_empty());
            prop_assert!(cluster.iter().any(|&i| is_core(i)),
                "cluster without a core point");
            for &i in &cluster {
                let reachable = is_core(i) || cluster.iter().any(|&j| {
                    j != i && is_core(j) && points[i].distance(&points[j]) <= eps
                });
                prop_assert!(reachable, "point {i} not density-reachable in its cluster");
            }
        }
    }

    /// Noise points are never core points.
    #[test]
    fn dbscan_noise_points_are_not_core(
        points in point_vec(100),
        eps in 10.0..150.0f64,
        min_pts in 2usize..6,
    ) {
        let c = dbscan(&points, DbscanParams::new(eps, min_pts));
        let idx = GridIndex::build(&points, eps);
        for (i, label) in c.labels.iter().enumerate() {
            if label.is_none() {
                prop_assert!(idx.count_in_range(points[i], eps) < min_pts,
                    "noise point {i} is actually core");
            }
        }
    }

    /// OPTICS visit order is a permutation, and reachability values are
    /// positive (or infinite for component starters).
    #[test]
    fn optics_order_is_permutation(
        points in point_vec(80),
        max_eps in 50.0..500.0f64,
        min_pts in 2usize..6,
    ) {
        let o = Optics::run(&points, OpticsParams::new(max_eps, min_pts));
        let mut order = o.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..points.len()).collect::<Vec<_>>());
        for &r in o.reachability() {
            prop_assert!(r > 0.0 || r.is_infinite() || r == 0.0);
            if r.is_finite() {
                prop_assert!(r <= max_eps + 1e-9, "reachability {r} beyond max_eps {max_eps}");
            }
        }
    }

    /// OPTICS extraction at a threshold never yields clusters smaller than
    /// min_pts.
    #[test]
    fn optics_extraction_respects_min_pts(
        points in point_vec(80),
        max_eps in 50.0..500.0f64,
        min_pts in 2usize..6,
        frac in 0.1..1.0f64,
    ) {
        let o = Optics::run(&points, OpticsParams::new(max_eps, min_pts));
        let c = o.extract_at(max_eps * frac);
        for cluster in c.clusters() {
            prop_assert!(cluster.len() >= min_pts);
        }
    }

    /// Mean shift labels every point and modes are within the convex hull
    /// bounding box of the input.
    #[test]
    fn mean_shift_total_assignment(
        points in point_vec(60),
        bw in 20.0..300.0f64,
    ) {
        let r = mean_shift(&points, MeanShiftParams::new(bw));
        prop_assert_eq!(r.clustering.labels.len(), points.len());
        if points.is_empty() {
            prop_assert_eq!(r.clustering.n_clusters, 0);
        } else {
            prop_assert!(r.clustering.labels.iter().all(Option::is_some));
            let bb = pm_geo::BoundingBox::enclosing(&points).unwrap().inflate(1e-6);
            for m in &r.modes {
                prop_assert!(bb.contains(*m), "mode {m} escaped the data extent");
            }
        }
    }

    /// K-Means assigns every point to its nearest centroid.
    #[test]
    fn kmeans_assignment_is_nearest(
        points in point_vec(60),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let r = kmeans(&points, KMeansParams::new(k).with_seed(seed));
        for (i, label) in r.clustering.labels.iter().enumerate() {
            let Some(l) = label else { continue };
            let own = points[i].distance_sq(&r.centroids[*l]);
            for c in &r.centroids {
                prop_assert!(own <= points[i].distance_sq(c) + 1e-9);
            }
        }
    }

    /// The Gaussian coefficient of Eq. 2 is bounded by its peak and vanishes
    /// past the cut-off.
    #[test]
    fn kernel_bounds(d in 0.0..500.0f64, r3 in 1.0..300.0f64) {
        let k = GaussianKernel::new(r3);
        let v = k.coeff_at(d);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= k.coeff_at(0.0) + 1e-15);
        if d >= r3 {
            prop_assert_eq!(v, 0.0);
        }
    }
}
