//! K-Means with k-means++ seeding.
//!
//! Ref \[21\]'s hybrid semantic-annotation algorithm "adopts clustering
//! algorithms (e.g., DB-Scan and K-means) to detect hot regions"; we provide
//! K-Means so the ROI baseline family is complete and so tests can compare
//! partitioning strategies.

use crate::Clustering;
use pm_geo::LocalPoint;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// K-Means parameters.
#[derive(Clone, Copy, Debug)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement, in meters.
    pub tol: f64,
    /// RNG seed for k-means++ initialization (deterministic runs).
    pub seed: u64,
}

impl KMeansParams {
    /// Creates a parameter set with sensible defaults (100 iterations,
    /// 1e-4 m tolerance, seed 0).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            max_iter: 100,
            tol: 1e-4,
            seed: 0,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Flat clustering; every finite point is assigned, while points with
    /// NaN or infinite coordinates are labelled `None`.
    pub clustering: Clustering,
    /// Final centroids, aligned with cluster labels. May hold fewer than
    /// `k` entries when the input has fewer than `k` points.
    pub centroids: Vec<LocalPoint>,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f64,
}

/// Runs Lloyd's algorithm with k-means++ seeding.
///
/// Points with NaN or infinite coordinates would collapse every centroid to
/// NaN, so they are excluded (label `None`) and the finite points partition
/// as if the corrupt ones were absent.
pub fn kmeans(points: &[LocalPoint], params: KMeansParams) -> KMeansResult {
    if let Some((subset, original)) = crate::finite_subset(points) {
        let sub = kmeans(&subset, params);
        let mut labels = vec![None; points.len()];
        for (k, &i) in original.iter().enumerate() {
            labels[i] = sub.clustering.labels[k];
        }
        return KMeansResult {
            clustering: Clustering {
                labels,
                n_clusters: sub.clustering.n_clusters,
            },
            centroids: sub.centroids,
            inertia: sub.inertia,
        };
    }

    let n = points.len();
    let k = params.k.min(n);
    if k == 0 {
        return KMeansResult {
            clustering: Clustering {
                labels: vec![None; n],
                n_clusters: 0,
            },
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }

    let mut centroids = plus_plus_init(points, k, params.seed);
    let mut labels = vec![0usize; n];

    for _ in 0..params.max_iter {
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            labels[i] = nearest_centroid(p, &centroids);
        }
        // Update step.
        let mut sums = vec![LocalPoint::ORIGIN; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            sums[labels[i]] = sums[labels[i]] + *p;
            counts[labels[i]] += 1;
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // keep the old centroid for empty clusters
            }
            let next = sums[c] / counts[c] as f64;
            movement += next.distance(&centroids[c]);
            centroids[c] = next;
        }
        if movement < params.tol {
            break;
        }
    }

    // Final assignment + inertia.
    let mut inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        labels[i] = nearest_centroid(p, &centroids);
        inertia += p.distance_sq(&centroids[labels[i]]);
    }

    KMeansResult {
        clustering: Clustering {
            labels: labels.into_iter().map(Some).collect(),
            n_clusters: k,
        },
        centroids,
        inertia,
    }
}

fn nearest_centroid(p: &LocalPoint, centroids: &[LocalPoint]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, m) in centroids.iter().enumerate() {
        let d = p.distance_sq(m);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent ones sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn plus_plus_init(points: &[LocalPoint], k: usize, seed: u64) -> Vec<LocalPoint> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut d_sq: Vec<f64> = points
        .iter()
        .map(|p| p.distance_sq(&centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d_sq.iter().sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with existing centroids.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d_sq.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            points[chosen]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            d_sq[i] = d_sq[i].min(p.distance_sq(&next));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<LocalPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963;
                let r = spread * (i as f64 / n as f64).sqrt();
                LocalPoint::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = blob(0.0, 0.0, 50, 20.0);
        pts.extend(blob(1_000.0, 0.0, 50, 20.0));
        let r = kmeans(&pts, KMeansParams::new(2));
        assert_eq!(r.clustering.n_clusters, 2);
        let l0 = r.clustering.labels[0];
        assert!(r.clustering.labels[..50].iter().all(|l| *l == l0));
        assert!(r.clustering.labels[50..].iter().all(|l| *l != l0));
        // Centroids near blob centers.
        let mut near_origin = false;
        let mut near_far = false;
        for c in &r.centroids {
            near_origin |= c.distance(&LocalPoint::ORIGIN) < 20.0;
            near_far |= c.distance(&LocalPoint::new(1_000.0, 0.0)) < 20.0;
        }
        assert!(near_origin && near_far);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let pts = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(10.0, 0.0)];
        let r = kmeans(&pts, KMeansParams::new(5));
        assert_eq!(r.clustering.n_clusters, 2);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn empty_input() {
        let r = kmeans(&[], KMeansParams::new(3));
        assert_eq!(r.clustering.n_clusters, 0);
        assert!(r.centroids.is_empty());
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(10.0, 0.0),
            LocalPoint::new(5.0, 9.0),
        ];
        let r = kmeans(&pts, KMeansParams::new(1));
        assert!(r.centroids[0].distance(&LocalPoint::new(5.0, 3.0)) < 1e-6);
    }

    #[test]
    fn non_finite_points_are_excluded() {
        let clean = blob(0.0, 0.0, 40, 30.0);
        let baseline = kmeans(&clean, KMeansParams::new(3).with_seed(9));

        let mut pts = clean.clone();
        pts.insert(0, LocalPoint::new(f64::NAN, f64::INFINITY));
        pts.push(LocalPoint::new(0.0, f64::NAN));
        let r = kmeans(&pts, KMeansParams::new(3).with_seed(9));

        assert!(r.clustering.labels[0].is_none());
        assert!(r.clustering.labels[pts.len() - 1].is_none());
        assert_eq!(r.centroids, baseline.centroids);
        assert!(r.inertia.is_finite());
        let finite_labels: Vec<_> = (0..pts.len())
            .filter(|&i| pts[i].x.is_finite() && pts[i].y.is_finite())
            .map(|i| r.clustering.labels[i])
            .collect();
        assert_eq!(finite_labels, baseline.clustering.labels);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blob(0.0, 0.0, 60, 50.0);
        let a = kmeans(&pts, KMeansParams::new(4).with_seed(42));
        let b = kmeans(&pts, KMeansParams::new(4).with_seed(42));
        assert_eq!(a.clustering.labels, b.clustering.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut pts = blob(0.0, 0.0, 30, 30.0);
        pts.extend(blob(300.0, 0.0, 30, 30.0));
        pts.extend(blob(0.0, 300.0, 30, 30.0));
        let i1 = kmeans(&pts, KMeansParams::new(1).with_seed(7)).inertia;
        let i3 = kmeans(&pts, KMeansParams::new(3).with_seed(7)).inertia;
        assert!(i3 < i1 * 0.5, "i1={i1} i3={i3}");
    }
}
