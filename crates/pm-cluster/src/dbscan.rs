//! DBSCAN density-based clustering (Ester et al. 1996).

use crate::neighborhoods::Neighborhoods;
use crate::Clustering;
use pm_geo::{GridIndex, LocalPoint};

/// DBSCAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct DbscanParams {
    /// Neighbourhood radius in meters.
    pub eps: f64,
    /// Minimum neighbourhood size (the point itself counts) for a core point.
    pub min_pts: usize,
    /// Worker threads for the neighbourhood precompute (`0` = all cores,
    /// `1` = serial). Has no effect on the labels produced.
    pub threads: usize,
}

impl DbscanParams {
    /// Creates a parameter set, validating `eps > 0` and `min_pts >= 1`.
    /// Runs serially; see [`Self::with_threads`].
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive, got {eps}"
        );
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Self {
            eps,
            min_pts,
            threads: 1,
        }
    }

    /// Spreads the range queries over `threads` workers (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Runs DBSCAN over `points`.
///
/// Core points have at least `min_pts` neighbours (self included) within
/// `eps`; clusters are the transitive closure of core-point adjacency plus
/// border points; everything else is noise. The implementation is the
/// standard seed-set expansion using a [`GridIndex`] for neighbourhood
/// queries, `O(n * q)` where `q` is the cost of a range query.
///
/// Points with NaN or infinite coordinates are labelled noise (`None`); the
/// finite points cluster exactly as they would without the corrupt ones.
pub fn dbscan(points: &[LocalPoint], params: DbscanParams) -> Clustering {
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;

    if let Some((subset, original)) = crate::finite_subset(points) {
        let sub = dbscan(&subset, params);
        let mut labels = vec![None; points.len()];
        for (k, &i) in original.iter().enumerate() {
            labels[i] = sub.labels[k];
        }
        return Clustering {
            labels,
            n_clusters: sub.n_clusters,
        };
    }

    let n = points.len();
    let mut labels = vec![UNVISITED; n];
    if n == 0 {
        return Clustering {
            labels: Vec::new(),
            n_clusters: 0,
        };
    }
    let index = GridIndex::build(points, params.eps.max(1e-9));

    // The seed-set expansion is sequential (labels depend on visit order),
    // but the O(n·q) range queries it issues are independent per point. With
    // more than one worker, compute every neighbourhood up front in
    // parallel into one flat CSR slab; each list is identical in content and
    // order to what `range_into` would yield lazily, so the labelling is
    // byte-identical. (The grid compares squared distances against eps²
    // internally — no `sqrt` anywhere on this path.)
    let hoods = Neighborhoods::precompute(&index, points, params.eps, params.threads);
    let neighbours_of = |i: usize, buf: &mut Vec<usize>| match &hoods {
        Some(h) => h.copy_into(i, buf),
        None => index.range_into(points[i], params.eps, buf),
    };

    let mut n_clusters = 0u32;
    let mut neighbours = Vec::new();
    let mut frontier_buf = Vec::new();

    for start in 0..n {
        if labels[start] != UNVISITED {
            continue;
        }
        neighbours_of(start, &mut neighbours);
        if neighbours.len() < params.min_pts {
            labels[start] = NOISE;
            continue;
        }
        // New cluster seeded at `start`; expand over density-reachable points.
        let cluster = n_clusters;
        n_clusters += 1;
        labels[start] = cluster;
        let mut frontier: Vec<usize> = neighbours.clone();
        while let Some(p) = frontier.pop() {
            if labels[p] == NOISE {
                labels[p] = cluster; // border point
                continue;
            }
            if labels[p] != UNVISITED {
                continue;
            }
            labels[p] = cluster;
            neighbours_of(p, &mut frontier_buf);
            if frontier_buf.len() >= params.min_pts {
                frontier.extend(
                    frontier_buf
                        .iter()
                        .copied()
                        .filter(|&q| labels[q] == UNVISITED || labels[q] == NOISE),
                );
            }
        }
    }

    Clustering {
        labels: labels
            .into_iter()
            .map(|l| {
                if l == NOISE || l == UNVISITED {
                    None
                } else {
                    Some(l as usize)
                }
            })
            .collect(),
        n_clusters: n_clusters as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<LocalPoint> {
        // Deterministic pseudo-blob: points on a small spiral.
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden angle
                let r = spread * (i as f64 / n as f64).sqrt();
                LocalPoint::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut pts = blob(0.0, 0.0, 40, 20.0);
        pts.extend(blob(500.0, 500.0, 40, 20.0));
        let c = dbscan(&pts, DbscanParams::new(15.0, 4));
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.n_noise(), 0);
        // All of blob 1 shares a label distinct from blob 2.
        let l0 = c.labels[0].unwrap();
        let l1 = c.labels[40].unwrap();
        assert_ne!(l0, l1);
        assert!(c.labels[..40].iter().all(|l| *l == Some(l0)));
        assert!(c.labels[40..].iter().all(|l| *l == Some(l1)));
    }

    #[test]
    fn isolated_points_are_noise() {
        let pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(1000.0, 0.0),
            LocalPoint::new(0.0, 1000.0),
        ];
        let c = dbscan(&pts, DbscanParams::new(10.0, 2));
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.n_noise(), 3);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], DbscanParams::new(10.0, 3));
        assert_eq!(c.n_clusters, 0);
        assert!(c.labels.is_empty());
    }

    #[test]
    fn min_pts_one_makes_every_point_core() {
        let pts = vec![LocalPoint::new(0.0, 0.0), LocalPoint::new(1000.0, 0.0)];
        let c = dbscan(&pts, DbscanParams::new(1.0, 1));
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.n_noise(), 0);
    }

    #[test]
    fn chain_connectivity() {
        // Points in a line 5m apart with eps=6: one cluster.
        let pts: Vec<LocalPoint> = (0..30)
            .map(|i| LocalPoint::new(i as f64 * 5.0, 0.0))
            .collect();
        let c = dbscan(&pts, DbscanParams::new(6.0, 2));
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.n_noise(), 0);
    }

    #[test]
    fn chain_breaks_with_small_eps() {
        let pts: Vec<LocalPoint> = (0..30)
            .map(|i| LocalPoint::new(i as f64 * 5.0, 0.0))
            .collect();
        let c = dbscan(&pts, DbscanParams::new(4.0, 2));
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.n_noise(), 30);
    }

    #[test]
    fn border_point_attaches_to_cluster() {
        // Dense core of 5 coincident-ish points plus one border point within
        // eps of the core but itself not core.
        let mut pts = vec![
            LocalPoint::new(0.0, 0.0),
            LocalPoint::new(1.0, 0.0),
            LocalPoint::new(0.0, 1.0),
            LocalPoint::new(1.0, 1.0),
            LocalPoint::new(0.5, 0.5),
        ];
        pts.push(LocalPoint::new(8.0, 0.0)); // within 10m of core points only
        let c = dbscan(&pts, DbscanParams::new(10.0, 5));
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.labels[5], Some(0), "border point should join the cluster");
    }

    #[test]
    fn non_finite_points_become_noise() {
        let clean = blob(0.0, 0.0, 40, 20.0);
        let baseline = dbscan(&clean, DbscanParams::new(15.0, 4));

        let mut pts = clean.clone();
        pts.insert(0, LocalPoint::new(f64::NAN, 0.0));
        pts.insert(17, LocalPoint::new(f64::INFINITY, f64::NEG_INFINITY));
        pts.push(LocalPoint::new(3.0, f64::NAN));
        let c = dbscan(&pts, DbscanParams::new(15.0, 4));

        assert_eq!(c.labels.len(), pts.len());
        assert_eq!(c.n_clusters, baseline.n_clusters);
        assert!(c.labels[0].is_none());
        assert!(c.labels[17].is_none());
        assert!(c.labels[pts.len() - 1].is_none());
        // Finite points keep exactly the labels of the clean run.
        let finite_labels: Vec<_> = (0..pts.len())
            .filter(|&i| pts[i].x.is_finite() && pts[i].y.is_finite())
            .map(|i| c.labels[i])
            .collect();
        assert_eq!(finite_labels, baseline.labels);
    }

    #[test]
    fn all_non_finite_input_is_all_noise() {
        let pts = vec![
            LocalPoint::new(f64::NAN, f64::NAN),
            LocalPoint::new(f64::INFINITY, 0.0),
        ];
        let c = dbscan(&pts, DbscanParams::new(10.0, 1));
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.n_noise(), 2);
    }

    #[test]
    fn threaded_precompute_matches_serial_labels() {
        // Three blobs plus scatter, including non-finite points so the
        // finite-subset recursion is exercised under threads too.
        let mut pts = blob(0.0, 0.0, 40, 20.0);
        pts.extend(blob(400.0, 100.0, 35, 18.0));
        pts.extend(blob(-300.0, 250.0, 30, 22.0));
        pts.push(LocalPoint::new(f64::NAN, 0.0));
        pts.push(LocalPoint::new(150.0, 150.0));
        let serial = dbscan(&pts, DbscanParams::new(15.0, 4));
        for threads in [2, 4, 5] {
            let parallel = dbscan(&pts, DbscanParams::new(15.0, 4).with_threads(threads));
            assert_eq!(serial.labels, parallel.labels, "threads = {threads}");
            assert_eq!(serial.n_clusters, parallel.n_clusters);
        }
    }

    #[test]
    fn all_points_labelled_or_noise() {
        let mut pts = blob(0.0, 0.0, 25, 30.0);
        pts.extend(blob(200.0, 0.0, 3, 5.0)); // too small to be a cluster at min_pts=5
        let c = dbscan(&pts, DbscanParams::new(12.0, 5));
        assert_eq!(c.labels.len(), pts.len());
        let clustered: usize = c.clusters().iter().map(Vec::len).sum();
        assert_eq!(clustered + c.n_noise(), pts.len());
    }
}
