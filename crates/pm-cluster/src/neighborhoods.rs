//! Flat, parallel-precomputed neighbourhood lists for the density sweeps.
//!
//! OPTICS and DBSCAN both issue one circular range query per point. The
//! queries are independent, so with more than one worker they are computed
//! up front in parallel; the results land in one CSR-style (offsets + items)
//! layout instead of a `Vec<Vec<usize>>`, so the precompute costs two
//! allocations total rather than one per point. Each stored list is
//! byte-identical in content and order to what a lazy
//! [`GridIndex::range_into`] call would produce, which is what keeps the
//! serial and parallel sweeps bit-deterministic.

use pm_geo::{GridIndex, LocalPoint};

/// Every point's neighbour list, concatenated: point `i`'s neighbours are
/// `items[offsets[i]..offsets[i + 1]]`.
#[derive(Debug)]
pub(crate) struct Neighborhoods {
    offsets: Vec<usize>,
    items: Vec<u32>,
}

impl Neighborhoods {
    /// Precomputes every point's range query over `threads` workers.
    ///
    /// Returns `None` on the serial path (one worker or trivially few
    /// points) — callers then query the grid lazily with a reused scratch
    /// buffer, which is strictly cheaper than materializing all lists.
    pub fn precompute(
        index: &GridIndex,
        points: &[LocalPoint],
        radius: f64,
        threads: usize,
    ) -> Option<Self> {
        let workers = pm_runtime::resolve_threads(threads);
        let n = points.len();
        if workers <= 1 || n < 2 || n > u32::MAX as usize {
            return None;
        }
        // One contiguous slab of points per worker; each part is that slab's
        // per-point list lengths plus its flattened neighbour indices.
        let chunk = n.div_ceil(workers);
        let n_chunks = n.div_ceil(chunk);
        let parts: Vec<(Vec<u32>, Vec<u32>)> = pm_runtime::par_map_range(n_chunks, threads, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut buf = Vec::new();
            let mut lens = Vec::with_capacity(hi - lo);
            let mut flat = Vec::new();
            for point in &points[lo..hi] {
                index.range_into(*point, radius, &mut buf);
                lens.push(buf.len() as u32);
                flat.extend(buf.iter().map(|&q| q as u32));
            }
            (lens, flat)
        });

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let total: usize = parts.iter().map(|(_, flat)| flat.len()).sum();
        let mut items = Vec::with_capacity(total);
        for (lens, flat) in parts {
            for len in lens {
                offsets.push(offsets.last().copied().unwrap_or(0) + len as usize);
            }
            items.extend(flat);
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Some(Self { offsets, items })
    }

    /// Copies point `i`'s neighbour list into `buf` (cleared first), in
    /// exactly the order [`GridIndex::range_into`] yields it.
    pub fn copy_into(&self, i: usize, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend(
            self.items[self.offsets[i]..self.offsets[i + 1]]
                .iter()
                .map(|&q| q as usize),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_request_skips_precompute() {
        let pts = vec![LocalPoint::ORIGIN, LocalPoint::new(5.0, 0.0)];
        let idx = GridIndex::build(&pts, 10.0);
        assert!(Neighborhoods::precompute(&idx, &pts, 10.0, 1).is_none());
        assert!(Neighborhoods::precompute(&idx, &[LocalPoint::ORIGIN], 10.0, 4).is_none());
    }

    #[test]
    fn precomputed_lists_match_lazy_queries_exactly() {
        let pts: Vec<LocalPoint> = (0..137)
            .map(|i| LocalPoint::new((i % 12) as f64 * 9.0, (i / 12) as f64 * 7.0))
            .collect();
        let radius = 20.0;
        let idx = GridIndex::build(&pts, radius);
        for threads in [2, 3, 8] {
            let hoods =
                Neighborhoods::precompute(&idx, &pts, radius, threads).expect("parallel path");
            let mut got = Vec::new();
            let mut want = Vec::new();
            for (i, p) in pts.iter().enumerate() {
                hoods.copy_into(i, &mut got);
                idx.range_into(*p, radius, &mut want);
                assert_eq!(got, want, "point {i}, threads {threads}");
            }
        }
    }
}
