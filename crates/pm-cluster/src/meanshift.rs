//! Mean Shift mode seeking (Comaniciu & Meer — the paper's ref \[25\]).
//!
//! The Splitter competitor (ref \[17\]) refines each coarse semantic pattern
//! by mean-shifting the member stay points toward local density modes and
//! splitting the pattern along distinct modes.

use crate::Clustering;
use pm_geo::{GridIndex, LocalPoint};

/// Mean Shift parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeanShiftParams {
    /// Kernel bandwidth in meters (flat/uniform kernel radius).
    pub bandwidth: f64,
    /// Convergence tolerance: iteration stops when the shift drops below
    /// this many meters.
    pub tol: f64,
    /// Hard cap on iterations per point.
    pub max_iter: usize,
}

impl MeanShiftParams {
    /// Creates a parameter set with default tolerance (`bandwidth * 1e-3`)
    /// and iteration cap (300).
    pub fn new(bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive, got {bandwidth}"
        );
        Self {
            bandwidth,
            tol: bandwidth * 1e-3,
            max_iter: 300,
        }
    }
}

/// Result of a mean-shift run: a flat clustering plus the converged modes.
#[derive(Debug, Clone)]
pub struct MeanShiftResult {
    /// Cluster assignment per input point. Mean shift assigns every finite
    /// point to a mode, so `labels[i]` is `Some` for every point with finite
    /// coordinates; points with NaN or infinite coordinates are `None`.
    pub clustering: Clustering,
    /// One density mode per cluster, aligned with cluster labels.
    pub modes: Vec<LocalPoint>,
}

/// Runs mean shift with a flat (uniform-disk) kernel.
///
/// Each point iteratively moves to the centroid of the input points within
/// `bandwidth` of its current position until convergence; converged
/// positions within `bandwidth / 2` of each other are merged into one mode.
///
/// Points with NaN or infinite coordinates cannot converge to a mode; they
/// are labelled `None` and the finite points shift as if they were absent.
pub fn mean_shift(points: &[LocalPoint], params: MeanShiftParams) -> MeanShiftResult {
    if let Some((subset, original)) = crate::finite_subset(points) {
        let sub = mean_shift(&subset, params);
        let mut labels = vec![None; points.len()];
        for (k, &i) in original.iter().enumerate() {
            labels[i] = sub.clustering.labels[k];
        }
        return MeanShiftResult {
            clustering: Clustering {
                labels,
                n_clusters: sub.clustering.n_clusters,
            },
            modes: sub.modes,
        };
    }

    let n = points.len();
    if n == 0 {
        return MeanShiftResult {
            clustering: Clustering {
                labels: Vec::new(),
                n_clusters: 0,
            },
            modes: Vec::new(),
        };
    }
    let index = GridIndex::build(points, params.bandwidth.max(1e-9));
    let mut nbrs = Vec::new();

    // Shift every point to its mode.
    let mut converged = Vec::with_capacity(n);
    for &start in points {
        let mut pos = start;
        for _ in 0..params.max_iter {
            index.range_into(pos, params.bandwidth, &mut nbrs);
            if nbrs.is_empty() {
                break; // can only happen for degenerate bandwidths
            }
            let sum = nbrs
                .iter()
                .fold(LocalPoint::ORIGIN, |acc, &i| acc + points[i]);
            let next = sum / nbrs.len() as f64;
            let shift = next.distance(&pos);
            pos = next;
            if shift < params.tol {
                break;
            }
        }
        converged.push(pos);
    }

    // Merge modes closer than bandwidth/2; first-come ordering keeps the
    // result deterministic.
    let merge_radius = params.bandwidth / 2.0;
    let mut modes: Vec<LocalPoint> = Vec::new();
    let mut labels = Vec::with_capacity(n);
    for pos in &converged {
        let found = modes.iter().position(|m| m.distance(pos) <= merge_radius);
        match found {
            Some(m) => labels.push(Some(m)),
            None => {
                modes.push(*pos);
                labels.push(Some(modes.len() - 1));
            }
        }
    }

    MeanShiftResult {
        clustering: Clustering {
            labels,
            n_clusters: modes.len(),
        },
        modes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<LocalPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963;
                let r = spread * (i as f64 / n as f64).sqrt();
                LocalPoint::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_modes() {
        let mut pts = blob(0.0, 0.0, 40, 20.0);
        pts.extend(blob(500.0, 0.0, 40, 20.0));
        let r = mean_shift(&pts, MeanShiftParams::new(60.0));
        assert_eq!(r.clustering.n_clusters, 2);
        assert!(r.modes[0].distance(&LocalPoint::ORIGIN) < 15.0);
        assert!(r.modes[1].distance(&LocalPoint::new(500.0, 0.0)) < 15.0);
        assert!(r.clustering.labels[..40].iter().all(|l| *l == Some(0)));
        assert!(r.clustering.labels[40..].iter().all(|l| *l == Some(1)));
    }

    #[test]
    fn single_blob_single_mode_near_centroid() {
        let pts = blob(100.0, -50.0, 60, 25.0);
        let r = mean_shift(&pts, MeanShiftParams::new(80.0));
        assert_eq!(r.clustering.n_clusters, 1);
        assert!(r.modes[0].distance(&LocalPoint::new(100.0, -50.0)) < 10.0);
    }

    #[test]
    fn every_point_gets_a_label() {
        let mut pts = blob(0.0, 0.0, 20, 10.0);
        pts.push(LocalPoint::new(10_000.0, 0.0)); // isolated: its own mode
        let r = mean_shift(&pts, MeanShiftParams::new(50.0));
        assert!(r.clustering.labels.iter().all(Option::is_some));
        assert_eq!(r.clustering.n_clusters, 2);
    }

    #[test]
    fn empty_input() {
        let r = mean_shift(&[], MeanShiftParams::new(10.0));
        assert_eq!(r.clustering.n_clusters, 0);
        assert!(r.modes.is_empty());
    }

    #[test]
    fn non_finite_points_are_unlabelled() {
        let clean = blob(0.0, 0.0, 30, 15.0);
        let baseline = mean_shift(&clean, MeanShiftParams::new(60.0));

        let mut pts = clean.clone();
        pts.insert(5, LocalPoint::new(f64::NAN, 3.0));
        pts.push(LocalPoint::new(f64::NEG_INFINITY, f64::INFINITY));
        let r = mean_shift(&pts, MeanShiftParams::new(60.0));

        assert_eq!(r.clustering.labels.len(), pts.len());
        assert!(r.clustering.labels[5].is_none());
        assert!(r.clustering.labels[pts.len() - 1].is_none());
        assert_eq!(r.clustering.n_clusters, baseline.clustering.n_clusters);
        assert_eq!(r.modes, baseline.modes);
        let finite_labels: Vec<_> = (0..pts.len())
            .filter(|&i| pts[i].x.is_finite() && pts[i].y.is_finite())
            .map(|i| r.clustering.labels[i])
            .collect();
        assert_eq!(finite_labels, baseline.clustering.labels);
    }

    #[test]
    fn modes_align_with_labels() {
        let mut pts = blob(0.0, 0.0, 30, 10.0);
        pts.extend(blob(300.0, 300.0, 30, 10.0));
        let r = mean_shift(&pts, MeanShiftParams::new(50.0));
        for (i, label) in r.clustering.labels.iter().enumerate() {
            let mode = r.modes[label.unwrap()];
            // Every point should be much closer to its own mode than to any
            // other mode.
            for (m, other) in r.modes.iter().enumerate() {
                if m != label.unwrap() {
                    assert!(pts[i].distance(&mode) < pts[i].distance(other));
                }
            }
        }
    }

    #[test]
    fn bandwidth_controls_granularity() {
        let mut pts = blob(0.0, 0.0, 30, 10.0);
        pts.extend(blob(120.0, 0.0, 30, 10.0));
        let fine = mean_shift(&pts, MeanShiftParams::new(40.0));
        let coarse = mean_shift(&pts, MeanShiftParams::new(400.0));
        assert!(fine.clustering.n_clusters >= 2);
        assert_eq!(coarse.clustering.n_clusters, 1);
    }
}
