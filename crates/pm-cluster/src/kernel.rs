//! The Gaussian distribution coefficient of the paper's Eq. 2.

use pm_geo::LocalPoint;

/// Gaussian kernel parameterized by the paper's `R_3sigma` cut-off radius.
///
/// The paper models GPS noise as an isotropic Gaussian whose 3-sigma circle
/// has radius `R_3sigma` (100 m in all experiments), so the kernel standard
/// deviation is `R_3sigma / 3`. Contributions beyond the cut-off are treated
/// as zero (Eq. 3 only sums stay points with `d < R_3sigma`).
#[derive(Clone, Copy, Debug)]
pub struct GaussianKernel {
    r3sigma: f64,
    sigma: f64,
    norm: f64,
}

impl GaussianKernel {
    /// Creates a kernel with the given 3-sigma cut-off radius in meters.
    ///
    /// # Panics
    /// Panics unless `r3sigma` is strictly positive and finite.
    pub fn new(r3sigma: f64) -> Self {
        assert!(
            r3sigma.is_finite() && r3sigma > 0.0,
            "R_3sigma must be positive, got {r3sigma}"
        );
        let sigma = r3sigma / 3.0;
        Self {
            r3sigma,
            sigma,
            norm: 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt()),
        }
    }

    /// The cut-off radius `R_3sigma` in meters.
    pub fn cutoff(&self) -> f64 {
        self.r3sigma
    }

    /// Eq. 2 evaluated at distance `d` meters:
    /// `||p, p'|| = 1/((R/3) sqrt(2 pi)) * exp(-d^2 / (2 (R/3)^2))`.
    ///
    /// Distances beyond the cut-off evaluate to exactly 0 so that kernel
    /// sums match the paper's truncated summation (Eq. 3).
    pub fn coeff_at(&self, d: f64) -> f64 {
        if d >= self.r3sigma {
            return 0.0;
        }
        self.norm * (-d * d / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Eq. 2 between two local points.
    pub fn coeff(&self, a: LocalPoint, b: LocalPoint) -> f64 {
        self.coeff_at(a.distance(&b))
    }
}

/// Convenience free function: Eq. 2 at distance `d` for cut-off `r3sigma`.
pub fn gaussian_coeff(d: f64, r3sigma: f64) -> f64 {
    GaussianKernel::new(r3sigma).coeff_at(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_at_zero_distance() {
        let k = GaussianKernel::new(100.0);
        let at0 = k.coeff_at(0.0);
        // 1 / ((100/3) * sqrt(2 pi))
        let expected = 1.0 / ((100.0 / 3.0) * (2.0 * std::f64::consts::PI).sqrt());
        assert!((at0 - expected).abs() < 1e-12);
    }

    #[test]
    fn monotonically_decreasing() {
        let k = GaussianKernel::new(100.0);
        let mut prev = k.coeff_at(0.0);
        for d in (1..100).map(|i| i as f64) {
            let cur = k.coeff_at(d);
            assert!(cur < prev, "not decreasing at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn zero_beyond_cutoff() {
        let k = GaussianKernel::new(100.0);
        assert_eq!(k.coeff_at(100.0), 0.0);
        assert_eq!(k.coeff_at(250.0), 0.0);
        assert!(k.coeff_at(99.9) > 0.0);
    }

    #[test]
    fn three_sigma_mass() {
        // At the cut-off the unclipped kernel value is exp(-4.5) of the peak.
        let k = GaussianKernel::new(99.0);
        let ratio = k.coeff_at(98.999) / k.coeff_at(0.0);
        assert!((ratio - (-4.5f64).exp()).abs() < 1e-3, "ratio {ratio}");
    }

    #[test]
    fn point_form_matches_distance_form() {
        let k = GaussianKernel::new(100.0);
        let a = LocalPoint::new(0.0, 0.0);
        let b = LocalPoint::new(30.0, 40.0);
        assert_eq!(k.coeff(a, b), k.coeff_at(50.0));
    }

    #[test]
    fn free_function_agrees() {
        assert_eq!(
            gaussian_coeff(42.0, 100.0),
            GaussianKernel::new(100.0).coeff_at(42.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_radius() {
        let _ = GaussianKernel::new(0.0);
    }
}
