//! OPTICS: Ordering Points To Identify the Clustering Structure
//! (Ankerst, Breunig, Kriegel, Sander — the paper's ref \[27\]).
//!
//! Algorithm 4 of the paper invokes `Optics({Pt^k(ST)}, sigma)` to cluster
//! the k-th stay points of a coarse pattern *without* a hand-tuned distance
//! threshold: "It initiates with a default maximum distance threshold and
//! cluster size threshold sigma … It chooses an optimal distance threshold
//! with sufficiently high density for each cluster." We reproduce that with
//! the classic OPTICS ordering plus an automatic threshold picked at the
//! largest gap (knee) of the sorted reachability profile.

use crate::neighborhoods::Neighborhoods;
use crate::Clustering;
use pm_geo::{GridIndex, LocalPoint, SoaPoints};

/// Floor on the grid cell size backing the neighbourhood queries. A caller
/// may legally pass a sub-nanometre `max_eps` (the constructor only demands
/// "positive and finite"); building a faithful grid at that size over a
/// clustered extent would be pathological, so the requested cell is clamped
/// here and — beyond the clamp — [`GridIndex::build`]'s ~4-cells-per-point
/// memory cap (surfaced via `cell_size_inflated`) bounds the allocation no
/// matter what. Queries remain exact at the *requested* radius either way.
const MIN_CELL: f64 = 1e-9;

/// Inputs at or below this size always take the dense sweep in
/// [`Optics::run_finite`]: building a grid over a handful of points costs
/// more than the O(n²) sweep it would accelerate.
const SWEEP_MIN_N: usize = 64;

/// The dense sweep also wins whenever neighbourhoods cover a substantial
/// fraction of the input: with `max_eps² · 25 >= bbox area`, a query disk
/// (area `π·eps²`) spans at least ~1/8th of the extent, so a grid query
/// visits most points anyway — through an index indirection the sequential
/// sweep doesn't pay. CounterpartCluster (generous `max_eps` over one
/// pattern's stay points) lives entirely in this regime.
const SWEEP_AREA_FACTOR: f64 = 25.0;

/// OPTICS parameters.
#[derive(Clone, Copy, Debug)]
pub struct OpticsParams {
    /// Generous upper bound on the neighbourhood radius, in meters. This is
    /// the "default maximum distance threshold" of the paper; it only bounds
    /// work, it does not tune the clustering.
    pub max_eps: f64,
    /// Minimum cluster size; Algorithm 4 passes the support threshold sigma.
    pub min_pts: usize,
    /// Worker threads for the neighbourhood precompute (`0` = all cores,
    /// `1` = serial). Has no effect on the ordering produced.
    pub threads: usize,
}

impl OpticsParams {
    /// Creates a parameter set, validating `max_eps > 0` and `min_pts >= 1`.
    /// Runs serially; see [`Self::with_threads`].
    pub fn new(max_eps: f64, min_pts: usize) -> Self {
        assert!(
            max_eps.is_finite() && max_eps > 0.0,
            "max_eps must be positive, got {max_eps}"
        );
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Self {
            max_eps,
            min_pts,
            threads: 1,
        }
    }

    /// Spreads the range queries over `threads` workers (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Indexed 4-ary min-heap over packed `(reachability bits, point id)` keys —
/// the priority queue of [`Optics::run_finite`], with true decrease-key.
///
/// Keys pack `f64::to_bits(reach)` in the high 64 bits and the point id in
/// the low 32, so one integer comparison orders by `(reachability, id)`.
/// Reachability values on this heap are non-negative or `INFINITY`, never
/// NaN or negative, and for that range the IEEE bit pattern is monotone in
/// the value — u64 ordering coincides with `f64::total_cmp`. Each point
/// holds at most one entry, tracked through the `pos` slot map, so keys are
/// always distinct (ids break any cross-point tie), every pop returns the
/// unique minimum, and the pop sequence — hence the OPTICS ordering — is
/// independent of heap implementation details. In particular it matches the
/// classic lazy-deletion formulation (re-push on improvement, skip stale
/// pops): a stale entry of point `q` always keys strictly above `q`'s
/// current entry, so the lazy heap's minimum is never stale and both
/// schemes surface identical `(reachability, id)` sequences.
///
/// Why not `BinaryHeap` with lazy deletion: on clustered data a point's
/// reachability improves ~10x before it is processed, making pops — each a
/// full-depth sift-down — ~10x the processed-point count. Decrease-key
/// turns those re-pushes into short sift-ups of an existing entry and pops
/// exactly one entry per processed point; the 4-ary layout halves the sift
/// depth on top. The backing buffers survive in the scratch across the
/// hundreds of OPTICS runs CounterpartCluster issues.
#[derive(Debug, Default)]
struct Heap4 {
    keys: Vec<u128>,
    /// `pos[id]` is the id's slot in `keys`, or `NO_SLOT` when absent.
    pos: Vec<u32>,
}

impl Heap4 {
    const NO_SLOT: u32 = u32::MAX;

    fn pack(reach: f64, id: u32) -> u128 {
        ((reach.to_bits() as u128) << 32) | id as u128
    }

    fn unpack(key: u128) -> (f64, usize) {
        (f64::from_bits((key >> 32) as u64), key as u32 as usize)
    }

    /// Empties the heap and sizes the slot map for ids `0..n`.
    fn reset(&mut self, n: usize) {
        self.keys.clear();
        self.pos.clear();
        self.pos.resize(n, Self::NO_SLOT);
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Inserts `id` at `reach`, or lowers its existing entry to `reach`
    /// (which must be strictly below the current value — guaranteed here by
    /// the caller's `new_reach < reach[q]` improvement gate).
    fn decrease(&mut self, reach: f64, id: u32) {
        let key = Self::pack(reach, id);
        let slot = self.pos[id as usize];
        let start = if slot == Self::NO_SLOT {
            self.keys.push(key);
            self.keys.len() - 1
        } else {
            debug_assert!(key < self.keys[slot as usize], "decrease-key must decrease");
            slot as usize
        };
        self.sift_up(start, key);
    }

    fn sift_up(&mut self, mut i: usize, key: u128) {
        while i > 0 {
            let parent = (i - 1) / 4;
            let pk = self.keys[parent];
            if pk <= key {
                break;
            }
            self.keys[i] = pk;
            self.pos[pk as u32 as usize] = i as u32;
            i = parent;
        }
        self.keys[i] = key;
        self.pos[key as u32 as usize] = i as u32;
    }

    /// Pops the minimum `(reachability, id)`, or `None` when empty.
    fn pop(&mut self) -> Option<(f64, usize)> {
        let last = self.keys.pop()?;
        let Some(&top) = self.keys.first() else {
            self.pos[last as u32 as usize] = Self::NO_SLOT;
            return Some(Self::unpack(last));
        };
        self.pos[top as u32 as usize] = Self::NO_SLOT;
        // Sift the former bottom entry down from the vacated root.
        let n = self.keys.len();
        let mut i = 0usize;
        loop {
            let c0 = 4 * i + 1;
            if c0 >= n {
                break;
            }
            let mut m = c0;
            for c in c0 + 1..(c0 + 4).min(n) {
                if self.keys[c] < self.keys[m] {
                    m = c;
                }
            }
            let mk = self.keys[m];
            if mk >= last {
                break;
            }
            self.keys[i] = mk;
            self.pos[mk as u32 as usize] = i as u32;
            i = m;
        }
        self.keys[i] = last;
        self.pos[last as u32 as usize] = i as u32;
        Some(Self::unpack(top))
    }
}

/// Reusable buffers for repeated OPTICS runs.
///
/// CounterpartCluster (Algorithm 4) runs OPTICS once per pattern position of
/// every coarse pattern — hundreds of small runs per extraction. Passing one
/// scratch through [`Optics::run_with_scratch`] lets consecutive runs reuse
/// the struct-of-arrays coordinate columns and the per-point sweep buffers
/// instead of reallocating them per run. A fresh `OpticsScratch::default()`
/// is free (empty vectors), so one-shot callers lose nothing.
#[derive(Debug, Default)]
pub struct OpticsScratch {
    /// Columnar copy of the input points for the distance kernel.
    soa: SoaPoints,
    /// Current neighbour list (reused across the sweep).
    nbrs: Vec<usize>,
    /// Squared distances aligned with `nbrs`.
    d_sq: Vec<f64>,
    /// Squared distances to *all* points, for the dense-sweep path.
    all_sq: Vec<f64>,
    /// Selection buffer for the core-distance order statistic. Holds the
    /// squared distances as raw bits: they are non-negative IEEE values
    /// (never NaN for finite inputs), so `u64` ordering coincides with
    /// `f64::total_cmp` and the integer `select_nth_unstable` — no
    /// comparator indirection — returns the exact same order statistic.
    core_bits: Vec<u64>,
    /// Unprocessed point ids (dense-sweep path), maintained by swap-remove
    /// so the reachability update only visits points that can still change.
    rem: Vec<u32>,
    /// `rem_pos[q]` is `q`'s index in `rem` while `q` is unprocessed.
    rem_pos: Vec<u32>,
    /// Tentative reachability per original id (real meters — heap domain).
    reach: Vec<f64>,
    /// Squared twin of `reach`, the allocation-free prefilter that keeps
    /// `sqrt` off the no-improvement path (`sqrt(reach_sq[q])` always equals
    /// `reach[q]` bit for bit).
    reach_sq: Vec<f64>,
    /// Visited mask.
    processed: Vec<bool>,
    /// Lazy-deletion priority queue (drains empty every run; the backing
    /// allocation is what gets reused).
    heap: Heap4,
}

/// The OPTICS ordering of a point set.
#[derive(Debug, Clone)]
pub struct Optics {
    params: OpticsParams,
    /// Visit order: a permutation of `0..n`.
    order: Vec<usize>,
    /// Reachability distance of each point *in visit order*;
    /// `f64::INFINITY` marks the start of a new density-connected component.
    reachability: Vec<f64>,
    /// Core distance of each point, indexed by original point id.
    core_distance: Vec<f64>,
    /// The input points (kept for border-point recovery in extraction).
    points: Vec<LocalPoint>,
}

impl Optics {
    /// Computes the OPTICS ordering of `points`.
    ///
    /// Points with NaN or infinite coordinates have no meaningful density
    /// structure: they are appended to the end of the ordering as isolated
    /// components (infinite reachability and core distance) and never join a
    /// cluster on extraction, while the finite points are ordered exactly as
    /// they would be without the corrupt ones.
    pub fn run(points: &[LocalPoint], params: OpticsParams) -> Self {
        Self::run_with_scratch(points, params, &mut OpticsScratch::default())
    }

    /// [`Optics::run`] with caller-owned scratch buffers, for hot loops that
    /// run OPTICS many times in a row (one run per pattern position in
    /// Algorithm 4). The ordering produced is byte-identical to
    /// [`Optics::run`]; only the allocation behaviour differs.
    pub fn run_with_scratch(
        points: &[LocalPoint],
        params: OpticsParams,
        scratch: &mut OpticsScratch,
    ) -> Self {
        let Some((subset, original)) = crate::finite_subset(points) else {
            return Self::run_finite(points, params, scratch);
        };
        let sub = Self::run_finite(&subset, params, scratch);
        let mut order: Vec<usize> = sub.order.iter().map(|&k| original[k]).collect();
        let mut reachability = sub.reachability;
        let mut core_distance = vec![f64::INFINITY; points.len()];
        for (k, &i) in original.iter().enumerate() {
            core_distance[i] = sub.core_distance[k];
        }
        for (i, p) in points.iter().enumerate() {
            if !crate::is_finite_point(p) {
                order.push(i);
                reachability.push(f64::INFINITY);
            }
        }
        Self {
            params,
            order,
            reachability,
            core_distance,
            points: points.to_vec(),
        }
    }

    /// [`Optics::run`] under observation: times the run as a
    /// `cluster.optics` span (tagged with the worker slot when invoked from
    /// inside a parallel region) and counts runs and points clustered.
    /// Observability is strictly one-way — the ordering produced is the one
    /// [`Optics::run`] produces.
    pub fn run_obs(points: &[LocalPoint], params: OpticsParams, obs: &pm_obs::Obs) -> Self {
        Self::run_obs_with_scratch(points, params, obs, &mut OpticsScratch::default())
    }

    /// [`Optics::run_obs`] with caller-owned scratch, combining observation
    /// with the allocation reuse of [`Optics::run_with_scratch`].
    pub fn run_obs_with_scratch(
        points: &[LocalPoint],
        params: OpticsParams,
        obs: &pm_obs::Obs,
        scratch: &mut OpticsScratch,
    ) -> Self {
        let span = obs.span("cluster.optics");
        let out = Self::run_with_scratch(points, params, scratch);
        span.finish();
        obs.incr("cluster.optics_runs", 1);
        obs.incr("cluster.optics_points", points.len() as u64);
        // Candidate-pair volume (n²): the sweeps are O(n·k) with k ≈ n under
        // a generous max_eps, so this tracks the real work far better than
        // the point count when run sizes are skewed.
        obs.incr(
            "cluster.optics_pairs",
            (points.len() as u64).saturating_mul(points.len() as u64),
        );
        out
    }

    /// The core ordering sweep; `points` must all be finite.
    ///
    /// The hot loops work in *squared* meters against the struct-of-arrays
    /// coordinate columns: neighbour distances are computed once per
    /// processed point with no `sqrt`, the core distance is an
    /// `O(k)` order-statistic selection over the squared values, and the
    /// reachability update prefilters candidates in the squared domain —
    /// `sqrt` fires only when a candidate actually improves a point's
    /// reachability, because the heap and the reported reachability profile
    /// are contractually in real meters. `sqrt` is monotone and correctly
    /// rounded, so order statistics and `max` commute with it and every
    /// emitted bit matches the naive real-distance formulation.
    fn run_finite(
        points: &[LocalPoint],
        params: OpticsParams,
        scratch: &mut OpticsScratch,
    ) -> Self {
        let n = points.len();
        let mut order = Vec::with_capacity(n);
        let mut reach_in_order = Vec::with_capacity(n);
        let mut core_distance = vec![f64::INFINITY; n];
        if n == 0 {
            return Self {
                params,
                order,
                reachability: reach_in_order,
                core_distance,
                points: Vec::new(),
            };
        }

        let OpticsScratch {
            soa,
            nbrs,
            d_sq,
            all_sq,
            core_bits,
            rem,
            rem_pos,
            reach,
            reach_sq,
            processed,
            heap,
        } = scratch;
        // Point ids ride in 32 bits (`rem`, heap keys); 2·10⁹ points of
        // f64 coordinates would not fit in memory anyway.
        assert!(n <= u32::MAX as usize, "point count exceeds u32 id space");
        soa.refill(points);

        // Neighbourhood strategy. The sweep enumerates candidates in index
        // order while the grid yields cell order, but the ordering produced
        // is identical either way: the core distance is an order statistic
        // (order-invariant), each neighbour's reachability update is
        // independent of the others in the same batch, and the heap pops
        // strictly by `(reachability, id)` — the neighbour *set* is all that
        // matters, and both strategies return exactly the points within
        // `max_eps` (inclusive, identical squared-distance arithmetic).
        let r_sq = params.max_eps * params.max_eps;
        let (min_x, min_y, max_x, max_y) = soa.bbox().expect("n > 0");
        let area = (max_x - min_x) * (max_y - min_y);
        let sweep = n <= SWEEP_MIN_N || r_sq * SWEEP_AREA_FACTOR >= area;
        let index = if sweep {
            None
        } else {
            Some(GridIndex::build(points, params.max_eps.max(MIN_CELL)))
        };
        processed.clear();
        processed.resize(n, false);
        // Tentative reachability per original id, updated as the wavefront
        // expands; INFINITY until first touched. `reach` carries the real
        // meters the heap and output contract require; `reach_sq` carries
        // the squared value it was rooted from, so candidate comparisons can
        // stay in the squared domain (`new_sq >= reach_sq[q]` implies
        // `sqrt(new_sq) >= reach[q]` by monotonicity — no `sqrt` needed to
        // reject).
        reach.clear();
        reach.resize(n, f64::INFINITY);
        reach_sq.clear();
        reach_sq.resize(n, f64::INFINITY);
        // The dense sweep's branchless gather writes through a cursor into
        // `core_bits` without growing it, so the buffer must span `n` slots
        // up front (grid-path runs size it per neighbourhood instead), and
        // its update loop walks `rem`, the unprocessed-point list; dropping
        // each point as it is processed halves the candidate visits over
        // the whole run (the wavefront only ever improves unprocessed
        // points).
        rem.clear();
        rem_pos.clear();
        if sweep {
            core_bits.clear();
            core_bits.resize(n, 0);
            all_sq.clear();
            all_sq.resize(n, 0.0);
            rem.extend(0..n as u32);
            rem_pos.extend(0..n as u32);
        }
        // Warm-start threshold for the core-distance selection: consecutive
        // wavefront points sit near each other, so the previous core
        // distance (with margin) usually brackets the next one, shrinking
        // the selection from n candidates to a handful. Any guess is safe —
        // it gates only which (exact) selection strategy runs.
        let mut core_guess = f64::INFINITY;

        // The wavefront sweep is sequential, but its range queries are
        // independent per point: with more than one worker, precompute every
        // neighbourhood up front. The lists match lazy `range_into` output
        // in content and order, so the ordering is byte-identical.
        let hoods = index
            .as_ref()
            .and_then(|idx| Neighborhoods::precompute(idx, points, params.max_eps, params.threads));

        // Lazy-deletion min-heap over (reachability, point): decrease-key is
        // emulated by pushing a fresh entry and skipping stale pops (the
        // stored reachability no longer matches). Keeps the sweep
        // O(n log n + total neighbour work) at corpus scale. One heap is
        // reused across components (it always drains empty between seeds).
        heap.reset(n);
        for seed in 0..n {
            if processed[seed] {
                continue;
            }
            debug_assert!(heap.is_empty());
            heap.decrease(f64::INFINITY, seed as u32);
            reach[seed] = f64::INFINITY;
            reach_sq[seed] = f64::INFINITY;
            while let Some((r, p)) = heap.pop() {
                // With decrease-key every entry is current: the popped key
                // IS the point's reachability, and each point pops once.
                debug_assert!(!processed[p]);
                debug_assert_eq!(r.to_bits(), reach[p].to_bits());
                processed[p] = true;
                order.push(p);
                reach_in_order.push(r);
                // Sentinel: a processed point can never be improved again.
                // `new_sq < -inf` is false for every candidate (squared
                // distances are non-negative, never NaN), so the update
                // loops below need no `processed[q]` load-and-branch —
                // measurably the hottest instruction of the whole sweep.
                reach_sq[p] = f64::NEG_INFINITY;

                // Per-candidate reachability update, shared by both query
                // strategies. `new_sq < reach_sq[q]` means improvement is
                // possible (but not guaranteed: distinct squared values can
                // root to the same f64). sqrt(max(a, b)) == max(sqrt a,
                // sqrt b) bitwise, so this is the seed formulation's
                // `core.max(dist)` — `sqrt` fires only on actual updates.
                macro_rules! update {
                    ($q:expr, $dq:expr, $core_sq:expr) => {{
                        let (q, dq) = ($q, $dq);
                        let new_sq = if dq > $core_sq { dq } else { $core_sq };
                        if new_sq < reach_sq[q] {
                            let new_reach = new_sq.sqrt();
                            reach_sq[q] = new_sq;
                            if new_reach < reach[q] {
                                reach[q] = new_reach;
                                heap.decrease(new_reach, q as u32);
                            }
                        }
                    }};
                }

                // Core distance: distance to the min_pts-th neighbour — an
                // O(k) selection on the squared distances (order statistics
                // commute with the monotone sqrt), rooted once at the
                // output boundary.
                if let Some(idx) = &index {
                    match &hoods {
                        Some(h) => h.copy_into(p, nbrs),
                        None => idx.range_into(points[p], params.max_eps, nbrs),
                    }
                    if nbrs.len() >= params.min_pts {
                        soa.dist_sq_many(points[p], nbrs, d_sq);
                        core_bits.clear();
                        core_bits.extend(d_sq.iter().map(|v| v.to_bits()));
                        let (_, kth, _) = core_bits.select_nth_unstable(params.min_pts - 1);
                        let core_sq = f64::from_bits(*kth);
                        core_distance[p] = core_sq.sqrt();
                        for (&q, &dq) in nbrs.iter().zip(d_sq.iter()) {
                            update!(q, dq, core_sq);
                        }
                    }
                } else {
                    // Dense sweep: one sequential (vectorizable) pass over
                    // the coordinate columns; the candidate list is never
                    // materialized. Neighbour membership is the same
                    // inclusive `<= r_sq` test — with the same
                    // squared-distance bits — as the grid path would apply.
                    //
                    // Drop p from the unprocessed list (O(1) swap-remove).
                    let ip = rem_pos[p] as usize;
                    rem.swap_remove(ip);
                    if ip < rem.len() {
                        rem_pos[rem[ip] as usize] = ip as u32;
                    }
                    if n < params.min_pts {
                        continue; // can never be core
                    }
                    // Selecting over *all* squared distances decides
                    // coreness too: p has >= min_pts neighbours within
                    // max_eps exactly when the min_pts-th smallest distance
                    // is <= eps², and in that case the statistic over the
                    // full list equals the one over the ≤ eps² subset
                    // (every excluded value is strictly larger than every
                    // included one). The same subset argument makes the
                    // warm-start exact: when at least min_pts values fall
                    // at or below the guess threshold, the statistic over
                    // that subset is the global one.
                    let t = 2.0 * core_guess; // margin for density drift
                    let cap = 8 * params.min_pts + 64;
                    // One fused pass computes every squared distance AND
                    // gathers the core-distance candidates at or below the
                    // guess threshold. The gather is branchless: write the
                    // bits at the cursor unconditionally, advance the cursor
                    // only on a hit — `core_bits` stays resized to `n` (done
                    // once per run) so the write never grows the vector, and
                    // the loop carries no hard-to-predict branch (venue
                    // -clustered inputs, with their coincident points, make
                    // a `filter` branch erratic). Same per-element
                    // arithmetic as `dist_sq_all`, bit for bit.
                    let mut m = 0usize;
                    if t.is_finite() {
                        let (xs, ys) = soa.cols();
                        let (px, py) = (points[p].x, points[p].y);
                        for i in 0..n {
                            let dx = xs[i] - px;
                            let dy = ys[i] - py;
                            let v = dx * dx + dy * dy;
                            all_sq[i] = v;
                            core_bits[m] = v.to_bits();
                            m += usize::from(v <= t);
                        }
                    } else {
                        soa.dist_sq_all(points[p], all_sq);
                    }
                    if m < params.min_pts || m > cap {
                        for (b, v) in core_bits.iter_mut().zip(all_sq.iter()) {
                            *b = v.to_bits();
                        }
                        m = n;
                    }
                    let (_, kth, _) = core_bits[..m].select_nth_unstable(params.min_pts - 1);
                    let core_sq = f64::from_bits(*kth);
                    core_guess = core_sq;
                    if core_sq <= r_sq {
                        core_distance[p] = core_sq.sqrt();
                        for &q32 in rem.iter() {
                            let q = q32 as usize;
                            let dq = all_sq[q];
                            if dq > r_sq {
                                continue;
                            }
                            update!(q, dq, core_sq);
                        }
                    }
                }
            }
        }

        Self {
            params,
            order,
            reachability: reach_in_order,
            core_distance,
            points: points.to_vec(),
        }
    }

    /// The visit order (a permutation of point indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Reachability distances aligned with [`Optics::order`].
    pub fn reachability(&self) -> &[f64] {
        &self.reachability
    }

    /// Core distance of point `idx` (original indexing); infinite when the
    /// point is never a core point at `max_eps`.
    pub fn core_distance(&self, idx: usize) -> f64 {
        self.core_distance[idx]
    }

    /// Extracts a flat clustering at a fixed reachability threshold
    /// `eps_prime`; equivalent to DBSCAN at that radius (border-point
    /// assignment aside).
    pub fn extract_at(&self, eps_prime: f64) -> Clustering {
        let n = self.order.len();
        let mut labels = vec![None; n];
        let mut n_clusters = 0usize;
        let mut current: Option<usize> = None;
        // Last point provisionally labelled noise; it gets adopted when the
        // very next point turns out density-reachable at eps' (the component
        // seed was a border point rather than a core point).
        let mut pending_noise: Option<usize> = None;
        for (pos, &p) in self.order.iter().enumerate() {
            if self.reachability[pos] > eps_prime {
                // Not density-reachable at eps': start a new cluster only if
                // p itself is a core point at eps'.
                if self.core_distance[p] <= eps_prime {
                    current = Some(n_clusters);
                    n_clusters += 1;
                    labels[p] = current;
                    pending_noise = None;
                } else {
                    current = None; // noise (possibly a border seed)
                    pending_noise = Some(p);
                }
            } else {
                if current.is_none() {
                    // Density-reachable from the preceding noise point: that
                    // point seeds a cluster after all.
                    current = Some(n_clusters);
                    n_clusters += 1;
                    if let Some(seed) = pending_noise.take() {
                        labels[seed] = current;
                    }
                }
                labels[p] = current;
            }
        }
        // Border-point recovery: classic ExtractDBSCAN leaves a point as
        // noise when it heads its component in the ordering but is not core
        // at eps'. DBSCAN would label such a point as border; adopt the
        // label of the nearest clustered point within eps'.
        if n_clusters > 0 && labels.iter().any(Option::is_none) {
            let index = GridIndex::build(&self.points, eps_prime.max(MIN_CELL));
            let mut adopted: Vec<(usize, usize)> = Vec::new();
            for p in 0..n {
                if labels[p].is_some() {
                    continue;
                }
                // Nearest clustered point within eps'; compared in squared
                // meters — argmin commutes with the monotone square.
                let mut best: Option<(f64, usize)> = None;
                for q in index.range(self.points[p], eps_prime) {
                    if let Some(l) = labels[q] {
                        let d = self.points[p].distance_sq(&self.points[q]);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, l));
                        }
                    }
                }
                if let Some((_, l)) = best {
                    adopted.push((p, l));
                }
            }
            for (p, l) in adopted {
                labels[p] = Some(l);
            }
        }

        // Drop clusters smaller than min_pts: OPTICS extraction can emit
        // fragments at a threshold below the local core distance.
        let mut sizes = vec![0usize; n_clusters];
        for l in labels.iter().flatten() {
            sizes[*l] += 1;
        }
        let mut remap = vec![None; n_clusters];
        let mut kept = 0usize;
        for (c, &s) in sizes.iter().enumerate() {
            if s >= self.params.min_pts {
                remap[c] = Some(kept);
                kept += 1;
            }
        }
        for l in labels.iter_mut() {
            *l = l.and_then(|c| remap[c]);
        }
        Clustering {
            labels,
            n_clusters: kept,
        }
    }

    /// Extracts a flat clustering with automatically chosen, *per-cluster*
    /// thresholds — the behaviour Algorithm 4 relies on ("chooses an
    /// optimal distance threshold with sufficiently high density for each
    /// cluster").
    ///
    /// A global knee in the sorted reachability profile yields coarse
    /// clusters (contiguous runs of the ordering); each run is then refined
    /// recursively: if its own interior reachability shows a strong valley
    /// structure (a >= 1.5x gap that splits the run into two or more
    /// `min_pts`-sized sub-runs), the run splits at that local threshold.
    /// This is what lets one coarse cluster spanning two nearby venues
    /// resolve into two fine-grained groups — the advantage the paper
    /// credits OPTICS for in Fig. 11.
    pub fn extract_auto(&self) -> Clustering {
        let n = self.order.len();
        if n == 0 {
            return Clustering {
                labels: Vec::new(),
                n_clusters: 0,
            };
        }

        // Components: runs delimited by INFINITY reachability (points not
        // density-reachable from anything processed before them).
        let mut runs: Vec<(usize, usize)> = Vec::new(); // [lo, hi) positions
        let mut lo = 0usize;
        for pos in 1..n {
            if self.reachability[pos].is_infinite() {
                runs.push((lo, pos));
                lo = pos;
            }
        }
        runs.push((lo, n));

        // Per-run recursive refinement at local valley thresholds.
        let mut final_runs = Vec::new();
        for run in runs {
            self.refine_run(run, &mut final_runs);
        }

        // Materialize labels; runs smaller than min_pts are noise. Non-finite
        // points form trailing singleton runs — they must never cluster, even
        // at min_pts = 1, so membership is restricted to finite points.
        let mut labels = vec![None; n];
        let mut n_clusters = 0usize;
        for (a, b) in final_runs {
            let members: Vec<usize> = self.order[a..b]
                .iter()
                .copied()
                .filter(|&p| crate::is_finite_point(&self.points[p]))
                .collect();
            if members.len() < self.params.min_pts {
                continue;
            }
            for p in members {
                labels[p] = Some(n_clusters);
            }
            n_clusters += 1;
        }
        Clustering { labels, n_clusters }
    }

    /// Recursively splits one ordering run `[lo, hi)` at its strongest
    /// interior reachability valley — the per-cluster "optimal distance
    /// threshold" of Algorithm 4. A split happens when the strongest
    /// relative gap is pronounced (>= 1.5x when it yields two
    /// `min_pts`-sized sub-runs, >= 5x when it only strips outliers off one
    /// cluster); otherwise the run is emitted as one cluster.
    fn refine_run(&self, run: (usize, usize), out: &mut Vec<(usize, usize)>) {
        let (lo, hi) = run;
        if hi - lo < self.params.min_pts + 1 {
            out.push(run);
            return;
        }
        // Interior reachability (the head's value belongs to the previous
        // run / component boundary).
        let mut interior: Vec<f64> = self.reachability[lo + 1..hi]
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .collect();
        if interior.len() < 4 {
            out.push(run);
            return;
        }
        interior.sort_by(f64::total_cmp);
        // Strongest relative gap anywhere in the interior profile.
        let mut best_ratio = 1.0;
        let mut t_local = f64::INFINITY;
        for i in 0..interior.len() - 1 {
            let a = interior[i].max(1e-9);
            let b = interior[i + 1];
            let ratio = b / a;
            if ratio > best_ratio {
                best_ratio = ratio;
                t_local = a;
            }
        }
        if best_ratio < 1.5 {
            out.push(run);
            return;
        }
        // Split at positions whose reachability exceeds the local threshold.
        let mut subs: Vec<(usize, usize)> = Vec::new();
        let mut a = lo;
        for pos in lo + 1..hi {
            if self.reachability[pos] > t_local {
                subs.push((a, pos));
                a = pos;
            }
        }
        subs.push((a, hi));
        let viable = subs
            .iter()
            .filter(|(x, y)| y - x >= self.params.min_pts)
            .count();
        // A weak gap may only shave noise off one real cluster; demand a
        // genuine two-cluster split, or an order-of-magnitude gap (a big
        // venue with a far-away clump) when only one sub-run is viable.
        if subs.len() < 2 || viable == 0 || (best_ratio < 5.0 && viable < 2) {
            out.push(run);
            return;
        }
        for sub in subs {
            self.refine_run(sub, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<LocalPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963;
                let r = spread * (i as f64 / n as f64).sqrt();
                LocalPoint::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn ordering_is_permutation() {
        let pts = blob(0.0, 0.0, 30, 25.0);
        let o = Optics::run(&pts, OpticsParams::new(200.0, 4));
        let mut order = o.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
        assert_eq!(o.reachability().len(), 30);
    }

    #[test]
    fn first_point_of_each_component_has_infinite_reachability() {
        let mut pts = blob(0.0, 0.0, 20, 10.0);
        pts.extend(blob(10_000.0, 0.0, 20, 10.0));
        let o = Optics::run(&pts, OpticsParams::new(100.0, 3));
        let inf_count = o.reachability().iter().filter(|r| r.is_infinite()).count();
        assert_eq!(inf_count, 2, "one INFINITY per connected component");
    }

    #[test]
    fn auto_extraction_separates_two_blobs() {
        let mut pts = blob(0.0, 0.0, 40, 15.0);
        pts.extend(blob(600.0, 0.0, 40, 15.0));
        let o = Optics::run(&pts, OpticsParams::new(1_000.0, 5));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 2, "labels: {:?}", c.labels);
        let l0 = c.labels[0].unwrap();
        let l1 = c.labels[40].unwrap();
        assert_ne!(l0, l1);
    }

    #[test]
    fn extract_at_matches_dbscan_cluster_count() {
        let mut pts = blob(0.0, 0.0, 30, 12.0);
        pts.extend(blob(300.0, 300.0, 30, 12.0));
        pts.push(LocalPoint::new(150.0, 150.0)); // isolated noise
        let o = Optics::run(&pts, OpticsParams::new(500.0, 4));
        let c = o.extract_at(20.0);
        let d = crate::dbscan(&pts, crate::DbscanParams::new(20.0, 4));
        assert_eq!(c.n_clusters, d.n_clusters);
        assert!(c.labels[60].is_none(), "isolated point is noise");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let o = Optics::run(&[], OpticsParams::new(100.0, 3));
        assert_eq!(o.extract_auto().n_clusters, 0);

        let o = Optics::run(&[LocalPoint::ORIGIN], OpticsParams::new(100.0, 3));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.labels, vec![None]);
    }

    #[test]
    fn min_pts_filters_small_fragments() {
        // 3 points cannot form a cluster when min_pts = 5.
        let pts = blob(0.0, 0.0, 3, 2.0);
        let o = Optics::run(&pts, OpticsParams::new(100.0, 5));
        assert_eq!(o.extract_auto().n_clusters, 0);
    }

    #[test]
    fn core_distance_is_kth_neighbour_distance() {
        // Line of points 10m apart; min_pts=2 => core distance = 10m for
        // interior points (itself + 1 neighbour at 10m).
        let pts: Vec<LocalPoint> = (0..5)
            .map(|i| LocalPoint::new(i as f64 * 10.0, 0.0))
            .collect();
        let o = Optics::run(&pts, OpticsParams::new(100.0, 2));
        assert!((o.core_distance(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_points_stay_noise() {
        let clean: Vec<LocalPoint> = {
            let mut pts = blob(0.0, 0.0, 40, 15.0);
            pts.extend(blob(600.0, 0.0, 40, 15.0));
            pts
        };
        let baseline = Optics::run(&clean, OpticsParams::new(1_000.0, 5)).extract_auto();

        let mut pts = clean.clone();
        pts.insert(3, LocalPoint::new(f64::NAN, 0.0));
        pts.push(LocalPoint::new(f64::INFINITY, 1.0));
        let o = Optics::run(&pts, OpticsParams::new(1_000.0, 5));

        // Ordering is still a permutation of all inputs.
        let mut order = o.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        assert!(o.core_distance(3).is_infinite());

        let c = o.extract_auto();
        assert!(c.labels[3].is_none());
        assert!(c.labels[pts.len() - 1].is_none());
        assert_eq!(c.n_clusters, baseline.n_clusters);
        let finite_labels: Vec<_> = (0..pts.len())
            .filter(|&i| pts[i].x.is_finite() && pts[i].y.is_finite())
            .map(|i| c.labels[i])
            .collect();
        assert_eq!(finite_labels, baseline.labels);

        let at = o.extract_at(20.0);
        assert!(at.labels[3].is_none());
        assert!(at.labels[pts.len() - 1].is_none());
    }

    #[test]
    fn singleton_non_finite_never_clusters_at_min_pts_one() {
        let pts = vec![LocalPoint::new(f64::NAN, f64::NAN)];
        let o = Optics::run(&pts, OpticsParams::new(100.0, 1));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.labels, vec![None]);
    }

    #[test]
    fn heap4_key_order_matches_total_cmp_then_id() {
        // For the non-negative reachability domain the packed integer key
        // must order exactly like (f64::total_cmp, id).
        let entries = [
            (0.0, 5u32),
            (0.0, 7),
            (1.5, 0),
            (1.5, 1),
            (2.0, 3),
            (f64::MAX, 0),
            (f64::INFINITY, 0),
            (f64::INFINITY, 9),
        ];
        for (i, &(ra, ia)) in entries.iter().enumerate() {
            for &(rb, ib) in &entries[i + 1..] {
                assert!(
                    Heap4::pack(ra, ia) < Heap4::pack(rb, ib),
                    "({ra}, {ia}) must pack below ({rb}, {ib})"
                );
            }
        }
        // Round trip.
        let (r, id) = Heap4::unpack(Heap4::pack(42.25, 12345));
        assert_eq!(r.to_bits(), 42.25f64.to_bits());
        assert_eq!(id, 12345);
    }

    #[test]
    fn heap4_pops_in_sorted_order() {
        let mut heap = Heap4::default();
        heap.reset(202);
        assert!(heap.is_empty());
        assert_eq!(heap.pop(), None);
        // Deterministic shuffle of distinct (reach, id) pairs, including
        // seeds at INFINITY and duplicate reach values split by id.
        let mut entries: Vec<(f64, u32)> = (0..200u32)
            .map(|i| (((i * 73) % 199) as f64 * 0.5, i))
            .collect();
        entries.push((f64::INFINITY, 200));
        entries.push((f64::INFINITY, 201));
        for &(r, id) in &entries {
            heap.decrease(r, id);
        }
        let mut popped = Vec::new();
        while let Some((r, id)) = heap.pop() {
            popped.push((r, id as u32));
        }
        let mut expect = entries.clone();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(popped.len(), expect.len());
        for (got, want) in popped.iter().zip(expect.iter()) {
            assert_eq!(got.0.to_bits(), want.0.to_bits());
            assert_eq!(got.1, want.1);
        }
        assert!(heap.is_empty());
    }

    #[test]
    fn heap4_decrease_key_moves_existing_entry() {
        let mut heap = Heap4::default();
        heap.reset(8);
        for id in 0..8u32 {
            heap.decrease(100.0 + id as f64, id);
        }
        // Lower two existing entries; each id must pop exactly once, at its
        // final (lowest) reachability.
        heap.decrease(5.0, 6);
        heap.decrease(1.0, 3);
        let mut popped = Vec::new();
        while let Some((r, id)) = heap.pop() {
            popped.push((r, id));
        }
        assert_eq!(popped.len(), 8);
        assert_eq!(popped[0], (1.0, 3));
        assert_eq!(popped[1], (5.0, 6));
        for (k, &(_, id)) in popped.iter().enumerate().skip(2) {
            assert_eq!((popped[k].0, id), (100.0 + id as f64, id));
        }
    }

    #[test]
    fn threaded_precompute_matches_serial_ordering() {
        let mut pts = blob(0.0, 0.0, 40, 15.0);
        pts.extend(blob(600.0, 0.0, 40, 15.0));
        pts.extend(blob(200.0, 500.0, 25, 10.0));
        pts.insert(7, LocalPoint::new(f64::NAN, 2.0));
        let serial = Optics::run(&pts, OpticsParams::new(1_000.0, 5));
        for threads in [2, 4] {
            let parallel = Optics::run(&pts, OpticsParams::new(1_000.0, 5).with_threads(threads));
            assert_eq!(serial.order(), parallel.order(), "threads = {threads}");
            let bits =
                |o: &Optics| -> Vec<u64> { o.reachability().iter().map(|r| r.to_bits()).collect() };
            assert_eq!(bits(&serial), bits(&parallel));
            assert_eq!(serial.extract_auto().labels, parallel.extract_auto().labels);
        }
    }

    #[test]
    fn near_zero_max_eps_is_bounded_and_clusters_coincident_points() {
        // `max_eps = 1e-300` is legal ("positive and finite") but squares to
        // a full underflow (eps² == 0.0): only exactly coincident points are
        // neighbours. The run must stay bounded — the grid cell clamp keeps
        // the index from exploding over the clustered extent — and the
        // coincident clump is still recovered (distance 0 <= eps², core
        // distance 0), while every spread-out point stays noise.
        let venue = LocalPoint::new(120.0, 45.0);
        let mut pts = vec![venue; 5];
        pts.extend(blob(0.0, 0.0, 80, 400.0)); // spread: no duplicates
        let o = Optics::run(&pts, OpticsParams::new(1e-300, 3));

        let mut order = o.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        assert_eq!(o.core_distance(0), 0.0, "coincident clump is core");
        assert!(o.core_distance(7).is_infinite(), "spread point is not");

        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 1);
        for i in 0..5 {
            assert_eq!(c.labels[i], Some(0), "clump member {i}");
        }
        assert!(c.labels[5..].iter().all(Option::is_none), "spread = noise");
    }

    #[test]
    fn dense_vs_sparse_blob_auto_threshold() {
        // A tight blob plus uniform scatter: auto extraction should carve
        // out at least the tight blob rather than lumping everything.
        let mut pts = blob(0.0, 0.0, 50, 8.0);
        for i in 0..30 {
            let a = i as f64 * 1.7;
            pts.push(LocalPoint::new(
                800.0 + 700.0 * a.cos(),
                800.0 + 700.0 * a.sin(),
            ));
        }
        let o = Optics::run(&pts, OpticsParams::new(5_000.0, 5));
        let c = o.extract_auto();
        assert!(c.n_clusters >= 1);
        // The tight blob must be one cluster.
        let l0 = c.labels[0];
        assert!(l0.is_some());
        assert!(c.labels[..50].iter().all(|l| *l == l0));
    }
}
