//! OPTICS: Ordering Points To Identify the Clustering Structure
//! (Ankerst, Breunig, Kriegel, Sander — the paper's ref \[27\]).
//!
//! Algorithm 4 of the paper invokes `Optics({Pt^k(ST)}, sigma)` to cluster
//! the k-th stay points of a coarse pattern *without* a hand-tuned distance
//! threshold: "It initiates with a default maximum distance threshold and
//! cluster size threshold sigma … It chooses an optimal distance threshold
//! with sufficiently high density for each cluster." We reproduce that with
//! the classic OPTICS ordering plus an automatic threshold picked at the
//! largest gap (knee) of the sorted reachability profile.

use crate::Clustering;
use pm_geo::{GridIndex, LocalPoint};

/// OPTICS parameters.
#[derive(Clone, Copy, Debug)]
pub struct OpticsParams {
    /// Generous upper bound on the neighbourhood radius, in meters. This is
    /// the "default maximum distance threshold" of the paper; it only bounds
    /// work, it does not tune the clustering.
    pub max_eps: f64,
    /// Minimum cluster size; Algorithm 4 passes the support threshold sigma.
    pub min_pts: usize,
    /// Worker threads for the neighbourhood precompute (`0` = all cores,
    /// `1` = serial). Has no effect on the ordering produced.
    pub threads: usize,
}

impl OpticsParams {
    /// Creates a parameter set, validating `max_eps > 0` and `min_pts >= 1`.
    /// Runs serially; see [`Self::with_threads`].
    pub fn new(max_eps: f64, min_pts: usize) -> Self {
        assert!(
            max_eps.is_finite() && max_eps > 0.0,
            "max_eps must be positive, got {max_eps}"
        );
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Self {
            max_eps,
            min_pts,
            threads: 1,
        }
    }

    /// Spreads the range queries over `threads` workers (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Heap entry `(reachability, point id)` for the lazy-deletion queue in
/// [`Optics::run_finite`].
///
/// All four comparison traits agree with `f64::total_cmp`, which totally
/// orders every bit pattern including NaN. A derived `PartialEq` would use
/// the IEEE `==` instead (`NaN != NaN`), silently violating the `Eq`/`Ord`
/// consistency that `BinaryHeap` relies on the moment a NaN reachability
/// slips in; the manual impl keeps `a == b` exactly equivalent to
/// `a.cmp(b) == Equal`.
#[derive(Debug)]
struct HeapEntry(f64, usize);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// The OPTICS ordering of a point set.
#[derive(Debug, Clone)]
pub struct Optics {
    params: OpticsParams,
    /// Visit order: a permutation of `0..n`.
    order: Vec<usize>,
    /// Reachability distance of each point *in visit order*;
    /// `f64::INFINITY` marks the start of a new density-connected component.
    reachability: Vec<f64>,
    /// Core distance of each point, indexed by original point id.
    core_distance: Vec<f64>,
    /// The input points (kept for border-point recovery in extraction).
    points: Vec<LocalPoint>,
}

impl Optics {
    /// Computes the OPTICS ordering of `points`.
    ///
    /// Points with NaN or infinite coordinates have no meaningful density
    /// structure: they are appended to the end of the ordering as isolated
    /// components (infinite reachability and core distance) and never join a
    /// cluster on extraction, while the finite points are ordered exactly as
    /// they would be without the corrupt ones.
    pub fn run(points: &[LocalPoint], params: OpticsParams) -> Self {
        let Some((subset, original)) = crate::finite_subset(points) else {
            return Self::run_finite(points, params);
        };
        let sub = Self::run_finite(&subset, params);
        let mut order: Vec<usize> = sub.order.iter().map(|&k| original[k]).collect();
        let mut reachability = sub.reachability;
        let mut core_distance = vec![f64::INFINITY; points.len()];
        for (k, &i) in original.iter().enumerate() {
            core_distance[i] = sub.core_distance[k];
        }
        for (i, p) in points.iter().enumerate() {
            if !crate::is_finite_point(p) {
                order.push(i);
                reachability.push(f64::INFINITY);
            }
        }
        Self {
            params,
            order,
            reachability,
            core_distance,
            points: points.to_vec(),
        }
    }

    /// [`Optics::run`] under observation: times the run as a
    /// `cluster.optics` span (tagged with the worker slot when invoked from
    /// inside a parallel region) and counts runs and points clustered.
    /// Observability is strictly one-way — the ordering produced is the one
    /// [`Optics::run`] produces.
    pub fn run_obs(points: &[LocalPoint], params: OpticsParams, obs: &pm_obs::Obs) -> Self {
        let span = obs.span("cluster.optics");
        let out = Self::run(points, params);
        span.finish();
        obs.incr("cluster.optics_runs", 1);
        obs.incr("cluster.optics_points", points.len() as u64);
        out
    }

    /// The core ordering sweep; `points` must all be finite.
    fn run_finite(points: &[LocalPoint], params: OpticsParams) -> Self {
        let n = points.len();
        let mut order = Vec::with_capacity(n);
        let mut reach_in_order = Vec::with_capacity(n);
        let mut core_distance = vec![f64::INFINITY; n];
        if n == 0 {
            return Self {
                params,
                order,
                reachability: reach_in_order,
                core_distance,
                points: Vec::new(),
            };
        }

        let index = GridIndex::build(points, params.max_eps.max(1e-9));
        let mut processed = vec![false; n];
        // Tentative reachability per original id, updated as the wavefront
        // expands; INFINITY until first touched.
        let mut reach = vec![f64::INFINITY; n];
        let mut nbrs = Vec::new();

        // The wavefront sweep is sequential, but its range queries are
        // independent per point: with more than one worker, precompute every
        // neighbourhood up front. The lists match lazy `range_into` output
        // in content and order, so the ordering is byte-identical.
        let hoods: Option<Vec<Vec<usize>>> = (pm_runtime::resolve_threads(params.threads) > 1)
            .then(|| {
                pm_runtime::par_map(points, params.threads, |p| index.range(*p, params.max_eps))
            });
        let neighbours_of = |i: usize, buf: &mut Vec<usize>| match &hoods {
            Some(h) => {
                buf.clear();
                buf.extend_from_slice(&h[i]);
            }
            None => index.range_into(points[i], params.max_eps, buf),
        };

        // Lazy-deletion min-heap over (reachability, point): decrease-key is
        // emulated by pushing a fresh entry and skipping stale pops (the
        // stored reachability no longer matches). Keeps the sweep
        // O(n log n + total neighbour work) at corpus scale.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut dists: Vec<f64> = Vec::new();
        for seed in 0..n {
            if processed[seed] {
                continue;
            }
            let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
            heap.push(Reverse(HeapEntry(f64::INFINITY, seed)));
            reach[seed] = f64::INFINITY;
            while let Some(Reverse(HeapEntry(r, p))) = heap.pop() {
                if processed[p] || r > reach[p] {
                    continue; // stale entry
                }
                processed[p] = true;
                order.push(p);
                reach_in_order.push(reach[p]);

                neighbours_of(p, &mut nbrs);
                if nbrs.len() >= params.min_pts {
                    // Core distance: distance to the min_pts-th neighbour.
                    dists.clear();
                    dists.extend(nbrs.iter().map(|&q| points[q].distance(&points[p])));
                    dists.sort_by(f64::total_cmp);
                    let core = dists[params.min_pts - 1];
                    core_distance[p] = core;
                    for &q in &nbrs {
                        if processed[q] {
                            continue;
                        }
                        let new_reach = core.max(points[q].distance(&points[p]));
                        if new_reach < reach[q] {
                            reach[q] = new_reach;
                            heap.push(Reverse(HeapEntry(new_reach, q)));
                        }
                    }
                }
            }
        }

        Self {
            params,
            order,
            reachability: reach_in_order,
            core_distance,
            points: points.to_vec(),
        }
    }

    /// The visit order (a permutation of point indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Reachability distances aligned with [`Optics::order`].
    pub fn reachability(&self) -> &[f64] {
        &self.reachability
    }

    /// Core distance of point `idx` (original indexing); infinite when the
    /// point is never a core point at `max_eps`.
    pub fn core_distance(&self, idx: usize) -> f64 {
        self.core_distance[idx]
    }

    /// Extracts a flat clustering at a fixed reachability threshold
    /// `eps_prime`; equivalent to DBSCAN at that radius (border-point
    /// assignment aside).
    pub fn extract_at(&self, eps_prime: f64) -> Clustering {
        let n = self.order.len();
        let mut labels = vec![None; n];
        let mut n_clusters = 0usize;
        let mut current: Option<usize> = None;
        // Last point provisionally labelled noise; it gets adopted when the
        // very next point turns out density-reachable at eps' (the component
        // seed was a border point rather than a core point).
        let mut pending_noise: Option<usize> = None;
        for (pos, &p) in self.order.iter().enumerate() {
            if self.reachability[pos] > eps_prime {
                // Not density-reachable at eps': start a new cluster only if
                // p itself is a core point at eps'.
                if self.core_distance[p] <= eps_prime {
                    current = Some(n_clusters);
                    n_clusters += 1;
                    labels[p] = current;
                    pending_noise = None;
                } else {
                    current = None; // noise (possibly a border seed)
                    pending_noise = Some(p);
                }
            } else {
                if current.is_none() {
                    // Density-reachable from the preceding noise point: that
                    // point seeds a cluster after all.
                    current = Some(n_clusters);
                    n_clusters += 1;
                    if let Some(seed) = pending_noise.take() {
                        labels[seed] = current;
                    }
                }
                labels[p] = current;
            }
        }
        // Border-point recovery: classic ExtractDBSCAN leaves a point as
        // noise when it heads its component in the ordering but is not core
        // at eps'. DBSCAN would label such a point as border; adopt the
        // label of the nearest clustered point within eps'.
        if n_clusters > 0 && labels.iter().any(Option::is_none) {
            let index = GridIndex::build(&self.points, eps_prime.max(1e-9));
            let mut adopted: Vec<(usize, usize)> = Vec::new();
            for p in 0..n {
                if labels[p].is_some() {
                    continue;
                }
                let mut best: Option<(f64, usize)> = None;
                for q in index.range(self.points[p], eps_prime) {
                    if let Some(l) = labels[q] {
                        let d = self.points[p].distance(&self.points[q]);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, l));
                        }
                    }
                }
                if let Some((_, l)) = best {
                    adopted.push((p, l));
                }
            }
            for (p, l) in adopted {
                labels[p] = Some(l);
            }
        }

        // Drop clusters smaller than min_pts: OPTICS extraction can emit
        // fragments at a threshold below the local core distance.
        let mut sizes = vec![0usize; n_clusters];
        for l in labels.iter().flatten() {
            sizes[*l] += 1;
        }
        let mut remap = vec![None; n_clusters];
        let mut kept = 0usize;
        for (c, &s) in sizes.iter().enumerate() {
            if s >= self.params.min_pts {
                remap[c] = Some(kept);
                kept += 1;
            }
        }
        for l in labels.iter_mut() {
            *l = l.and_then(|c| remap[c]);
        }
        Clustering {
            labels,
            n_clusters: kept,
        }
    }

    /// Extracts a flat clustering with automatically chosen, *per-cluster*
    /// thresholds — the behaviour Algorithm 4 relies on ("chooses an
    /// optimal distance threshold with sufficiently high density for each
    /// cluster").
    ///
    /// A global knee in the sorted reachability profile yields coarse
    /// clusters (contiguous runs of the ordering); each run is then refined
    /// recursively: if its own interior reachability shows a strong valley
    /// structure (a >= 1.5x gap that splits the run into two or more
    /// `min_pts`-sized sub-runs), the run splits at that local threshold.
    /// This is what lets one coarse cluster spanning two nearby venues
    /// resolve into two fine-grained groups — the advantage the paper
    /// credits OPTICS for in Fig. 11.
    pub fn extract_auto(&self) -> Clustering {
        let n = self.order.len();
        if n == 0 {
            return Clustering {
                labels: Vec::new(),
                n_clusters: 0,
            };
        }

        // Components: runs delimited by INFINITY reachability (points not
        // density-reachable from anything processed before them).
        let mut runs: Vec<(usize, usize)> = Vec::new(); // [lo, hi) positions
        let mut lo = 0usize;
        for pos in 1..n {
            if self.reachability[pos].is_infinite() {
                runs.push((lo, pos));
                lo = pos;
            }
        }
        runs.push((lo, n));

        // Per-run recursive refinement at local valley thresholds.
        let mut final_runs = Vec::new();
        for run in runs {
            self.refine_run(run, &mut final_runs);
        }

        // Materialize labels; runs smaller than min_pts are noise. Non-finite
        // points form trailing singleton runs — they must never cluster, even
        // at min_pts = 1, so membership is restricted to finite points.
        let mut labels = vec![None; n];
        let mut n_clusters = 0usize;
        for (a, b) in final_runs {
            let members: Vec<usize> = self.order[a..b]
                .iter()
                .copied()
                .filter(|&p| crate::is_finite_point(&self.points[p]))
                .collect();
            if members.len() < self.params.min_pts {
                continue;
            }
            for p in members {
                labels[p] = Some(n_clusters);
            }
            n_clusters += 1;
        }
        Clustering { labels, n_clusters }
    }

    /// Recursively splits one ordering run `[lo, hi)` at its strongest
    /// interior reachability valley — the per-cluster "optimal distance
    /// threshold" of Algorithm 4. A split happens when the strongest
    /// relative gap is pronounced (>= 1.5x when it yields two
    /// `min_pts`-sized sub-runs, >= 5x when it only strips outliers off one
    /// cluster); otherwise the run is emitted as one cluster.
    fn refine_run(&self, run: (usize, usize), out: &mut Vec<(usize, usize)>) {
        let (lo, hi) = run;
        if hi - lo < self.params.min_pts + 1 {
            out.push(run);
            return;
        }
        // Interior reachability (the head's value belongs to the previous
        // run / component boundary).
        let mut interior: Vec<f64> = self.reachability[lo + 1..hi]
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .collect();
        if interior.len() < 4 {
            out.push(run);
            return;
        }
        interior.sort_by(f64::total_cmp);
        // Strongest relative gap anywhere in the interior profile.
        let mut best_ratio = 1.0;
        let mut t_local = f64::INFINITY;
        for i in 0..interior.len() - 1 {
            let a = interior[i].max(1e-9);
            let b = interior[i + 1];
            let ratio = b / a;
            if ratio > best_ratio {
                best_ratio = ratio;
                t_local = a;
            }
        }
        if best_ratio < 1.5 {
            out.push(run);
            return;
        }
        // Split at positions whose reachability exceeds the local threshold.
        let mut subs: Vec<(usize, usize)> = Vec::new();
        let mut a = lo;
        for pos in lo + 1..hi {
            if self.reachability[pos] > t_local {
                subs.push((a, pos));
                a = pos;
            }
        }
        subs.push((a, hi));
        let viable = subs
            .iter()
            .filter(|(x, y)| y - x >= self.params.min_pts)
            .count();
        // A weak gap may only shave noise off one real cluster; demand a
        // genuine two-cluster split, or an order-of-magnitude gap (a big
        // venue with a far-away clump) when only one sub-run is viable.
        if subs.len() < 2 || viable == 0 || (best_ratio < 5.0 && viable < 2) {
            out.push(run);
            return;
        }
        for sub in subs {
            self.refine_run(sub, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<LocalPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963;
                let r = spread * (i as f64 / n as f64).sqrt();
                LocalPoint::new(cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn ordering_is_permutation() {
        let pts = blob(0.0, 0.0, 30, 25.0);
        let o = Optics::run(&pts, OpticsParams::new(200.0, 4));
        let mut order = o.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
        assert_eq!(o.reachability().len(), 30);
    }

    #[test]
    fn first_point_of_each_component_has_infinite_reachability() {
        let mut pts = blob(0.0, 0.0, 20, 10.0);
        pts.extend(blob(10_000.0, 0.0, 20, 10.0));
        let o = Optics::run(&pts, OpticsParams::new(100.0, 3));
        let inf_count = o.reachability().iter().filter(|r| r.is_infinite()).count();
        assert_eq!(inf_count, 2, "one INFINITY per connected component");
    }

    #[test]
    fn auto_extraction_separates_two_blobs() {
        let mut pts = blob(0.0, 0.0, 40, 15.0);
        pts.extend(blob(600.0, 0.0, 40, 15.0));
        let o = Optics::run(&pts, OpticsParams::new(1_000.0, 5));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 2, "labels: {:?}", c.labels);
        let l0 = c.labels[0].unwrap();
        let l1 = c.labels[40].unwrap();
        assert_ne!(l0, l1);
    }

    #[test]
    fn extract_at_matches_dbscan_cluster_count() {
        let mut pts = blob(0.0, 0.0, 30, 12.0);
        pts.extend(blob(300.0, 300.0, 30, 12.0));
        pts.push(LocalPoint::new(150.0, 150.0)); // isolated noise
        let o = Optics::run(&pts, OpticsParams::new(500.0, 4));
        let c = o.extract_at(20.0);
        let d = crate::dbscan(&pts, crate::DbscanParams::new(20.0, 4));
        assert_eq!(c.n_clusters, d.n_clusters);
        assert!(c.labels[60].is_none(), "isolated point is noise");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let o = Optics::run(&[], OpticsParams::new(100.0, 3));
        assert_eq!(o.extract_auto().n_clusters, 0);

        let o = Optics::run(&[LocalPoint::ORIGIN], OpticsParams::new(100.0, 3));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.labels, vec![None]);
    }

    #[test]
    fn min_pts_filters_small_fragments() {
        // 3 points cannot form a cluster when min_pts = 5.
        let pts = blob(0.0, 0.0, 3, 2.0);
        let o = Optics::run(&pts, OpticsParams::new(100.0, 5));
        assert_eq!(o.extract_auto().n_clusters, 0);
    }

    #[test]
    fn core_distance_is_kth_neighbour_distance() {
        // Line of points 10m apart; min_pts=2 => core distance = 10m for
        // interior points (itself + 1 neighbour at 10m).
        let pts: Vec<LocalPoint> = (0..5)
            .map(|i| LocalPoint::new(i as f64 * 10.0, 0.0))
            .collect();
        let o = Optics::run(&pts, OpticsParams::new(100.0, 2));
        assert!((o.core_distance(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_points_stay_noise() {
        let clean: Vec<LocalPoint> = {
            let mut pts = blob(0.0, 0.0, 40, 15.0);
            pts.extend(blob(600.0, 0.0, 40, 15.0));
            pts
        };
        let baseline = Optics::run(&clean, OpticsParams::new(1_000.0, 5)).extract_auto();

        let mut pts = clean.clone();
        pts.insert(3, LocalPoint::new(f64::NAN, 0.0));
        pts.push(LocalPoint::new(f64::INFINITY, 1.0));
        let o = Optics::run(&pts, OpticsParams::new(1_000.0, 5));

        // Ordering is still a permutation of all inputs.
        let mut order = o.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        assert!(o.core_distance(3).is_infinite());

        let c = o.extract_auto();
        assert!(c.labels[3].is_none());
        assert!(c.labels[pts.len() - 1].is_none());
        assert_eq!(c.n_clusters, baseline.n_clusters);
        let finite_labels: Vec<_> = (0..pts.len())
            .filter(|&i| pts[i].x.is_finite() && pts[i].y.is_finite())
            .map(|i| c.labels[i])
            .collect();
        assert_eq!(finite_labels, baseline.labels);

        let at = o.extract_at(20.0);
        assert!(at.labels[3].is_none());
        assert!(at.labels[pts.len() - 1].is_none());
    }

    #[test]
    fn singleton_non_finite_never_clusters_at_min_pts_one() {
        let pts = vec![LocalPoint::new(f64::NAN, f64::NAN)];
        let o = Optics::run(&pts, OpticsParams::new(100.0, 1));
        let c = o.extract_auto();
        assert_eq!(c.n_clusters, 0);
        assert_eq!(c.labels, vec![None]);
    }

    #[test]
    fn heap_entry_comparisons_are_total_and_consistent() {
        use std::cmp::Ordering;
        let nan_a = HeapEntry(f64::NAN, 3);
        let nan_b = HeapEntry(f64::NAN, 3);
        // total_cmp orders NaN; the manual PartialEq must agree with Ord
        // (the derived f64 `==` would say NaN != NaN here).
        assert_eq!(nan_a.cmp(&nan_b), Ordering::Equal);
        assert!(nan_a == nan_b, "PartialEq must match Ord for NaN payloads");
        assert_eq!(nan_a.partial_cmp(&nan_b), Some(Ordering::Equal));

        // NaN sorts after every finite value and +inf under total_cmp, so a
        // NaN reachability can never shadow a real candidate at the heap top.
        let finite = HeapEntry(1.0, 0);
        let inf = HeapEntry(f64::INFINITY, 1);
        assert_eq!(finite.cmp(&nan_a), Ordering::Less);
        assert_eq!(inf.cmp(&nan_a), Ordering::Less);
        assert!(finite != nan_a);

        // Ties on reachability break on the point id, keeping the order
        // deterministic.
        assert_eq!(HeapEntry(2.0, 1).cmp(&HeapEntry(2.0, 2)), Ordering::Less);
        assert_eq!(HeapEntry(2.0, 2), HeapEntry(2.0, 2));
    }

    #[test]
    fn threaded_precompute_matches_serial_ordering() {
        let mut pts = blob(0.0, 0.0, 40, 15.0);
        pts.extend(blob(600.0, 0.0, 40, 15.0));
        pts.extend(blob(200.0, 500.0, 25, 10.0));
        pts.insert(7, LocalPoint::new(f64::NAN, 2.0));
        let serial = Optics::run(&pts, OpticsParams::new(1_000.0, 5));
        for threads in [2, 4] {
            let parallel = Optics::run(&pts, OpticsParams::new(1_000.0, 5).with_threads(threads));
            assert_eq!(serial.order(), parallel.order(), "threads = {threads}");
            let bits =
                |o: &Optics| -> Vec<u64> { o.reachability().iter().map(|r| r.to_bits()).collect() };
            assert_eq!(bits(&serial), bits(&parallel));
            assert_eq!(serial.extract_auto().labels, parallel.extract_auto().labels);
        }
    }

    #[test]
    fn dense_vs_sparse_blob_auto_threshold() {
        // A tight blob plus uniform scatter: auto extraction should carve
        // out at least the tight blob rather than lumping everything.
        let mut pts = blob(0.0, 0.0, 50, 8.0);
        for i in 0..30 {
            let a = i as f64 * 1.7;
            pts.push(LocalPoint::new(
                800.0 + 700.0 * a.cos(),
                800.0 + 700.0 * a.sin(),
            ));
        }
        let o = Optics::run(&pts, OpticsParams::new(5_000.0, 5));
        let c = o.extract_auto();
        assert!(c.n_clusters >= 1);
        // The tight blob must be one cluster.
        let l0 = c.labels[0];
        assert!(l0.is_some());
        assert!(c.labels[..50].iter().all(|l| *l == l0));
    }
}
