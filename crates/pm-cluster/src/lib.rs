//! Clustering substrate for the Pervasive Miner stack.
//!
//! The paper leans on four classical clustering algorithms, none of which it
//! re-derives; all are implemented here from scratch:
//!
//! - [`mod@dbscan`]: density-based clustering — the backbone of the ROI baseline
//!   (hot-region detection, ref \[21\]) and of the SDBSCAN competitor
//!   (ref \[19\]).
//! - [`optics`]: OPTICS ordering (Ankerst et al., ref \[27\]) with automatic
//!   threshold extraction, used by Algorithm 4 (*CounterpartCluster*) to
//!   cluster the k-th stay points of each coarse pattern.
//! - [`meanshift`]: Mean Shift mode seeking (Comaniciu & Meer, ref \[25\]),
//!   the refinement step of the Splitter competitor (ref \[17\]).
//! - [`mod@kmeans`]: K-Means (mentioned in ref \[21\]'s hybrid annotation
//!   algorithm), with k-means++ seeding.
//!
//! [`kernel`] holds the Gaussian distribution coefficient of the paper's
//! Eq. 2, shared by popularity estimation and semantic recognition.
//! [`ndim`] generalizes K-Means and Mean Shift to N-dimensional rows for
//! the user-embedding spaces of pm-cohort, with the same seeded
//! determinism discipline as the 2-D variants.

pub mod dbscan;
pub mod kernel;
pub mod kmeans;
pub mod meanshift;
pub mod ndim;
pub(crate) mod neighborhoods;
pub mod optics;

pub use dbscan::{dbscan, DbscanParams};
pub use kernel::{gaussian_coeff, GaussianKernel};
pub use kmeans::{kmeans, KMeansParams, KMeansResult};
pub use meanshift::{mean_shift, MeanShiftParams, MeanShiftResult};
pub use ndim::{
    kmeans_nd, mean_shift_nd, KMeansNdParams, KMeansNdResult, MeanShiftNdParams, MeanShiftNdResult,
};
pub use optics::{Optics, OpticsParams, OpticsScratch};

use pm_geo::LocalPoint;

/// Whether a point has finite coordinates on both axes.
pub(crate) fn is_finite_point(p: &LocalPoint) -> bool {
    p.x.is_finite() && p.y.is_finite()
}

/// Splits `points` into its finite subset plus, per kept point, the original
/// index. Returns `None` when every point is finite — the common case — so
/// callers can skip the copy and run on the original slice.
///
/// NaN and infinite coordinates poison both distance comparisons and the
/// spatial index extent, so every algorithm in this crate masks them out up
/// front and reports the affected points as noise (`None` label); finite
/// points are clustered exactly as they would be without the corrupt ones.
pub(crate) fn finite_subset(points: &[LocalPoint]) -> Option<(Vec<LocalPoint>, Vec<usize>)> {
    if points.iter().all(is_finite_point) {
        return None;
    }
    let mut subset = Vec::with_capacity(points.len());
    let mut original = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if is_finite_point(p) {
            subset.push(*p);
            original.push(i);
        }
    }
    Some((subset, original))
}

/// A flat clustering: `labels[i]` is the cluster of point `i` (`None` =
/// noise), `n_clusters` the number of clusters, labelled `0..n_clusters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per-point cluster assignment; `None` marks noise/outliers.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub n_clusters: usize,
}

impl Clustering {
    /// Groups point indices by cluster label; noise points are omitted.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, label) in self.labels.iter().enumerate() {
            if let Some(c) = label {
                out[*c].push(i);
            }
        }
        out
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_groups_and_noise() {
        let c = Clustering {
            labels: vec![Some(0), None, Some(1), Some(0), None],
            n_clusters: 2,
        };
        assert_eq!(c.clusters(), vec![vec![0, 3], vec![2]]);
        assert_eq!(c.n_noise(), 2);
    }
}
