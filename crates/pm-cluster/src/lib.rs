//! Clustering substrate for the Pervasive Miner stack.
//!
//! The paper leans on four classical clustering algorithms, none of which it
//! re-derives; all are implemented here from scratch:
//!
//! - [`dbscan`]: density-based clustering — the backbone of the ROI baseline
//!   (hot-region detection, ref \[21\]) and of the SDBSCAN competitor
//!   (ref \[19\]).
//! - [`optics`]: OPTICS ordering (Ankerst et al., ref \[27\]) with automatic
//!   threshold extraction, used by Algorithm 4 (*CounterpartCluster*) to
//!   cluster the k-th stay points of each coarse pattern.
//! - [`meanshift`]: Mean Shift mode seeking (Comaniciu & Meer, ref \[25\]),
//!   the refinement step of the Splitter competitor (ref \[17\]).
//! - [`kmeans`]: K-Means (mentioned in ref \[21\]'s hybrid annotation
//!   algorithm), with k-means++ seeding.
//!
//! [`kernel`] holds the Gaussian distribution coefficient of the paper's
//! Eq. 2, shared by popularity estimation and semantic recognition.

pub mod dbscan;
pub mod kernel;
pub mod kmeans;
pub mod meanshift;
pub mod optics;

pub use dbscan::{dbscan, DbscanParams};
pub use kernel::{gaussian_coeff, GaussianKernel};
pub use kmeans::{kmeans, KMeansParams, KMeansResult};
pub use meanshift::{mean_shift, MeanShiftParams, MeanShiftResult};
pub use optics::{Optics, OpticsParams};

/// A flat clustering: `labels[i]` is the cluster of point `i` (`None` =
/// noise), `n_clusters` the number of clusters, labelled `0..n_clusters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per-point cluster assignment; `None` marks noise/outliers.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters found.
    pub n_clusters: usize,
}

impl Clustering {
    /// Groups point indices by cluster label; noise points are omitted.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, label) in self.labels.iter().enumerate() {
            if let Some(c) = label {
                out[*c].push(i);
            }
        }
        out
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_groups_and_noise() {
        let c = Clustering {
            labels: vec![Some(0), None, Some(1), Some(0), None],
            n_clusters: 2,
        };
        assert_eq!(c.clusters(), vec![vec![0, 3], vec![2]]);
        assert_eq!(c.n_noise(), 2);
    }
}
