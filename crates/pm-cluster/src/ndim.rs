//! N-dimensional K-Means and Mean Shift over flat row-major data.
//!
//! The 2-D variants in [`mod@crate::kmeans`] and [`crate::meanshift`] operate on
//! [`pm_geo::LocalPoint`] — the right shape for the paper's spatial
//! substrate, and deliberately so. User-embedding spaces (pm-cohort's
//! category-transition profiles) are higher-dimensional, so this module
//! generalizes both algorithms to `dims`-dimensional rows stored flat
//! (`data[i * dims .. (i + 1) * dims]` is point `i`), keeping the exact
//! determinism discipline of the 2-D code: ChaCha8-seeded k-means++
//! initialization, fixed iteration order, and non-finite rows masked out as
//! noise instead of poisoning every centroid.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for [`kmeans_nd`].
#[derive(Clone, Copy, Debug)]
pub struct KMeansNdParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement (Euclidean).
    pub tol: f64,
    /// RNG seed for k-means++ initialization (deterministic runs).
    pub seed: u64,
}

impl KMeansNdParams {
    /// Parameter set with the same defaults as the 2-D variant
    /// (100 iterations, 1e-4 tolerance, seed 0).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            max_iter: 100,
            tol: 1e-4,
            seed: 0,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of an N-dimensional K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansNdResult {
    /// Per-row cluster assignment; rows with non-finite coordinates are
    /// labelled `None`, everything else `Some(0..n_clusters)`.
    pub labels: Vec<Option<usize>>,
    /// Number of clusters actually produced (≤ `k`, clamped to the number
    /// of finite rows).
    pub n_clusters: usize,
    /// Final centroids, row-major (`n_clusters * dims` values).
    pub centroids: Vec<f64>,
    /// Sum of squared distances of finite rows to their centroid.
    pub inertia: f64,
}

/// Lloyd's algorithm with k-means++ seeding over `dims`-dimensional rows.
///
/// `data.len()` must be a multiple of `dims`. Deterministic for a given
/// (data, params) pair: the RNG is seeded, ties in the assignment step go to
/// the lowest centroid index, and accumulation order is the row order.
pub fn kmeans_nd(data: &[f64], dims: usize, params: KMeansNdParams) -> KMeansNdResult {
    assert!(dims >= 1, "dims must be at least 1");
    assert_eq!(data.len() % dims, 0, "data must be whole rows");
    let n = data.len() / dims;
    let finite: Vec<usize> = (0..n)
        .filter(|&i| row(data, dims, i).iter().all(|v| v.is_finite()))
        .collect();
    let k = params.k.min(finite.len());
    if k == 0 {
        return KMeansNdResult {
            labels: vec![None; n],
            n_clusters: 0,
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }

    let mut centroids = plus_plus_init_nd(data, dims, &finite, k, params.seed);
    let mut assign = vec![0usize; finite.len()];

    for _ in 0..params.max_iter {
        for (slot, &i) in assign.iter_mut().zip(&finite) {
            *slot = nearest_row(row(data, dims, i), &centroids, dims);
        }
        let mut sums = vec![0.0; k * dims];
        let mut counts = vec![0usize; k];
        for (slot, &i) in assign.iter().zip(&finite) {
            let p = row(data, dims, i);
            for (s, v) in sums[slot * dims..(slot + 1) * dims].iter_mut().zip(p) {
                *s += v;
            }
            counts[*slot] += 1;
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // keep the old centroid for empty clusters
            }
            let inv = 1.0 / counts[c] as f64;
            let mut d_sq = 0.0;
            for d in 0..dims {
                let next = sums[c * dims + d] * inv;
                let delta = next - centroids[c * dims + d];
                d_sq += delta * delta;
                centroids[c * dims + d] = next;
            }
            movement += d_sq.sqrt();
        }
        if movement < params.tol {
            break;
        }
    }

    let mut labels = vec![None; n];
    let mut inertia = 0.0;
    for &i in &finite {
        let p = row(data, dims, i);
        let c = nearest_row(p, &centroids, dims);
        labels[i] = Some(c);
        inertia += dist_sq(p, &centroids[c * dims..(c + 1) * dims]);
    }

    KMeansNdResult {
        labels,
        n_clusters: k,
        centroids,
        inertia,
    }
}

/// Parameters for [`mean_shift_nd`].
#[derive(Clone, Copy, Debug)]
pub struct MeanShiftNdParams {
    /// Flat-kernel radius (Euclidean) for the mean computation.
    pub bandwidth: f64,
    /// Convergence tolerance on per-point shift distance.
    pub tol: f64,
    /// Maximum shift iterations per point.
    pub max_iter: usize,
}

impl MeanShiftNdParams {
    /// Parameter set with the 2-D variant's defaults (1e-3 tolerance,
    /// 300 iterations).
    pub fn new(bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        Self {
            bandwidth,
            tol: 1e-3,
            max_iter: 300,
        }
    }
}

/// Result of an N-dimensional Mean Shift run.
#[derive(Debug, Clone)]
pub struct MeanShiftNdResult {
    /// Per-row mode assignment; non-finite rows are `None`.
    pub labels: Vec<Option<usize>>,
    /// Number of distinct modes found.
    pub n_modes: usize,
    /// Converged modes, row-major (`n_modes * dims` values), in order of
    /// first discovery (lowest contributing row index first).
    pub modes: Vec<f64>,
}

/// Flat-kernel Mean Shift over `dims`-dimensional rows.
///
/// Each finite row hill-climbs to the mean of its bandwidth neighborhood
/// until the shift falls under `tol`; converged positions merge into one
/// mode when within `bandwidth / 2` of an earlier one (first-come order, so
/// the result is deterministic). Neighborhoods are exact O(n²) scans — this
/// is the small-population fallback, not the bulk path.
pub fn mean_shift_nd(data: &[f64], dims: usize, params: MeanShiftNdParams) -> MeanShiftNdResult {
    assert!(dims >= 1, "dims must be at least 1");
    assert_eq!(data.len() % dims, 0, "data must be whole rows");
    let n = data.len() / dims;
    let finite: Vec<usize> = (0..n)
        .filter(|&i| row(data, dims, i).iter().all(|v| v.is_finite()))
        .collect();
    let bw_sq = params.bandwidth * params.bandwidth;
    let tol_sq = params.tol * params.tol;

    // Shift every finite row to its local mode.
    let mut shifted = vec![0.0; finite.len() * dims];
    for (s, &i) in finite.iter().enumerate() {
        let mut pos = row(data, dims, i).to_vec();
        for _ in 0..params.max_iter {
            let mut mean = vec![0.0; dims];
            let mut count = 0usize;
            for &j in &finite {
                let q = row(data, dims, j);
                if dist_sq(&pos, q) <= bw_sq {
                    for (m, v) in mean.iter_mut().zip(q) {
                        *m += v;
                    }
                    count += 1;
                }
            }
            if count == 0 {
                break; // isolated point: it is its own mode
            }
            let inv = 1.0 / count as f64;
            for m in mean.iter_mut() {
                *m *= inv;
            }
            let moved = dist_sq(&pos, &mean);
            pos.copy_from_slice(&mean);
            if moved <= tol_sq {
                break;
            }
        }
        shifted[s * dims..(s + 1) * dims].copy_from_slice(&pos);
    }

    // Merge converged positions into modes, first-come order.
    let merge_sq = bw_sq / 4.0;
    let mut modes: Vec<f64> = Vec::new();
    let mut n_modes = 0usize;
    let mut labels = vec![None; n];
    for (s, &i) in finite.iter().enumerate() {
        let pos = &shifted[s * dims..(s + 1) * dims];
        let mut assigned = None;
        for m in 0..n_modes {
            if dist_sq(pos, &modes[m * dims..(m + 1) * dims]) <= merge_sq {
                assigned = Some(m);
                break;
            }
        }
        let m = assigned.unwrap_or_else(|| {
            modes.extend_from_slice(pos);
            n_modes += 1;
            n_modes - 1
        });
        labels[i] = Some(m);
    }

    MeanShiftNdResult {
        labels,
        n_modes,
        modes,
    }
}

#[inline]
fn row(data: &[f64], dims: usize, i: usize) -> &[f64] {
    &data[i * dims..(i + 1) * dims]
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

fn nearest_row(p: &[f64], centroids: &[f64], dims: usize) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, m) in centroids.chunks_exact(dims).enumerate() {
        let d = dist_sq(p, m);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// k-means++ seeding over the finite rows, mirroring the 2-D implementation.
fn plus_plus_init_nd(data: &[f64], dims: usize, finite: &[usize], k: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = Vec::with_capacity(k * dims);
    let first = finite[rng.gen_range(0..finite.len())];
    centroids.extend_from_slice(row(data, dims, first));
    let mut d_sq: Vec<f64> = finite
        .iter()
        .map(|&i| dist_sq(row(data, dims, i), &centroids[..dims]))
        .collect();
    while centroids.len() < k * dims {
        let total: f64 = d_sq.iter().sum();
        let next = if total <= f64::EPSILON {
            // All remaining rows coincide with existing centroids.
            finite[rng.gen_range(0..finite.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = finite.len() - 1;
            for (i, &d) in d_sq.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            finite[chosen]
        };
        let next_row = row(data, dims, next).to_vec();
        for (slot, &i) in d_sq.iter_mut().zip(finite) {
            *slot = slot.min(dist_sq(row(data, dims, i), &next_row));
        }
        centroids.extend_from_slice(&next_row);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 3-D blobs around (0,0,0) and (100,100,100).
    fn blobs() -> Vec<f64> {
        let mut data = Vec::new();
        for i in 0..40 {
            let t = i as f64 * 0.37;
            let (base, r) = if i < 20 { (0.0, 3.0) } else { (100.0, 3.0) };
            data.extend_from_slice(&[
                base + r * t.sin(),
                base + r * t.cos(),
                base + r * (t * 0.7).sin(),
            ]);
        }
        data
    }

    #[test]
    fn kmeans_nd_separates_blobs() {
        let data = blobs();
        let r = kmeans_nd(&data, 3, KMeansNdParams::new(2).with_seed(7));
        assert_eq!(r.n_clusters, 2);
        let l0 = r.labels[0];
        assert!(r.labels[..20].iter().all(|l| *l == l0));
        assert!(r.labels[20..].iter().all(|l| *l != l0));
        assert!(r.inertia.is_finite());
    }

    #[test]
    fn kmeans_nd_deterministic_given_seed() {
        let data = blobs();
        let a = kmeans_nd(&data, 3, KMeansNdParams::new(3).with_seed(42));
        let b = kmeans_nd(&data, 3, KMeansNdParams::new(3).with_seed(42));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    #[test]
    fn kmeans_nd_clamps_k_and_handles_empty() {
        let r = kmeans_nd(&[1.0, 2.0], 2, KMeansNdParams::new(5));
        assert_eq!(r.n_clusters, 1);
        assert!(r.inertia < 1e-12);
        let e = kmeans_nd(&[], 4, KMeansNdParams::new(3));
        assert_eq!(e.n_clusters, 0);
        assert!(e.labels.is_empty());
    }

    #[test]
    fn kmeans_nd_masks_non_finite_rows() {
        let mut data = blobs();
        data.extend_from_slice(&[f64::NAN, 0.0, 0.0]);
        let r = kmeans_nd(&data, 3, KMeansNdParams::new(2).with_seed(7));
        assert_eq!(r.labels.last().copied().flatten(), None);
        let clean = kmeans_nd(&blobs(), 3, KMeansNdParams::new(2).with_seed(7));
        assert_eq!(&r.labels[..40], &clean.labels[..]);
        assert_eq!(r.centroids, clean.centroids);
    }

    #[test]
    fn mean_shift_nd_finds_two_modes() {
        let data = blobs();
        let r = mean_shift_nd(&data, 3, MeanShiftNdParams::new(20.0));
        assert_eq!(r.n_modes, 2);
        let l0 = r.labels[0];
        assert!(r.labels[..20].iter().all(|l| *l == l0));
        assert!(r.labels[20..].iter().all(|l| *l != l0));
    }

    #[test]
    fn mean_shift_nd_deterministic() {
        let data = blobs();
        let a = mean_shift_nd(&data, 3, MeanShiftNdParams::new(20.0));
        let b = mean_shift_nd(&data, 3, MeanShiftNdParams::new(20.0));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn mean_shift_nd_single_point_is_its_own_mode() {
        let r = mean_shift_nd(&[5.0, 5.0], 2, MeanShiftNdParams::new(1.0));
        assert_eq!(r.n_modes, 1);
        assert_eq!(r.labels, vec![Some(0)]);
    }
}
