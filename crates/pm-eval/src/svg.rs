//! SVG rendering of the City Semantic Diagram and mined patterns — the
//! medium of the paper's Fig. 6 (the Shanghai CSD map) and Fig. 14 (pattern
//! maps), producible without any plotting stack.
//!
//! Units draw as translucent disks coloured by dominant category; patterns
//! draw as arrowed polylines through their representative stay points,
//! stroke width scaled by support. Pure `std::fmt::Write` string assembly.

use pm_core::construct::CitySemanticDiagram;
use pm_core::extract::FinePattern;
use pm_core::types::Category;
use pm_geo::{BoundingBox, LocalPoint};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the data aspect ratio).
    pub width: f64,
    /// Margin around the data extent, in meters.
    pub margin_m: f64,
    /// Draw the semantic units layer.
    pub draw_units: bool,
    /// Draw the pattern layer.
    pub draw_patterns: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 1_000.0,
            margin_m: 300.0,
            draw_units: true,
            draw_patterns: true,
        }
    }
}

/// A qualitative 15-colour palette, one per category (Fig. 6's "each unit
/// owns different color").
pub fn category_color(c: Category) -> &'static str {
    const COLORS: [&str; Category::COUNT] = [
        "#1f77b4", // Residence
        "#ff7f0e", // Shop
        "#2ca02c", // Business
        "#d62728", // Restaurant
        "#9467bd", // Entertainment
        "#8c564b", // PublicService
        "#e377c2", // TrafficStation
        "#7f7f7f", // Education
        "#bcbd22", // Sports
        "#17becf", // Government
        "#aec7e8", // Industry
        "#ffbb78", // Financial
        "#98df8a", // Medical
        "#ff9896", // Hotel
        "#c5b0d5", // Tourism
    ];
    COLORS[c as usize]
}

/// Renders the diagram and/or patterns to an SVG document string.
pub fn render_svg(
    csd: Option<&CitySemanticDiagram>,
    patterns: &[FinePattern],
    options: &SvgOptions,
) -> String {
    // Data extent: unit centers plus pattern stays.
    let mut extent_pts: Vec<LocalPoint> = Vec::new();
    if let Some(csd) = csd {
        extent_pts.extend(csd.units().iter().map(|u| u.center));
    }
    for p in patterns {
        extent_pts.extend(p.stays.iter().map(|sp| sp.pos));
    }
    let bbox = BoundingBox::enclosing(&extent_pts)
        .unwrap_or(BoundingBox::new(
            LocalPoint::new(-100.0, -100.0),
            LocalPoint::new(100.0, 100.0),
        ))
        .inflate(options.margin_m);

    let scale = options.width / bbox.width().max(1.0);
    let height = (bbox.height() * scale).max(1.0);
    // SVG y grows downward; flip north up.
    let tx = |p: LocalPoint| -> (f64, f64) {
        (
            (p.x - bbox.min.x) * scale,
            height - (p.y - bbox.min.y) * scale,
        )
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {:.0} {height:.0}\">",
        options.width, options.width
    );
    let _ = writeln!(
        svg,
        "<rect width=\"100%\" height=\"100%\" fill=\"#fcfcf8\"/>"
    );

    // Units layer (Fig. 6).
    if let (Some(csd), true) = (csd, options.draw_units) {
        let _ = writeln!(
            svg,
            "<g id=\"units\" stroke=\"none\" fill-opacity=\"0.45\">"
        );
        for unit in csd.units() {
            let dominant = unit
                .distribution
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| Category::from_index(c))
                .unwrap_or(Category::Residence);
            let (cx, cy) = tx(unit.center);
            // Disk area tracks member count; clamp to a readable range.
            let r = (unit.members.len() as f64).sqrt().clamp(2.0, 18.0);
            let _ = writeln!(
                svg,
                "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{r:.1}\" fill=\"{}\">\
                 <title>unit: {} POIs, {}</title></circle>",
                category_color(dominant),
                unit.members.len(),
                xml_escape(&unit.tags.to_string())
            );
        }
        let _ = writeln!(svg, "</g>");
    }

    // Patterns layer (Fig. 14).
    if options.draw_patterns && !patterns.is_empty() {
        let max_support = patterns.iter().map(FinePattern::support).max().unwrap_or(1) as f64;
        let _ = writeln!(
            svg,
            "<g id=\"patterns\" fill=\"none\" stroke-linecap=\"round\" stroke-opacity=\"0.8\">"
        );
        for p in patterns {
            if p.stays.len() < 2 {
                continue;
            }
            let width = 1.0 + 4.0 * (p.support() as f64 / max_support);
            let color = category_color(p.categories[0]);
            let mut d = String::new();
            for (i, sp) in p.stays.iter().enumerate() {
                let (x, y) = tx(sp.pos);
                let _ = write!(d, "{}{x:.1} {y:.1}", if i == 0 { "M" } else { " L" });
            }
            let _ = writeln!(
                svg,
                "<path d=\"{d}\" stroke=\"{color}\" stroke-width=\"{width:.1}\">\
                 <title>{} (support {})</title></path>",
                xml_escape(&p.describe()),
                p.support()
            );
            // Arrow head: a dot at the destination.
            let (x, y) = tx(p.stays.last().expect("len >= 2").pos);
            let _ = writeln!(
                svg,
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{:.1}\" fill=\"{color}\" stroke=\"none\"/>",
                width * 1.2
            );
        }
        let _ = writeln!(svg, "</g>");
    }

    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::{StayPoint, Tags};

    fn pattern(x0: f64, support: usize) -> FinePattern {
        let stays = vec![
            StayPoint::new(LocalPoint::new(x0, 0.0), 0, Tags::only(Category::Residence)),
            StayPoint::new(
                LocalPoint::new(x0 + 1_000.0, 500.0),
                1_800,
                Tags::only(Category::Business),
            ),
        ];
        let groups = stays.iter().map(|sp| vec![*sp; support]).collect();
        FinePattern {
            categories: vec![Category::Residence, Category::Business],
            stays,
            members: (0..support).collect(),
            groups,
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_svg(
            None,
            &[pattern(0.0, 10), pattern(500.0, 40)],
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("Residence -&gt; Business &amp; Office"));
        // Balanced tags.
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
    }

    #[test]
    fn stroke_width_scales_with_support() {
        let svg = render_svg(
            None,
            &[pattern(0.0, 10), pattern(500.0, 40)],
            &SvgOptions::default(),
        );
        // Max support gets width 5.0; the smaller one gets 1 + 4*10/40 = 2.0.
        assert!(svg.contains("stroke-width=\"5.0\""));
        assert!(svg.contains("stroke-width=\"2.0\""));
    }

    #[test]
    fn empty_input_still_valid() {
        let svg = render_svg(None, &[], &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    }

    #[test]
    fn units_layer_draws_the_diagram() {
        use pm_core::prelude::*;
        use pm_core::recognize::stay_points_of;

        let ds = crate::dataset::Dataset::generate(&pm_synth::CityConfig::tiny(8));
        let params = MinerParams::default();
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let svg = render_svg(Some(&csd), &[], &SvgOptions::default());
        assert!(svg.contains("id=\"units\""));
        assert!(svg.matches("<circle").count() >= csd.units().len());
        // Well-formed XML: every ampersand is an entity (category names
        // like "Shop & Market" must be escaped inside <title>).
        for (i, _) in svg.match_indices('&') {
            let tail = &svg[i..];
            assert!(
                tail.starts_with("&amp;") || tail.starts_with("&lt;") || tail.starts_with("&gt;"),
                "raw ampersand at byte {i}"
            );
        }
    }
}
