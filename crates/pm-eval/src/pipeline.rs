//! The six evaluated approaches and the machinery to run them.

use crate::dataset::Dataset;
use pm_baselines::{sdbscan_extract, splitter_extract, BaselineParams, RoiRecognizer};
use pm_core::construct::CitySemanticDiagram;
use pm_core::error::MinerError;
use pm_core::extract::{extract_patterns, FinePattern};
use pm_core::params::MinerParams;
use pm_core::recognize::recognize_all;
use pm_core::types::SemanticTrajectory;

/// The six approaches of §5: two recognizers crossed with three extractors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Approach {
    /// City Semantic Diagram recognition + CounterpartCluster (the paper's
    /// Pervasive Miner).
    CsdPm,
    /// ROI recognition + CounterpartCluster.
    RoiPm,
    /// CSD recognition + Splitter refinement.
    CsdSplitter,
    /// ROI recognition + Splitter refinement.
    RoiSplitter,
    /// CSD recognition + SDBSCAN refinement.
    CsdSdbscan,
    /// ROI recognition + SDBSCAN refinement.
    RoiSdbscan,
}

impl Approach {
    /// All six, in the paper's reporting order.
    pub const ALL: [Approach; 6] = [
        Approach::CsdPm,
        Approach::CsdSplitter,
        Approach::CsdSdbscan,
        Approach::RoiPm,
        Approach::RoiSplitter,
        Approach::RoiSdbscan,
    ];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Approach::CsdPm => "CSD-PM",
            Approach::RoiPm => "ROI-PM",
            Approach::CsdSplitter => "CSD-Splitter",
            Approach::RoiSplitter => "ROI-Splitter",
            Approach::CsdSdbscan => "CSD-SDBSCAN",
            Approach::RoiSdbscan => "ROI-SDBSCAN",
        }
    }

    /// Whether the approach recognizes semantics with the CSD.
    pub fn uses_csd(self) -> bool {
        matches!(
            self,
            Approach::CsdPm | Approach::CsdSplitter | Approach::CsdSdbscan
        )
    }
}

/// Both recognizers' outputs, computed once and reused across extractors and
/// parameter sweeps (recognition does not depend on sigma/rho/delta_t).
#[derive(Debug, Clone)]
pub struct Recognized {
    /// Trajectories tagged by the City Semantic Diagram (Algorithm 3).
    pub csd: Vec<SemanticTrajectory>,
    /// Trajectories tagged by ROI hot regions (ref \[21\]).
    pub roi: Vec<SemanticTrajectory>,
}

impl Recognized {
    /// Runs both recognizers over the dataset. Fails fast on invalid
    /// [`MinerParams`]; degenerate data degrades inside the recognizers.
    pub fn compute(
        ds: &Dataset,
        params: &MinerParams,
        baseline: &BaselineParams,
    ) -> Result<Recognized, MinerError> {
        let csd_diagram = CitySemanticDiagram::build(&ds.pois, &ds.stay_locations, params)?;
        let csd = recognize_all(&csd_diagram, ds.trajectories.clone(), params)?;
        let roi_rec = RoiRecognizer::build(&ds.stay_locations, &ds.pois, params, baseline);
        let roi = roi_rec.recognize_all(ds.trajectories.clone());
        Ok(Recognized { csd, roi })
    }

    /// The recognizer output an approach consumes.
    pub fn for_approach(&self, approach: Approach) -> &[SemanticTrajectory] {
        if approach.uses_csd() {
            &self.csd
        } else {
            &self.roi
        }
    }
}

/// Runs one approach's extractor over pre-recognized trajectories.
pub fn run_approach(
    approach: Approach,
    recognized: &Recognized,
    params: &MinerParams,
    baseline: &BaselineParams,
) -> Result<Vec<FinePattern>, MinerError> {
    let db = recognized.for_approach(approach);
    match approach {
        Approach::CsdPm | Approach::RoiPm => extract_patterns(db, params),
        Approach::CsdSplitter | Approach::RoiSplitter => splitter_extract(db, params, baseline),
        Approach::CsdSdbscan | Approach::RoiSdbscan => sdbscan_extract(db, params, baseline),
    }
}

/// Runs all six approaches; recognition is shared.
pub fn run_all(
    ds: &Dataset,
    params: &MinerParams,
    baseline: &BaselineParams,
) -> Result<Vec<(Approach, Vec<FinePattern>)>, MinerError> {
    let recognized = Recognized::compute(ds, params, baseline)?;
    Approach::ALL
        .iter()
        .map(|&a| Ok((a, run_approach(a, &recognized, params, baseline)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::metrics::summarize;
    use pm_synth::CityConfig;

    fn tiny_run() -> Vec<(Approach, Vec<FinePattern>)> {
        let ds = Dataset::generate(&CityConfig::tiny(99));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        run_all(&ds, &params, &BaselineParams::default()).expect("valid params")
    }

    #[test]
    fn all_six_approaches_produce_output() {
        let results = tiny_run();
        assert_eq!(results.len(), 6);
        // The CSD-based pipelines must find patterns on this corpus; the
        // ROI ones may find fewer but the harness must not crash.
        let csd_pm = results.iter().find(|(a, _)| *a == Approach::CsdPm).unwrap();
        assert!(!csd_pm.1.is_empty());
    }

    #[test]
    fn csd_pm_wins_on_consistency() {
        let results = tiny_run();
        let get = |a: Approach| summarize(&results.iter().find(|(x, _)| *x == a).unwrap().1);
        let csd = get(Approach::CsdPm);
        let roi = get(Approach::RoiPm);
        if roi.n_patterns > 0 {
            assert!(
                csd.avg_consistency >= roi.avg_consistency - 1e-9,
                "csd {} vs roi {}",
                csd.avg_consistency,
                roi.avg_consistency
            );
        }
    }

    #[test]
    fn labels_and_flags() {
        assert_eq!(Approach::CsdPm.label(), "CSD-PM");
        assert!(Approach::CsdSplitter.uses_csd());
        assert!(!Approach::RoiSdbscan.uses_csd());
        assert_eq!(Approach::ALL.len(), 6);
    }

    #[test]
    fn recognition_reuse_matches_fresh_runs() {
        let ds = Dataset::generate(&CityConfig::tiny(5));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let baseline = BaselineParams::default();
        let rec = Recognized::compute(&ds, &params, &baseline).expect("valid params");
        let a = run_approach(Approach::CsdPm, &rec, &params, &baseline).expect("valid params");
        let b = run_approach(Approach::CsdPm, &rec, &params, &baseline).expect("valid params");
        assert_eq!(a.len(), b.len());
    }
}
