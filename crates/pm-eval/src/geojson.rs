//! GeoJSON export of mined patterns — the mappable counterpart of the
//! paper's Fig. 14 visualizations.
//!
//! Each fine-grained pattern becomes a `LineString` feature through its
//! representative stay points (plus optional per-position group points),
//! with the category chain, support and time bucket as properties. The
//! output is a plain `FeatureCollection` string renderable by any map tool;
//! coordinates are converted from the local meter frame through a
//! [`Projection`] anchored at the city reference point.

use pm_core::extract::FinePattern;
use pm_core::metrics::pattern_metrics;
use pm_core::types::WeekBucket;
use pm_geo::{GeoPoint, LocalPoint, Projection};
use std::fmt::Write as _;

/// Options for the export.
#[derive(Clone, Copy, Debug)]
pub struct GeoJsonOptions {
    /// Also emit each positional group as a `MultiPoint` feature.
    pub include_groups: bool,
    /// Decimal places for coordinates (6 ≈ 0.1 m at city scale).
    pub precision: usize,
}

impl Default for GeoJsonOptions {
    fn default() -> Self {
        Self {
            include_groups: false,
            precision: 6,
        }
    }
}

/// Serializes patterns as a GeoJSON `FeatureCollection`.
pub fn patterns_to_geojson(
    patterns: &[FinePattern],
    projection: &Projection,
    options: &GeoJsonOptions,
) -> String {
    let mut features = Vec::new();
    for (id, p) in patterns.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        let metrics = pattern_metrics(p);
        let coords = coords_json(
            p.stays.iter().map(|sp| sp.pos),
            projection,
            options.precision,
        );
        let mut props = String::new();
        let _ = write!(
            props,
            "\"pattern\":{},\"chain\":\"{}\",\"support\":{},\"length\":{},\
             \"bucket\":\"{}\",\"spatial_sparsity_m\":{:.2},\"semantic_consistency\":{:.4}",
            id,
            escape(&p.describe()),
            p.support(),
            p.len(),
            WeekBucket::of(p.stays[0].time).label(),
            metrics.spatial_sparsity,
            metrics.semantic_consistency,
        );
        features.push(format!(
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",\
             \"coordinates\":{coords}}},\"properties\":{{{props}}}}}"
        ));

        if options.include_groups {
            for (k, group) in p.groups.iter().enumerate() {
                let coords =
                    coords_json(group.iter().map(|sp| sp.pos), projection, options.precision);
                features.push(format!(
                    "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"MultiPoint\",\
                     \"coordinates\":{coords}}},\"properties\":{{\"pattern\":{id},\
                     \"position\":{k},\"category\":\"{}\"}}}}",
                    escape(p.categories[k].name())
                ));
            }
        }
    }
    format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        features.join(",")
    )
}

fn coords_json<I: Iterator<Item = LocalPoint>>(
    points: I,
    projection: &Projection,
    precision: usize,
) -> String {
    let coords: Vec<String> = points
        .map(|p| {
            let GeoPoint { lon, lat } = projection.to_geo(p);
            format!("[{lon:.precision$},{lat:.precision$}]")
        })
        .collect();
    format!("[{}]", coords.join(","))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_core::types::{Category, StayPoint, Tags};

    fn sample_pattern() -> FinePattern {
        let stays = vec![
            StayPoint::new(
                LocalPoint::new(0.0, 0.0),
                8 * 3600,
                Tags::only(Category::Residence),
            ),
            StayPoint::new(
                LocalPoint::new(2_000.0, 0.0),
                9 * 3600,
                Tags::only(Category::Business),
            ),
        ];
        let groups = stays.iter().map(|sp| vec![*sp, *sp]).collect();
        FinePattern {
            categories: vec![Category::Residence, Category::Business],
            stays,
            members: vec![0, 1],
            groups,
        }
    }

    fn shanghai() -> Projection {
        Projection::new(GeoPoint::new(121.4737, 31.2304))
    }

    #[test]
    fn emits_a_feature_collection() {
        let gj = patterns_to_geojson(&[sample_pattern()], &shanghai(), &GeoJsonOptions::default());
        assert!(gj.starts_with("{\"type\":\"FeatureCollection\""));
        assert!(gj.contains("\"LineString\""));
        assert!(gj.contains("Residence -> Business & Office"));
        assert!(gj.contains("\"support\":2"));
        assert!(gj.contains("weekday morning"));
        // 2km east of the anchor: longitude grows by ~0.021 degrees.
        assert!(gj.contains("121.494") || gj.contains("121.495"), "{gj}");
    }

    #[test]
    fn groups_optional() {
        let without =
            patterns_to_geojson(&[sample_pattern()], &shanghai(), &GeoJsonOptions::default());
        assert!(!without.contains("MultiPoint"));
        let with = patterns_to_geojson(
            &[sample_pattern()],
            &shanghai(),
            &GeoJsonOptions {
                include_groups: true,
                precision: 6,
            },
        );
        assert!(with.contains("MultiPoint"));
        assert!(with.matches("\"Feature\"").count() == 3); // 1 line + 2 groups
    }

    #[test]
    fn empty_input_is_valid_geojson() {
        let gj = patterns_to_geojson(&[], &shanghai(), &GeoJsonOptions::default());
        assert_eq!(gj, "{\"type\":\"FeatureCollection\",\"features\":[]}");
    }

    #[test]
    fn output_parses_as_balanced_json() {
        // No serde in the workspace: check brace/bracket balance and quote
        // parity as a cheap structural sanity test.
        let gj = patterns_to_geojson(
            &[sample_pattern(), sample_pattern()],
            &shanghai(),
            &GeoJsonOptions {
                include_groups: true,
                precision: 4,
            },
        );
        let braces = gj.chars().filter(|&c| c == '{').count();
        let closes = gj.chars().filter(|&c| c == '}').count();
        assert_eq!(braces, closes);
        let opens = gj.chars().filter(|&c| c == '[').count();
        let shuts = gj.chars().filter(|&c| c == ']').count();
        assert_eq!(opens, shuts);
        assert_eq!(gj.chars().filter(|&c| c == '"').count() % 2, 0);
    }
}
