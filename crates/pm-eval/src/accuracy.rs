//! Recognition accuracy against generator ground truth.
//!
//! The paper evaluates recognition only indirectly (through pattern
//! quality) because real taxi data carries no activity labels. The
//! synthetic substrate knows the true category of every stay point, so the
//! CSD and ROI recognizers can be scored directly: coverage (how many stay
//! points get any tag), hit rate (true category contained in the tag set),
//! exact-primary accuracy, and a full 15x15 confusion matrix over primary
//! categories.

use crate::dataset::Dataset;
use pm_core::types::{Category, SemanticTrajectory};

/// Accuracy report for one recognizer over one dataset.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Total ground-truth stay points.
    pub total: usize,
    /// Stay points that received a non-empty tag set.
    pub tagged: usize,
    /// Tagged stay points whose tag set contains the true category.
    pub hits: usize,
    /// Tagged stay points whose *primary* equals the true category.
    pub primary_hits: usize,
    /// `confusion[truth][predicted_primary]` over tagged stay points.
    pub confusion: [[usize; Category::COUNT]; Category::COUNT],
}

impl AccuracyReport {
    /// Fraction of stay points that received any tag.
    pub fn coverage(&self) -> f64 {
        self.tagged as f64 / self.total.max(1) as f64
    }

    /// Fraction of tagged stay points whose set contains the truth.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.tagged.max(1) as f64
    }

    /// Fraction of tagged stay points with the exact primary category.
    pub fn primary_accuracy(&self) -> f64 {
        self.primary_hits as f64 / self.tagged.max(1) as f64
    }

    /// Per-category recall of the primary prediction (how often category
    /// `c`'s stay points are labelled `c`), `None` when `c` never occurs.
    pub fn recall(&self, c: Category) -> Option<f64> {
        let row = &self.confusion[c as usize];
        let total: usize = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some(row[c as usize] as f64 / total as f64)
    }

    /// Per-category precision of the primary prediction, `None` when `c`
    /// is never predicted.
    pub fn precision(&self, c: Category) -> Option<f64> {
        let predicted: usize = (0..Category::COUNT)
            .map(|t| self.confusion[t][c as usize])
            .sum();
        if predicted == 0 {
            return None;
        }
        Some(self.confusion[c as usize][c as usize] as f64 / predicted as f64)
    }
}

/// Scores recognized trajectories against the dataset's ground truth. The
/// trajectories must be the dataset's own, in order (as produced by
/// `recognize_all` / `RoiRecognizer::recognize_all` over
/// `dataset.trajectories`).
pub fn score(ds: &Dataset, recognized: &[SemanticTrajectory]) -> AccuracyReport {
    assert_eq!(
        recognized.len(),
        ds.truth.len(),
        "recognized trajectories must align with the dataset"
    );
    let mut report = AccuracyReport {
        total: 0,
        tagged: 0,
        hits: 0,
        primary_hits: 0,
        confusion: [[0; Category::COUNT]; Category::COUNT],
    };
    for (st, truth) in recognized.iter().zip(&ds.truth) {
        assert_eq!(st.len(), truth.len(), "stay counts must align");
        for (sp, &want) in st.stays.iter().zip(truth) {
            report.total += 1;
            if sp.tags.is_empty() {
                continue;
            }
            report.tagged += 1;
            if sp.tags.contains(want) {
                report.hits += 1;
            }
            if let Some(primary) = sp.primary_category() {
                if primary == want {
                    report.primary_hits += 1;
                }
                report.confusion[want as usize][primary as usize] += 1;
            }
        }
    }
    report
}

/// Renders the headline numbers plus the five worst-confused category
/// pairs.
pub fn render(name: &str, r: &AccuracyReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: coverage {:.1}%, hit rate {:.1}%, primary accuracy {:.1}% ({} stay points)",
        r.coverage() * 100.0,
        r.hit_rate() * 100.0,
        r.primary_accuracy() * 100.0,
        r.total
    );
    let mut confusions: Vec<(usize, Category, Category)> = Vec::new();
    for t in 0..Category::COUNT {
        for p in 0..Category::COUNT {
            if t != p && r.confusion[t][p] > 0 {
                confusions.push((
                    r.confusion[t][p],
                    Category::from_index(t),
                    Category::from_index(p),
                ));
            }
        }
    }
    confusions.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (n, truth, predicted) in confusions.into_iter().take(5) {
        let _ = writeln!(out, "  {truth} mistaken for {predicted}: {n}x");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_baselines::{BaselineParams, RoiRecognizer};
    use pm_core::prelude::*;
    use pm_core::recognize::stay_points_of;
    use pm_synth::CityConfig;

    fn fixture() -> (Dataset, AccuracyReport, AccuracyReport) {
        let ds = Dataset::generate(&CityConfig::tiny(33));
        let params = MinerParams::default();
        let baseline = BaselineParams::default();
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let csd_tagged = recognize_all(&csd, ds.trajectories.clone(), &params).expect("recognize");
        let roi = RoiRecognizer::build(&stays, &ds.pois, &params, &baseline);
        let roi_tagged = roi.recognize_all(ds.trajectories.clone());
        let csd_report = score(&ds, &csd_tagged);
        let roi_report = score(&ds, &roi_tagged);
        (ds, csd_report, roi_report)
    }

    #[test]
    fn reports_are_internally_consistent() {
        let (_, csd, roi) = fixture();
        for r in [&csd, &roi] {
            assert!(r.tagged <= r.total);
            assert!(r.hits <= r.tagged);
            assert!(r.primary_hits <= r.hits + r.tagged); // primary may differ from set-hit
            let conf_total: usize = r.confusion.iter().flatten().sum();
            assert!(conf_total <= r.tagged);
            assert!((0.0..=1.0).contains(&r.coverage()));
            assert!((0.0..=1.0).contains(&r.hit_rate()));
        }
    }

    #[test]
    fn csd_primary_accuracy_beats_roi() {
        let (_, csd, roi) = fixture();
        assert!(
            csd.primary_accuracy() >= roi.primary_accuracy() - 0.02,
            "CSD {:.3} vs ROI {:.3}",
            csd.primary_accuracy(),
            roi.primary_accuracy()
        );
        assert!(csd.primary_accuracy() > 0.6);
    }

    #[test]
    fn precision_recall_defined_for_common_categories() {
        let (_, csd, _) = fixture();
        let res = csd.recall(Category::Residence);
        assert!(res.is_some());
        assert!(res.unwrap() > 0.5);
        let prec = csd.precision(Category::Residence);
        assert!(prec.is_some());
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let (_, csd, _) = fixture();
        let text = render("CSD", &csd);
        assert!(text.contains("coverage") && text.contains("primary accuracy"));
    }
}
