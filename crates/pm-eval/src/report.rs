//! Plain-text rendering of the regenerated tables and figures, shared by
//! the benches and examples so every target prints the same row format.

use crate::figures::{DemoReport, Fig9Row, SweepPoint, FIG9_BINS, FIG9_BIN_WIDTH};
use crate::pipeline::Approach;
use pm_core::metrics::FiveNumber;
use pm_core::types::Category;

/// Renders Fig. 9 as one row per approach: the 20 sparsity-bin counts plus
/// the legend numbers.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9 — spatial sparsity frequency distribution (bin width 5 m)\n");
    out.push_str(&format!("{:<14}", "approach"));
    for b in 0..FIG9_BINS {
        out.push_str(&format!("{:>4}", (b as f64 * FIG9_BIN_WIDTH) as usize));
    }
    out.push_str("   avg_ss  #patterns  coverage\n");
    for row in rows {
        out.push_str(&format!("{:<14}", row.approach.label()));
        for b in row.bins {
            out.push_str(&format!("{b:>4}"));
        }
        out.push_str(&format!(
            "  {:>7.2}  {:>9}  {:>8}\n",
            row.summary.avg_sparsity, row.summary.n_patterns, row.summary.coverage
        ));
    }
    out
}

/// Renders Fig. 10 box-plot numbers.
pub fn render_fig10(rows: &[(Approach, Option<FiveNumber>)]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10 — semantic consistency box plots\n");
    out.push_str(&format!(
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>8}{:>8}\n",
        "approach", "min", "Q1", "median", "Q3", "max", "mean"
    ));
    for (a, f) in rows {
        match f {
            Some(f) => out.push_str(&format!(
                "{:<14}{:>8.4}{:>8.4}{:>8.4}{:>8.4}{:>8.4}{:>8.4}\n",
                a.label(),
                f.min,
                f.q1,
                f.q2,
                f.q3,
                f.max,
                f.mean
            )),
            None => out.push_str(&format!("{:<14}  (no patterns)\n", a.label())),
        }
    }
    out
}

/// Renders one sweep (Figs. 11–13) as four metric blocks over the swept
/// values.
pub fn render_sweep(title: &str, param: &str, points: &[SweepPoint]) -> String {
    let mut out = format!("{title}\n");
    type MetricGetter = fn(&pm_core::metrics::PatternSetSummary) -> f64;
    let metrics: [(&str, MetricGetter); 4] = [
        ("#patterns", |s| s.n_patterns as f64),
        ("coverage", |s| s.coverage as f64),
        ("avg spatial sparsity (m)", |s| s.avg_sparsity),
        ("avg semantic consistency", |s| s.avg_consistency),
    ];
    for (name, get) in metrics {
        out.push_str(&format!("  ({name})\n"));
        out.push_str(&format!("  {:<14}", param));
        for p in points {
            out.push_str(&format!("{:>10.4}", p.value));
        }
        out.push('\n');
        for &a in &Approach::ALL {
            out.push_str(&format!("  {:<14}", a.label()));
            for p in points {
                let s = p
                    .rows
                    .iter()
                    .find(|(x, _)| *x == a)
                    .expect("all approaches")
                    .1;
                out.push_str(&format!("{:>10.3}", get(&s)));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the Fig. 14 demonstration report.
pub fn render_fig14(report: &DemoReport) -> String {
    let mut out = String::new();
    out.push_str("Fig. 14 — demonstration (CSD-PM patterns)\n");
    out.push_str("  (a)-(f) patterns per time-of-week bucket\n");
    for (bucket, n, avg_len) in &report.buckets {
        out.push_str(&format!(
            "    {:<20} {:>5} patterns, avg length {:.2}\n",
            bucket.label(),
            n,
            avg_len
        ));
    }
    out.push_str(&format!(
        "  (g) airport: {:.1}% of pick-up/drop-off records, {} patterns touch the airport\n",
        report.airport_record_share * 100.0,
        report.airport_patterns
    ));
    out.push_str(&format!(
        "  (h) hospitals: {} medical patterns from taxi data; medical check-in share NY {:.3}%, Tokyo {:.3}%\n",
        report.hospital_patterns,
        report.medical_checkin_share_ny * 100.0,
        report.medical_checkin_share_tokyo * 100.0
    ));
    out
}

/// Renders the Table 1 regeneration (top check-in topics per profile).
pub fn render_table1(tables: &[(String, Vec<(Category, f64)>)]) -> String {
    let mut out = String::new();
    out.push_str("Table 1 — top check-in topics per sharing profile\n");
    for (name, rows) in tables {
        out.push_str(&format!("  {name}-like profile:\n"));
        for (i, (c, share)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {:>2}. {:<24}{:>7.2}%\n",
                i + 1,
                c.name(),
                share * 100.0
            ));
        }
    }
    out
}

/// Renders the Table 3 regeneration (POI category statistics).
pub fn render_table3(rows: &[(Category, usize, f64)]) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — POI category statistics\n");
    out.push_str(&format!(
        "  {:<24}{:>10}{:>12}\n",
        "Category", "Count", "Percentage"
    ));
    for (c, n, share) in rows {
        out.push_str(&format!(
            "  {:<24}{:>10}{:>11.2}%\n",
            c.name(),
            n,
            share * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::figures;
    use crate::pipeline::run_all;
    use pm_baselines::BaselineParams;
    use pm_core::params::MinerParams;
    use pm_synth::CityConfig;

    #[test]
    fn renderers_produce_nonempty_labelled_output() {
        let ds = Dataset::generate(&CityConfig::tiny(31));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let results = run_all(&ds, &params, &BaselineParams::default()).expect("valid params");

        let f9 = render_fig9(&figures::fig9(&results));
        assert!(f9.contains("CSD-PM") && f9.contains("ROI-SDBSCAN"));

        let f10 = render_fig10(&figures::fig10(&results));
        assert!(f10.contains("median"));

        let f14 = render_fig14(&figures::fig14(&ds, &results[0].1, 1));
        assert!(f14.contains("weekday morning") && f14.contains("airport"));

        let t1 = render_table1(&figures::table1(&ds, 1, 10));
        assert!(t1.contains("New York") && t1.contains("Tokyo"));

        let t3 = render_table3(&figures::table3(&ds));
        assert!(t3.contains("Residence") && t3.contains("%"));
    }
}
