//! Dataset assembly: city, POIs, taxi corpus and linked trajectories.

use pm_core::types::{Category, Poi, SemanticTrajectory};
use pm_geo::LocalPoint;
use pm_synth::{poi::generate_pois, CityConfig, CityModel, TaxiCorpus};

/// Everything an experiment needs, generated once and shared across the six
/// approaches.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The city model (districts, airport, hospitals, towers).
    pub city: CityModel,
    /// The POI database.
    pub pois: Vec<Poi>,
    /// The taxi journey corpus.
    pub corpus: TaxiCorpus,
    /// Linked, untagged semantic trajectories.
    pub trajectories: Vec<SemanticTrajectory>,
    /// Ground-truth stay-point categories, aligned with `trajectories`.
    pub truth: Vec<Vec<Category>>,
    /// Every pick-up/drop-off location (`D_sp`, drives popularity).
    pub stay_locations: Vec<LocalPoint>,
}

impl Dataset {
    /// Generates a dataset from a configuration; deterministic per seed.
    pub fn generate(config: &CityConfig) -> Dataset {
        let city = CityModel::generate(config);
        let pois = generate_pois(&city);
        let corpus = TaxiCorpus::generate(&city);
        let (trajectories, truth) = corpus.trajectories_with_truth();
        let stay_locations = corpus.stay_point_locations();
        Dataset {
            city,
            pois,
            corpus,
            trajectories,
            truth,
            stay_locations,
        }
    }

    /// Total stay points across all trajectories.
    pub fn n_stays(&self) -> usize {
        self.trajectories.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_complete_and_aligned() {
        let ds = Dataset::generate(&CityConfig::tiny(3));
        assert!(!ds.pois.is_empty());
        assert!(!ds.trajectories.is_empty());
        assert_eq!(ds.trajectories.len(), ds.truth.len());
        assert_eq!(ds.stay_locations.len(), ds.corpus.journeys.len() * 2);
        assert!(ds.n_stays() >= ds.trajectories.len() * 2);
    }
}
