//! Experiment harness: runs the paper's six approaches over the synthetic
//! corpus and regenerates every table and figure of the evaluation (§5–§6).
//!
//! - [`dataset`]: one-stop generation of city + POIs + taxi corpus +
//!   linked trajectories.
//! - [`pipeline`]: the six approaches (CSD/ROI recognition × PM/Splitter/
//!   SDBSCAN extraction), with recognition shared across extractors and
//!   parameter sweeps that re-extract without re-recognizing.
//! - [`figures`]: builders for Fig. 9 (sparsity histogram), Fig. 10
//!   (consistency box plots), Figs. 11–13 (sigma/rho/delta_t sweeps),
//!   Fig. 14 (time-of-week demonstration, airport share, hospital-vs-
//!   check-in bias), Table 1 and Table 3.
//! - [`report`]: plain-text table rendering shared by benches and examples.
//! - [`export`]: CSV writers for external plotting.
//! - [`geojson`]: pattern export for map rendering (Fig. 14's medium).
//! - [`svg`]: standalone SVG maps of the diagram and patterns (Fig. 6's
//!   medium), no plotting stack required.
//! - [`accuracy`]: recognition scoring against generator ground truth
//!   (coverage, hit rate, confusion matrix) — possible only because the
//!   substrate is synthetic.

pub mod accuracy;
pub mod dataset;
pub mod export;
pub mod figures;
pub mod geojson;
pub mod pipeline;
pub mod report;
pub mod svg;

pub use dataset::Dataset;
pub use pipeline::{run_all, run_approach, Approach, Recognized};
