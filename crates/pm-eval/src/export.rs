//! CSV export of the regenerated figures, for external plotting.
//!
//! Plain `std::fs` writers — one file per figure, one row per series point,
//! mirroring the structures in [`crate::figures`].

use crate::figures::{DemoReport, Fig9Row, SweepPoint, FIG9_BIN_WIDTH};
use crate::pipeline::Approach;
use pm_core::metrics::FiveNumber;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Fig. 9 as CSV: `approach,bin_low_m,count` rows plus a `summary` section.
pub fn fig9_csv(rows: &[Fig9Row]) -> String {
    let mut out = String::from("approach,bin_low_m,count\n");
    for row in rows {
        for (b, count) in row.bins.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{}",
                row.approach.label(),
                b as f64 * FIG9_BIN_WIDTH,
                count
            );
        }
    }
    out.push_str("\napproach,avg_sparsity_m,n_patterns,coverage\n");
    for row in rows {
        let _ = writeln!(
            out,
            "{},{:.4},{},{}",
            row.approach.label(),
            row.summary.avg_sparsity,
            row.summary.n_patterns,
            row.summary.coverage
        );
    }
    out
}

/// Fig. 10 as CSV: `approach,min,q1,median,q3,max,mean` rows.
pub fn fig10_csv(rows: &[(Approach, Option<FiveNumber>)]) -> String {
    let mut out = String::from("approach,min,q1,median,q3,max,mean\n");
    for (a, f) in rows {
        match f {
            Some(f) => {
                let _ = writeln!(
                    out,
                    "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                    a.label(),
                    f.min,
                    f.q1,
                    f.q2,
                    f.q3,
                    f.max,
                    f.mean
                );
            }
            None => {
                let _ = writeln!(out, "{},,,,,,", a.label());
            }
        }
    }
    out
}

/// A sweep (Figs. 11–13) as CSV:
/// `param,approach,n_patterns,coverage,avg_sparsity_m,avg_consistency`.
pub fn sweep_csv(points: &[SweepPoint]) -> String {
    let mut out =
        String::from("param,approach,n_patterns,coverage,avg_sparsity_m,avg_consistency\n");
    for p in points {
        for (a, s) in &p.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{:.6}",
                p.value,
                a.label(),
                s.n_patterns,
                s.coverage,
                s.avg_sparsity,
                s.avg_consistency
            );
        }
    }
    out
}

/// Fig. 14 as CSV: the bucket table plus the scalar findings.
pub fn fig14_csv(report: &DemoReport) -> String {
    let mut out = String::from("bucket,n_patterns,avg_length\n");
    for (bucket, n, avg_len) in &report.buckets {
        let _ = writeln!(out, "{},{},{:.4}", bucket.label(), n, avg_len);
    }
    out.push_str("\nmetric,value\n");
    let _ = writeln!(
        out,
        "airport_record_share,{:.6}",
        report.airport_record_share
    );
    let _ = writeln!(out, "airport_patterns,{}", report.airport_patterns);
    let _ = writeln!(out, "hospital_patterns,{}", report.hospital_patterns);
    let _ = writeln!(
        out,
        "medical_checkin_share_ny,{:.6}",
        report.medical_checkin_share_ny
    );
    let _ = writeln!(
        out,
        "medical_checkin_share_tokyo,{:.6}",
        report.medical_checkin_share_tokyo
    );
    out
}

/// Writes a CSV string to disk, creating parent directories.
pub fn write_csv(path: &Path, csv: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, csv)
}

/// Sanity check: every bin of Fig. 9 is present exactly once per approach.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::figures;
    use crate::figures::FIG9_BINS;
    use crate::pipeline::run_all;
    use pm_baselines::BaselineParams;
    use pm_core::params::MinerParams;
    use pm_synth::CityConfig;

    fn results() -> (Dataset, Vec<(Approach, Vec<pm_core::extract::FinePattern>)>) {
        let ds = Dataset::generate(&CityConfig::tiny(77));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let r = run_all(&ds, &params, &BaselineParams::default()).expect("valid params");
        (ds, r)
    }

    #[test]
    fn fig9_csv_has_all_bins() {
        let (_, results) = results();
        let csv = fig9_csv(&figures::fig9(&results));
        // Header + 6 approaches x 20 bins + blank + summary header + 6 rows.
        let data_rows = csv
            .lines()
            .filter(|l| l.contains(",") && !l.starts_with("approach"))
            .count();
        assert_eq!(data_rows, 6 * FIG9_BINS + 6);
        assert!(csv.starts_with("approach,bin_low_m,count"));
    }

    #[test]
    fn fig10_csv_one_row_per_approach() {
        let (_, results) = results();
        let csv = fig10_csv(&figures::fig10(&results));
        assert_eq!(csv.lines().count(), 7);
    }

    #[test]
    fn sweep_csv_rows() {
        let ds = Dataset::generate(&CityConfig::tiny(78));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let baseline = BaselineParams::default();
        let rec =
            crate::pipeline::Recognized::compute(&ds, &params, &baseline).expect("valid params");
        let pts = figures::fig11_support_sweep(&rec, &params, &baseline, &[15, 30])
            .expect("valid params");
        let csv = sweep_csv(&pts);
        assert_eq!(csv.lines().count(), 1 + 2 * 6);
    }

    #[test]
    fn fig14_csv_structure() {
        let (ds, results) = results();
        let csv = fig14_csv(&figures::fig14(&ds, &results[0].1, 1));
        assert!(csv.contains("weekday morning"));
        assert!(csv.contains("airport_record_share"));
        assert_eq!(csv.lines().filter(|l| !l.is_empty()).count(), 1 + 6 + 1 + 5);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("pm_eval_export_test");
        let path = dir.join("nested/fig.csv");
        write_csv(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
