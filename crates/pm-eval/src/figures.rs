//! Builders for every table and figure of the paper's evaluation.

use crate::dataset::Dataset;
use crate::pipeline::{run_approach, Approach, Recognized};
use pm_baselines::BaselineParams;
use pm_core::error::MinerError;
use pm_core::extract::FinePattern;
use pm_core::metrics::{five_number, pattern_metrics, summarize, FiveNumber, PatternSetSummary};
use pm_core::params::MinerParams;
use pm_core::types::{Category, WeekBucket};
use pm_synth::checkin::{generate_checkins, topic_ranking, SharingProfile};
use pm_synth::poi::category_histogram;

/// Number of sparsity histogram bins in Fig. 9.
pub const FIG9_BINS: usize = 20;
/// Width of each sparsity bin in meters (x-axis spans 0–100 m).
pub const FIG9_BIN_WIDTH: f64 = 5.0;

/// One curve of Fig. 9: the sparsity frequency distribution of one
/// approach, plus the legend numbers (avg ss / #patterns / coverage).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Which approach.
    pub approach: Approach,
    /// Pattern count per sparsity bin (`[k*5, (k+1)*5)` meters); patterns
    /// sparser than 100 m land in the last bin.
    pub bins: [usize; FIG9_BINS],
    /// Aggregate metrics shown in the figure legend.
    pub summary: PatternSetSummary,
}

/// Builds Fig. 9 from the six approaches' pattern sets.
pub fn fig9(results: &[(Approach, Vec<FinePattern>)]) -> Vec<Fig9Row> {
    results
        .iter()
        .map(|(approach, patterns)| {
            let mut bins = [0usize; FIG9_BINS];
            for p in patterns {
                let ss = pattern_metrics(p).spatial_sparsity;
                let bin = ((ss / FIG9_BIN_WIDTH) as usize).min(FIG9_BINS - 1);
                bins[bin] += 1;
            }
            Fig9Row {
                approach: *approach,
                bins,
                summary: summarize(patterns),
            }
        })
        .collect()
}

/// Builds Fig. 10: the per-approach distribution of pattern semantic
/// consistency (box-plot five-number summaries plus the mean). Approaches
/// with no patterns yield `None`.
pub fn fig10(results: &[(Approach, Vec<FinePattern>)]) -> Vec<(Approach, Option<FiveNumber>)> {
    results
        .iter()
        .map(|(approach, patterns)| {
            let values: Vec<f64> = patterns
                .iter()
                .map(|p| pattern_metrics(p).semantic_consistency)
                .collect();
            (*approach, five_number(&values))
        })
        .collect()
}

/// One x-axis point of a Figs. 11–13 sweep: the swept value and each
/// approach's summary metrics at that value.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter value (sigma, rho, or delta_t in minutes).
    pub value: f64,
    /// Per-approach metric summaries.
    pub rows: Vec<(Approach, PatternSetSummary)>,
}

fn sweep<F: Fn(&MinerParams, f64) -> MinerParams>(
    recognized: &Recognized,
    base: &MinerParams,
    baseline: &BaselineParams,
    values: &[f64],
    apply: F,
) -> Result<Vec<SweepPoint>, MinerError> {
    values
        .iter()
        .map(|&v| {
            let params = apply(base, v);
            let rows = Approach::ALL
                .iter()
                .map(|&a| {
                    Ok((
                        a,
                        summarize(&run_approach(a, recognized, &params, baseline)?),
                    ))
                })
                .collect::<Result<_, MinerError>>()?;
            Ok(SweepPoint { value: v, rows })
        })
        .collect()
}

/// Fig. 11: metrics versus support threshold sigma.
pub fn fig11_support_sweep(
    recognized: &Recognized,
    base: &MinerParams,
    baseline: &BaselineParams,
    sigmas: &[usize],
) -> Result<Vec<SweepPoint>, MinerError> {
    let values: Vec<f64> = sigmas.iter().map(|&s| s as f64).collect();
    sweep(recognized, base, baseline, &values, |p, v| {
        p.with_sigma(v as usize)
    })
}

/// Fig. 12: metrics versus density threshold rho (in m^-2).
pub fn fig12_density_sweep(
    recognized: &Recognized,
    base: &MinerParams,
    baseline: &BaselineParams,
    rhos: &[f64],
) -> Result<Vec<SweepPoint>, MinerError> {
    sweep(recognized, base, baseline, rhos, |p, v| p.with_rho(v))
}

/// Fig. 13: metrics versus temporal constraint delta_t (in minutes).
pub fn fig13_temporal_sweep(
    recognized: &Recognized,
    base: &MinerParams,
    baseline: &BaselineParams,
    minutes: &[i64],
) -> Result<Vec<SweepPoint>, MinerError> {
    let values: Vec<f64> = minutes.iter().map(|&m| m as f64).collect();
    sweep(recognized, base, baseline, &values, |p, v| {
        p.with_delta_t((v * 60.0) as i64)
    })
}

/// The Fig. 14 demonstration report.
#[derive(Debug, Clone)]
pub struct DemoReport {
    /// Per time-of-week bucket: pattern count and average pattern length
    /// (Fig. 14 a–f).
    pub buckets: Vec<(WeekBucket, usize, f64)>,
    /// Fraction of all pick-up/drop-off records near the airport
    /// (Fig. 14 g — the paper reports ~20% for Hongqiao).
    pub airport_record_share: f64,
    /// Patterns whose endpoints touch the airport.
    pub airport_patterns: usize,
    /// Patterns involving a Medical stay, discovered from taxi data
    /// (Fig. 14 h).
    pub hospital_patterns: usize,
    /// Share of medical topics in a NYC-like check-in corpus (bias
    /// contrast: should be ~0 even though taxi data finds the patterns).
    pub medical_checkin_share_ny: f64,
    /// Share of medical topics in a Tokyo-like check-in corpus.
    pub medical_checkin_share_tokyo: f64,
}

/// Mines patterns from one day's trajectories only — the paper's Fig. 14
/// protocol ("patterns discovered ... from one day taxi records of weekday
/// or weekend"). Mining across days would average member timestamps into
/// mid-week and erase the weekday/weekend contrast.
pub fn mine_one_day(
    recognized: &[pm_core::types::SemanticTrajectory],
    params: &MinerParams,
    day: i64,
) -> Result<Vec<FinePattern>, MinerError> {
    use pm_core::types::DAY_SECS;
    let day_db: Vec<pm_core::types::SemanticTrajectory> = recognized
        .iter()
        .filter(|t| {
            t.stays
                .first()
                .is_some_and(|sp| sp.time.div_euclid(DAY_SECS) == day)
        })
        .cloned()
        .collect();
    pm_core::extract::extract_patterns(&day_db, params)
}

/// Builds the Fig. 14 demonstration. `recognized` is the CSD-recognized
/// trajectory set; `patterns` is the all-days CSD-PM pattern set (for the
/// airport/hospital panels); per-bucket counts are mined per single day as
/// in the paper (Wednesday for weekdays, Saturday for weekends).
pub fn fig14_full(
    ds: &Dataset,
    recognized: &[pm_core::types::SemanticTrajectory],
    patterns: &[FinePattern],
    params: &MinerParams,
    seed: u64,
) -> Result<DemoReport, MinerError> {
    // (a)-(f): one representative weekday and weekend day. A single day
    // holds ~1/7 of the corpus, so the per-day support threshold scales
    // down accordingly (the paper mined each day with its own run).
    let day_params = params.with_sigma((params.sigma / 5).max(2));
    let weekday = mine_one_day(
        recognized,
        &day_params,
        2.min(ds.city.config.n_days as i64 - 1),
    )?;
    let weekend_day = if ds.city.config.n_days >= 6 { 5 } else { -1 };
    let weekend = if weekend_day >= 0 {
        mine_one_day(recognized, &day_params, weekend_day)?
    } else {
        Vec::new()
    };
    let slot = |p: &FinePattern| -> usize {
        let hour = p.stays[0].time.rem_euclid(pm_core::types::DAY_SECS) / 3600;
        match hour {
            5..=10 => 0,
            11..=16 => 1,
            _ => 2,
        }
    };
    let mut buckets = Vec::with_capacity(6);
    for (set, offset) in [(&weekday, 0usize), (&weekend, 3usize)] {
        for s in 0..3 {
            let in_bucket: Vec<&FinePattern> = set.iter().filter(|p| slot(p) == s).collect();
            let avg_len = if in_bucket.is_empty() {
                0.0
            } else {
                in_bucket.iter().map(|p| p.len() as f64).sum::<f64>() / in_bucket.len() as f64
            };
            buckets.push((WeekBucket::ALL[offset + s], in_bucket.len(), avg_len));
        }
    }
    Ok(fig14_panels_gh(ds, patterns, seed, buckets))
}

/// Builds the Fig. 14 demonstration from a precomputed pattern set,
/// bucketing by the representative stay time (suitable when the pattern set
/// was mined from a single day already).
pub fn fig14(ds: &Dataset, patterns: &[FinePattern], seed: u64) -> DemoReport {
    // (a)-(f): bucket patterns by the time of their first representative
    // stay point.
    let buckets = WeekBucket::ALL
        .iter()
        .map(|&b| {
            let in_bucket: Vec<&FinePattern> = patterns
                .iter()
                .filter(|p| WeekBucket::of(p.stays[0].time) == b)
                .collect();
            let avg_len = if in_bucket.is_empty() {
                0.0
            } else {
                in_bucket.iter().map(|p| p.len() as f64).sum::<f64>() / in_bucket.len() as f64
            };
            (b, in_bucket.len(), avg_len)
        })
        .collect();
    fig14_panels_gh(ds, patterns, seed, buckets)
}

/// Panels (g) and (h), shared by both Fig. 14 builders.
fn fig14_panels_gh(
    ds: &Dataset,
    patterns: &[FinePattern],
    seed: u64,
    buckets: Vec<(WeekBucket, usize, f64)>,
) -> DemoReport {
    // (g): airport demand.
    let airport_pos = ds.city.districts[ds.city.airport].venues[0];
    let near_airport = |p: pm_geo::LocalPoint| p.distance(&airport_pos) < 500.0;
    let touching = ds
        .corpus
        .journeys
        .iter()
        .flat_map(|j| [j.pickup.pos, j.dropoff.pos])
        .filter(|&p| near_airport(p))
        .count();
    let airport_record_share = touching as f64 / (ds.corpus.journeys.len() * 2).max(1) as f64;
    let airport_patterns = patterns
        .iter()
        .filter(|p| p.stays.iter().any(|sp| near_airport(sp.pos)))
        .count();

    // (h): hospital patterns from taxi data versus check-in invisibility.
    let hospital_patterns = patterns
        .iter()
        .filter(|p| p.categories.contains(&Category::Medical))
        .count();
    let medical_share = |profile: &SharingProfile| -> f64 {
        let checkins = generate_checkins(&ds.corpus, profile, seed);
        if checkins.is_empty() {
            return 0.0;
        }
        checkins
            .iter()
            .filter(|c| c.topic == Category::Medical)
            .count() as f64
            / checkins.len() as f64
    };

    DemoReport {
        buckets,
        airport_record_share,
        airport_patterns,
        hospital_patterns,
        medical_checkin_share_ny: medical_share(&SharingProfile::new_york()),
        medical_checkin_share_tokyo: medical_share(&SharingProfile::tokyo()),
    }
}

/// Table 1 regeneration: top-k reported topics under each sharing profile.
pub fn table1(ds: &Dataset, seed: u64, top_k: usize) -> Vec<(String, Vec<(Category, f64)>)> {
    [SharingProfile::new_york(), SharingProfile::tokyo()]
        .iter()
        .map(|profile| {
            let checkins = generate_checkins(&ds.corpus, profile, seed);
            let rows = topic_ranking(&checkins)
                .into_iter()
                .take(top_k)
                .map(|(c, _, share)| (c, share))
                .collect();
            (profile.name.to_string(), rows)
        })
        .collect()
}

/// Table 3 regeneration: POI category counts and percentages.
pub fn table3(ds: &Dataset) -> Vec<(Category, usize, f64)> {
    let hist = category_histogram(&ds.pois);
    let total: usize = hist.iter().sum();
    let mut rows: Vec<(Category, usize, f64)> = Category::ALL
        .iter()
        .map(|&c| {
            let n = hist[c as usize];
            (c, n, n as f64 / total.max(1) as f64)
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_all;
    use pm_synth::CityConfig;

    fn fixture() -> (Dataset, Vec<(Approach, Vec<FinePattern>)>) {
        let ds = Dataset::generate(&CityConfig::tiny(7));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let results = run_all(&ds, &params, &BaselineParams::default()).expect("valid params");
        (ds, results)
    }

    #[test]
    fn fig9_bins_count_every_pattern() {
        let (_, results) = fixture();
        for row in fig9(&results) {
            let binned: usize = row.bins.iter().sum();
            assert_eq!(binned, row.summary.n_patterns, "{}", row.approach.label());
        }
    }

    #[test]
    fn fig10_values_in_unit_interval() {
        let (_, results) = fixture();
        for (a, fnum) in fig10(&results) {
            if let Some(f) = fnum {
                assert!(f.min >= 0.0 && f.max <= 1.0 + 1e-9, "{}", a.label());
                assert!(f.q1 <= f.q2 && f.q2 <= f.q3);
            }
        }
    }

    #[test]
    fn sweeps_have_one_point_per_value() {
        let ds = Dataset::generate(&CityConfig::tiny(8));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let baseline = BaselineParams::default();
        let rec = Recognized::compute(&ds, &params, &baseline).expect("valid params");
        let pts =
            fig11_support_sweep(&rec, &params, &baseline, &[10, 20, 40]).expect("valid params");
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|p| p.rows.len() == 6));
        // Raising sigma cannot increase pattern count for the same approach.
        let count = |p: &SweepPoint| p.rows[0].1.n_patterns;
        assert!(count(&pts[0]) >= count(&pts[2]));
    }

    #[test]
    fn fig14_report_shape() {
        let (ds, results) = fixture();
        let csd_pm = &results[0].1;
        let report = fig14(&ds, csd_pm, 1);
        assert_eq!(report.buckets.len(), 6);
        assert!(report.airport_record_share > 0.0);
        assert!(report.medical_checkin_share_ny < 0.02);
        assert!(report.medical_checkin_share_tokyo < 0.02);
        let total: usize = report.buckets.iter().map(|b| b.1).sum();
        assert_eq!(total, csd_pm.len());
    }

    #[test]
    fn table1_and_table3_are_well_formed() {
        let (ds, _) = fixture();
        let t1 = table1(&ds, 3, 10);
        assert_eq!(t1.len(), 2);
        assert!(t1
            .iter()
            .all(|(_, rows)| rows.len() <= 10 && !rows.is_empty()));
        let t3 = table3(&ds);
        assert_eq!(t3.len(), Category::COUNT);
        let total_share: f64 = t3.iter().map(|r| r.2).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        for w in t3.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
