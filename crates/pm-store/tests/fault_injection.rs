//! Fault injection for stored artifacts: every seeded bit flip, truncation,
//! garbage run, and trailing-garbage append over a valid `pm-store/1` file
//! must surface as a typed [`StoreError`] — never a panic, never a silent
//! success with damaged data.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_store::{Artifact, StoreError};
use pm_synth::{corrupt_bytes, ByteCorruption};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Canonical artifact bytes, mined once per test binary.
fn canonical_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(42));
        let params = MinerParams {
            sigma: 20,
            ..MinerParams::default()
        };
        let stays = stay_points_of(&ds.trajectories);
        let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
        let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
        let patterns = extract_patterns(&recognized, &params).expect("extract");
        Artifact::new(csd, patterns, params).to_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single corruption of a valid artifact is rejected with a typed
    /// error whose kind and Display both render.
    #[test]
    fn corrupted_artifacts_are_rejected_not_panicked(
        mode_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mode = ByteCorruption::all()[mode_idx];
        let damaged = corrupt_bytes(canonical_bytes(), mode, seed);
        prop_assert_ne!(damaged.as_slice(), canonical_bytes());
        match Artifact::from_bytes(&damaged) {
            Ok(_) => prop_assert!(
                false,
                "{} seed {} slipped past every integrity check",
                mode.label(),
                seed
            ),
            Err(e) => {
                prop_assert!(!e.kind().is_empty());
                prop_assert!(!format!("{e}").is_empty());
            }
        }
    }

    /// Pure garbage (not derived from a valid artifact) never panics either;
    /// almost all of it dies on the magic check.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        match Artifact::from_bytes(&bytes) {
            Ok(_) => prop_assert!(false, "random garbage parsed as an artifact"),
            Err(e) => prop_assert!(!e.kind().is_empty()),
        }
    }

    /// Garbage that *starts* with a valid header exercises the deeper
    /// section-parsing paths and still fails typed.
    #[test]
    fn garbage_with_valid_header_never_panics(
        body in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let mut bytes = canonical_bytes()[..16].to_vec(); // magic + version + count
        bytes.extend_from_slice(&body);
        prop_assert!(Artifact::from_bytes(&bytes).is_err());
    }
}

#[test]
fn every_mode_is_rejected_from_disk_too() {
    let dir = std::env::temp_dir().join("pm-store-fault");
    std::fs::create_dir_all(&dir).unwrap();
    for mode in ByteCorruption::all() {
        let damaged = corrupt_bytes(canonical_bytes(), mode, 1);
        let path = dir.join(format!("{}-{}.pmstore", mode.label(), std::process::id()));
        std::fs::write(&path, &damaged).unwrap();
        let err = Artifact::read_file(&path).unwrap_err();
        assert!(
            !matches!(err, StoreError::Io { .. }),
            "{}: expected a format error, got {err:?}",
            mode.label()
        );
        std::fs::remove_file(&path).ok();
    }
}
