//! Property tests: `pm-store/1` serialization round-trips byte-identically
//! across mining runs and across randomized parameter payloads.

use pm_core::prelude::*;
use pm_core::recognize::stay_points_of;
use pm_geo::GeoPoint;
use pm_store::Artifact;
use proptest::prelude::*;
use std::sync::OnceLock;

fn mine(seed: u64, sigma: usize) -> Artifact {
    let ds = pm_eval::Dataset::generate(&pm_synth::CityConfig::tiny(seed));
    let params = MinerParams {
        sigma,
        ..MinerParams::default()
    };
    let stays = stay_points_of(&ds.trajectories);
    let csd = CitySemanticDiagram::build(&ds.pois, &stays, &params).expect("build");
    let recognized = recognize_all(&csd, ds.trajectories, &params).expect("recognize");
    let patterns = extract_patterns(&recognized, &params).expect("extract");
    Artifact::new(csd, patterns, params)
}

/// One canonical mined artifact, built once per test binary.
fn canonical() -> &'static Artifact {
    static ART: OnceLock<Artifact> = OnceLock::new();
    ART.get_or_init(|| mine(42, 20))
}

#[test]
fn several_runs_roundtrip_byte_identically() {
    for (seed, sigma) in [(42u64, 20usize), (7, 20), (3, 15)] {
        let artifact = mine(seed, sigma);
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed} sigma {sigma}: {e}"));
        assert_eq!(
            reloaded.to_bytes(),
            bytes,
            "seed {seed} sigma {sigma}: re-serialize differs"
        );
    }
}

#[test]
fn verified_read_accepts_good_and_rejects_lossy_bytes() {
    let artifact = canonical();
    let bytes = artifact.to_bytes();
    Artifact::from_bytes_verified(&bytes).expect("clean bytes verify");
    // An unknown *optional* (lowercase-tagged) section is skipped by the
    // plain reader but is exactly the lossiness the verified read refuses:
    // the decoded artifact cannot reproduce it.
    let mut with_extra = bytes.clone();
    let sections_at = 12; // magic (8) + version (4)
    let old = u32::from_le_bytes(with_extra[sections_at..sections_at + 4].try_into().unwrap());
    with_extra[sections_at..sections_at + 4].copy_from_slice(&(old + 1).to_le_bytes());
    with_extra.extend_from_slice(b"xtra"); // tag
    with_extra.extend_from_slice(&0u64.to_le_bytes()); // empty payload
    with_extra.extend_from_slice(&pm_store::crc::crc32(&[]).to_le_bytes());
    Artifact::from_bytes(&with_extra).expect("plain read skips the optional section");
    let err = Artifact::from_bytes_verified(&with_extra).expect_err("verified read refuses");
    assert_eq!(err.kind(), "malformed");
}

#[test]
fn reloaded_patterns_match_in_process_queries() {
    let artifact = canonical();
    let reloaded = Artifact::from_bytes(&artifact.to_bytes()).expect("load");
    let q = PatternQuery::new().min_support(20);
    let a: Vec<String> = q
        .run(&artifact.patterns)
        .iter()
        .map(|p| p.describe())
        .collect();
    let b: Vec<String> = q
        .run(&reloaded.patterns)
        .iter()
        .map(|p| p.describe())
        .collect();
    assert_eq!(a, b);
    for (p, r) in artifact.patterns.iter().zip(&reloaded.patterns) {
        assert_eq!(p.categories, r.categories);
        assert_eq!(p.members, r.members);
        assert_eq!(p.support(), r.support());
        for (sa, sb) in p.stays.iter().zip(&r.stays) {
            assert_eq!(sa.pos.x.to_bits(), sb.pos.x.to_bits());
            assert_eq!(sa.pos.y.to_bits(), sb.pos.y.to_bits());
            assert_eq!(sa.time, sb.time);
            assert_eq!(sa.primary, sb.primary);
        }
    }
}

proptest! {
    /// Arbitrary parameter payloads survive the PARM codec bit for bit,
    /// including awkward floats carried as raw IEEE-754 patterns.
    #[test]
    fn random_params_roundtrip(
        r3sigma in 1.0f64..500.0,
        min_pts in 1usize..64,
        sigma in 1usize..200,
        theta_t in 1i64..100_000,
        rho in 0.0f64..1.0,
        threads in 0usize..16,
    ) {
        let params = MinerParams {
            r3sigma,
            min_pts,
            sigma,
            theta_t,
            rho,
            threads,
            ..MinerParams::default()
        };
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let artifact = Artifact::new(csd, Vec::new(), params);
        let bytes = artifact.to_bytes();
        let reloaded = Artifact::from_bytes(&bytes).expect("load");
        prop_assert_eq!(reloaded.params, params);
        prop_assert_eq!(reloaded.to_bytes(), bytes);
    }

    /// Arbitrary projection origins round-trip exactly.
    #[test]
    fn random_projection_roundtrips(lon in -180.0f64..180.0, lat in -85.0f64..85.0) {
        let params = MinerParams::default();
        let csd = CitySemanticDiagram::build(&[], &[], &params).expect("build");
        let artifact = Artifact::new(csd, Vec::new(), params)
            .with_projection(GeoPoint::new(lon, lat));
        let reloaded = Artifact::from_bytes(&artifact.to_bytes()).expect("load");
        let origin = reloaded.projection.expect("projection preserved");
        prop_assert_eq!(origin.lon.to_bits(), lon.to_bits());
        prop_assert_eq!(origin.lat.to_bits(), lat.to_bits());
    }
}
