//! Little-endian byte-stream primitives for the artifact format.
//!
//! [`ByteWriter`] appends fixed-width little-endian values to a `Vec<u8>`;
//! [`ByteReader`] is its bounds-checked mirror. Every reader method returns
//! a typed [`StoreError`] instead of panicking, and count fields are read
//! through [`ByteReader::count`], which caps them against the bytes
//! actually remaining — a bit-flipped length can therefore never trigger a
//! pathological allocation, it fails fast as [`StoreError::Malformed`].

use crate::error::StoreError;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its IEEE-754 bit pattern — NaN payloads and signed zeros
    /// survive the round trip bit for bit.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A `usize` quantity, always stored as `u64`.
    pub fn count(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::truncated(context));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, context: &str) -> Result<u8, StoreError> {
        Ok(self.bytes(1, context)?[0])
    }

    pub fn u16(&mut self, context: &str) -> Result<u16, StoreError> {
        let b = self.bytes(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self, context: &str) -> Result<u32, StoreError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, context: &str) -> Result<u64, StoreError> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self, context: &str) -> Result<i64, StoreError> {
        Ok(self.u64(context)? as i64)
    }

    pub fn f64(&mut self, context: &str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a count of records, each at least `min_record_bytes` wide, and
    /// rejects counts the remaining bytes cannot possibly hold. This is the
    /// guard that turns corrupted length fields into typed errors instead of
    /// multi-terabyte allocations.
    pub fn count(&mut self, min_record_bytes: usize, context: &str) -> Result<usize, StoreError> {
        let raw = self.u64(context)?;
        let cap = (self.remaining() / min_record_bytes.max(1)) as u64;
        if raw > cap {
            return Err(StoreError::malformed(format!(
                "{context}: count {raw} exceeds what {} remaining byte(s) can hold",
                self.remaining()
            )));
        }
        Ok(raw as usize)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self, context: &str) -> Result<(), StoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StoreError::malformed(format!(
                "{context}: {} unread byte(s) at end of section",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_width() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.count(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 0xAB);
        assert_eq!(r.u16("b").unwrap(), 0xCDEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("e").unwrap(), -42);
        let z = r.f64("f").unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(r.f64("g").unwrap().is_nan());
        assert_eq!(r.u64("h").unwrap(), 7);
        r.finish("tail").unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.u64("needs eight"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // claims ~1.8e19 records follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.count(8, "records"),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn unread_tail_is_rejected() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u16("half").unwrap();
        assert!(matches!(
            r.finish("section"),
            Err(StoreError::Malformed { .. })
        ));
    }
}
