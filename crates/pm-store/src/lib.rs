//! # pm-store — versioned, checksummed mining-run artifacts
//!
//! PR-1 made the pipeline panic-free, PR-2 made it deterministic, PR-3 made
//! it observable. This crate makes it *durable*: a complete mining run — the
//! City Semantic Diagram (semantic units, per-unit category distributions,
//! Eq. 3 popularity), the grid-index geometry, and the mined
//! [`FinePattern`](pm_core::extract::FinePattern) set — serializes to a
//! single self-describing binary file in the `pm-store/1` format, and loads
//! back byte-identically for the online query service (`pm-serve`).
//!
//! Design rules, in the spirit of the rest of the workspace:
//!
//! - **std-only.** The format is hand-rolled little-endian sections with
//!   CRC-32 checksums — no serde, no external codecs.
//! - **Strict, panic-free reading.** Any byte string either parses into a
//!   valid [`Artifact`] or returns a typed [`StoreError`]; corrupted length
//!   fields are capped before allocation, unknown *critical* sections are
//!   rejected, unknown *optional* sections are skipped (forward
//!   compatibility), and trailing garbage is an error.
//! - **Deterministic writing.** The same run always serializes to the same
//!   bytes, so `load → re-serialize` is byte-identical — CI asserts this on
//!   the example dataset.
//!
//! The redundant derived state (the POI→unit map and the spatial grid
//! index) is *not* stored; it is rebuilt deterministically on load via
//! [`CitySemanticDiagram::from_parts`](pm_core::construct::CitySemanticDiagram::from_parts),
//! and the stored effective grid cell size doubles as an end-to-end
//! integrity probe over the reconstruction.
//!
//! ```
//! use pm_store::Artifact;
//! # use pm_core::prelude::*;
//! # let params = MinerParams::default();
//! # let csd = CitySemanticDiagram::build(&[], &[], &params).unwrap();
//! let artifact = Artifact::new(csd, Vec::new(), params);
//! let bytes = artifact.to_bytes();
//! let reloaded = Artifact::from_bytes(&bytes).expect("round trip");
//! assert_eq!(reloaded.to_bytes(), bytes);
//! ```

pub mod artifact;
pub mod bytes;
pub mod crc;
pub mod error;
pub mod publish;

pub use artifact::{section_summary, Artifact, SectionSummary, MAGIC, VERSION};
pub use error::StoreError;
pub use publish::{write_file_atomic, GenerationStore, PublishReceipt};
